//! The analog dataflow graph: one node per analog module instance.
//!
//! Builders translate a distance computation over *encoded voltages* into a
//! DAG of module nodes. Node time constants follow the module's net count
//! times the Table 1 RC product (nominal memristance × 20 fF); diode-only
//! stages (max networks, TG muxes) are orders of magnitude faster because
//! they charge their load through the diode/TG on-resistance instead of a
//! memristor — this asymmetry is what makes HauD's convergence time flat in
//! the sequence length (Section 4.2).

use crate::analog::error_model::ErrorModel;
use crate::config::AcceleratorConfig;
use mda_distance::dtw::Band;

/// Reference to a node within an [`AnalogGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef(pub(crate) usize);

impl NodeRef {
    /// The node's index within its graph (also its position in the
    /// [`AnalogGraph::steady_state`] vector).
    pub fn index(self) -> usize {
        self.0
    }
}

/// The function a module node computes from its inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeOp {
    /// A source: fixed voltage applied at t = 0.
    Const(f64),
    /// `in0 − in1` (analog subtractor).
    Sub,
    /// `w·|in0 − in1|` (absolution module); the weight is the memristor
    /// ratio configuration.
    Abs,
    /// Minimum over all inputs (complement + diode max + restore).
    Min,
    /// Maximum over all inputs (diode network).
    Max,
    /// Sum of all inputs (op-amp adder).
    Add,
    /// Weighted sum (row-structure analog adder, `M0/Mk` ratios).
    AddWeighted(Vec<f64>),
    /// Selecting module: if `|in0 − in1| ≤ threshold` output `in2`,
    /// else `in3` (comparator + TG pair).
    SelectMatch {
        /// Match threshold, V.
        threshold: f64,
    },
    /// Mismatch detector: if `|in0 − in1| > threshold` output `v_step`,
    /// else 0 (HamD PE).
    Mismatch {
        /// Match threshold, V.
        threshold: f64,
        /// Output level on mismatch, V.
        v_step: f64,
    },
}

impl NodeOp {
    /// Evaluates the ideal module function.
    pub fn evaluate(&self, inputs: &[f64], weight: f64) -> f64 {
        match self {
            NodeOp::Const(v) => *v,
            NodeOp::Sub => inputs[0] - inputs[1],
            NodeOp::Abs => weight * (inputs[0] - inputs[1]).abs(),
            NodeOp::Min => inputs.iter().copied().fold(f64::INFINITY, f64::min),
            NodeOp::Max => inputs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            NodeOp::Add => inputs.iter().sum(),
            NodeOp::AddWeighted(ws) => inputs.iter().zip(ws).map(|(v, w)| v * w).sum(),
            NodeOp::SelectMatch { threshold } => {
                if (inputs[0] - inputs[1]).abs() <= *threshold {
                    inputs[2]
                } else {
                    inputs[3]
                }
            }
            NodeOp::Mismatch { threshold, v_step } => {
                if (inputs[0] - inputs[1]).abs() > *threshold {
                    *v_step
                } else {
                    0.0
                }
            }
        }
    }

    /// Number of memristor-loaded internal nets (sets the slow RC time
    /// constant). Diode/TG-dominated stages return 0 and use the fast
    /// constant instead.
    fn slow_nets(&self, fan_in: usize) -> usize {
        match self {
            NodeOp::Const(_) => 0,
            NodeOp::Sub => 3,
            NodeOp::Abs => 7,
            // Complement subtractors (parallel) + restore: ~2 sequential
            // op-amp stages of 3 nets each.
            NodeOp::Min => 6,
            NodeOp::Max => 0,
            NodeOp::Add => 3,
            // Summing-node capacitance grows with fan-in.
            NodeOp::AddWeighted(_) => 2 + fan_in,
            // Absolution + comparator dominate; the TG mux itself is fast.
            NodeOp::SelectMatch { .. } => 8,
            NodeOp::Mismatch { .. } => 8,
        }
    }
}

/// One module instance.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) op: NodeOp,
    pub(crate) inputs: Vec<NodeRef>,
    /// Weight applied by `Abs`.
    pub(crate) weight: f64,
    /// First-order time constant, s.
    pub(crate) tau: f64,
    /// Systematic output offset, V.
    pub(crate) offset: f64,
}

/// An analog dataflow graph in topological order (builders only reference
/// already-created nodes).
#[derive(Debug, Clone)]
pub struct AnalogGraph {
    pub(crate) nodes: Vec<Node>,
    output: NodeRef,
    vcc: f64,
}

impl AnalogGraph {
    /// Creates an empty graph for the given supply voltage.
    pub fn new(vcc: f64) -> Self {
        AnalogGraph {
            nodes: Vec::new(),
            output: NodeRef(0),
            vcc,
        }
    }

    /// The supply voltage (targets are clamped to ±Vcc).
    pub fn vcc(&self) -> f64 {
        self.vcc
    }

    /// Number of module nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The designated output node.
    pub fn output(&self) -> NodeRef {
        self.output
    }

    /// Marks a node as the output.
    pub fn set_output(&mut self, node: NodeRef) {
        assert!(node.0 < self.nodes.len(), "output must be a valid node");
        self.output = node;
    }

    /// Adds a node. `rc` is the base RC product (nominal R × parasitic C);
    /// offsets come from the error model.
    pub fn add_node(
        &mut self,
        op: NodeOp,
        inputs: Vec<NodeRef>,
        weight: f64,
        rc: f64,
        errors: &mut ErrorModel,
    ) -> NodeRef {
        for r in &inputs {
            assert!(r.0 < self.nodes.len(), "inputs must precede the node");
        }
        // Fast (diode/TG) stages: load charged through ~1 kΩ instead of the
        // nominal memristance — two orders of magnitude faster.
        let slow = op.slow_nets(inputs.len());
        let tau = if slow == 0 {
            rc / 100.0
        } else {
            rc * slow as f64
        };
        let offset = errors.offset_for(&op);
        self.nodes.push(Node {
            op,
            inputs,
            weight,
            tau: tau.max(1.0e-12),
            offset,
        });
        NodeRef(self.nodes.len() - 1)
    }

    /// Convenience for `Const` sources.
    pub fn source(&mut self, volts: f64, errors: &mut ErrorModel) -> NodeRef {
        self.add_node(NodeOp::Const(volts), Vec::new(), 1.0, 0.0, errors)
    }

    /// Injects a stuck-at fault: the node's output is frozen at `volts`
    /// regardless of its inputs — modelling a memristor stuck in HRS/LRS or
    /// a dead op-amp output. Used by the robustness analyses.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn inject_stuck_fault(&mut self, node: NodeRef, volts: f64) {
        let n = &mut self.nodes[node.0];
        n.op = NodeOp::Const(volts);
        n.inputs.clear();
        n.offset = 0.0;
    }

    /// References to all non-source nodes (fault-injection candidates).
    pub fn module_nodes(&self) -> Vec<NodeRef> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !matches!(n.op, NodeOp::Const(_)))
            .map(|(i, _)| NodeRef(i))
            .collect()
    }

    /// The ideal steady-state value of every node (topological evaluation
    /// with offsets applied, clamped to the rails).
    pub fn steady_state(&self) -> Vec<f64> {
        let mut values = vec![0.0; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let inputs: Vec<f64> = node.inputs.iter().map(|r| values[r.0]).collect();
            let v = node.op.evaluate(&inputs, node.weight) + node.offset;
            values[i] = v.clamp(-self.vcc, self.vcc);
        }
        values
    }
}

/// Builders for the six distance-function graphs. All take sequences of
/// *encoded voltages* (already scaled by the voltage resolution and DAC
/// quantization).
pub mod builders {
    use super::*;

    fn rc(config: &AcceleratorConfig) -> f64 {
        config.signal_path_resistance * config.parasitic_capacitance
    }

    /// DTW matrix graph (Fig. 2(a) per cell). `band` restricts built cells;
    /// out-of-band neighbours read the `Vcc/2` "infinity" rail.
    pub fn dtw(
        config: &AcceleratorConfig,
        p_volts: &[f64],
        q_volts: &[f64],
        w: f64,
        band: Band,
        errors: &mut ErrorModel,
    ) -> AnalogGraph {
        let mut g = AnalogGraph::new(config.vcc);
        let rc = rc(config);
        let inf = g.source(config.vcc / 2.0, errors);
        let zero = g.source(0.0, errors);
        let p: Vec<NodeRef> = p_volts.iter().map(|&v| g.source(v, errors)).collect();
        let q: Vec<NodeRef> = q_volts.iter().map(|&v| g.source(v, errors)).collect();
        let (m, n) = (p.len(), q.len());
        let mut d = vec![vec![inf; n + 1]; m + 1];
        d[0][0] = zero;
        for i in 1..=m {
            for j in 1..=n {
                if !band.admissible(i, j, m, n) {
                    continue;
                }
                let abs = g.add_node(NodeOp::Abs, vec![p[i - 1], q[j - 1]], w, rc, errors);
                let min = g.add_node(
                    NodeOp::Min,
                    vec![d[i][j - 1], d[i - 1][j], d[i - 1][j - 1]],
                    1.0,
                    rc,
                    errors,
                );
                d[i][j] = g.add_node(NodeOp::Add, vec![abs, min], 1.0, rc, errors);
            }
        }
        g.set_output(d[m][n]);
        g
    }

    /// LCS matrix graph (Fig. 2(b) per cell).
    pub fn lcs(
        config: &AcceleratorConfig,
        p_volts: &[f64],
        q_volts: &[f64],
        threshold_volts: f64,
        w: f64,
        errors: &mut ErrorModel,
    ) -> AnalogGraph {
        let mut g = AnalogGraph::new(config.vcc);
        let rc = rc(config);
        let zero = g.source(0.0, errors);
        let step = g.source(w * config.v_step, errors);
        let p: Vec<NodeRef> = p_volts.iter().map(|&v| g.source(v, errors)).collect();
        let q: Vec<NodeRef> = q_volts.iter().map(|&v| g.source(v, errors)).collect();
        let (m, n) = (p.len(), q.len());
        let mut l = vec![vec![zero; n + 1]; m + 1];
        for i in 1..=m {
            for j in 1..=n {
                let match_path =
                    g.add_node(NodeOp::Add, vec![l[i - 1][j - 1], step], 1.0, rc, errors);
                let no_match =
                    g.add_node(NodeOp::Max, vec![l[i][j - 1], l[i - 1][j]], 1.0, rc, errors);
                l[i][j] = g.add_node(
                    NodeOp::SelectMatch {
                        threshold: threshold_volts,
                    },
                    vec![p[i - 1], q[j - 1], match_path, no_match],
                    1.0,
                    rc,
                    errors,
                );
            }
        }
        g.set_output(l[m][n]);
        g
    }

    /// Edit-distance matrix graph (Fig. 2(c) per cell).
    pub fn edit(
        config: &AcceleratorConfig,
        p_volts: &[f64],
        q_volts: &[f64],
        threshold_volts: f64,
        errors: &mut ErrorModel,
    ) -> AnalogGraph {
        let mut g = AnalogGraph::new(config.vcc);
        let rc = rc(config);
        let step = g.source(config.v_step, errors);
        let p: Vec<NodeRef> = p_volts.iter().map(|&v| g.source(v, errors)).collect();
        let q: Vec<NodeRef> = q_volts.iter().map(|&v| g.source(v, errors)).collect();
        let (m, n) = (p.len(), q.len());
        let mut e = vec![vec![NodeRef(0); n + 1]; m + 1];
        for (j, cell) in e[0].iter_mut().enumerate() {
            *cell = g.source(j as f64 * config.v_step, errors);
        }
        for (i, row) in e.iter_mut().enumerate().skip(1) {
            row[0] = g.source(i as f64 * config.v_step, errors);
        }
        for i in 1..=m {
            for j in 1..=n {
                let diag_plus =
                    g.add_node(NodeOp::Add, vec![e[i - 1][j - 1], step], 1.0, rc, errors);
                let p1 = g.add_node(
                    NodeOp::SelectMatch {
                        threshold: threshold_volts,
                    },
                    vec![p[i - 1], q[j - 1], e[i - 1][j - 1], diag_plus],
                    1.0,
                    rc,
                    errors,
                );
                let p2 = g.add_node(NodeOp::Add, vec![e[i - 1][j], step], 1.0, rc, errors);
                let p3 = g.add_node(NodeOp::Add, vec![e[i][j - 1], step], 1.0, rc, errors);
                e[i][j] = g.add_node(NodeOp::Min, vec![p1, p2, p3], 1.0, rc, errors);
            }
        }
        g.set_output(e[m][n]);
        g
    }

    /// Hausdorff graph (Fig. 2(d2)): parallel column minima, final maximum.
    pub fn hausdorff(
        config: &AcceleratorConfig,
        p_volts: &[f64],
        q_volts: &[f64],
        w: f64,
        errors: &mut ErrorModel,
    ) -> AnalogGraph {
        let mut g = AnalogGraph::new(config.vcc);
        let rc = rc(config);
        let vcc = g.source(config.vcc, errors);
        let p: Vec<NodeRef> = p_volts.iter().map(|&v| g.source(v, errors)).collect();
        let q: Vec<NodeRef> = q_volts.iter().map(|&v| g.source(v, errors)).collect();
        let mut column_minima = Vec::with_capacity(q.len());
        for &qn in &q {
            // All |P[i] − Q[j]| complements settle in parallel; the running
            // maximum down the column is a fast diode chain.
            let mut hau: Option<NodeRef> = None;
            for &pn in &p {
                let abs = g.add_node(NodeOp::Abs, vec![pn, qn], w, rc, errors);
                let complement = g.add_node(NodeOp::Sub, vec![vcc, abs], 1.0, rc, errors);
                hau = Some(match hau {
                    None => complement,
                    Some(prev) => g.add_node(NodeOp::Max, vec![prev, complement], 1.0, rc, errors),
                });
            }
            let hau = hau.expect("non-empty P");
            // Converter: Vcc − Hau(m, j).
            let min_j = g.add_node(NodeOp::Sub, vec![vcc, hau], 1.0, rc, errors);
            column_minima.push(min_j);
        }
        let out = g.add_node(NodeOp::Max, column_minima, 1.0, rc, errors);
        g.set_output(out);
        g
    }

    /// Hamming row graph (Fig. 2(e)).
    pub fn hamming(
        config: &AcceleratorConfig,
        p_volts: &[f64],
        q_volts: &[f64],
        threshold_volts: f64,
        weights: &[f64],
        errors: &mut ErrorModel,
    ) -> AnalogGraph {
        let mut g = AnalogGraph::new(config.vcc);
        let rc = rc(config);
        let p: Vec<NodeRef> = p_volts.iter().map(|&v| g.source(v, errors)).collect();
        let q: Vec<NodeRef> = q_volts.iter().map(|&v| g.source(v, errors)).collect();
        let contributions: Vec<NodeRef> = p
            .iter()
            .zip(&q)
            .map(|(&pn, &qn)| {
                g.add_node(
                    NodeOp::Mismatch {
                        threshold: threshold_volts,
                        v_step: config.v_step,
                    },
                    vec![pn, qn],
                    1.0,
                    rc,
                    errors,
                )
            })
            .collect();
        let out = g.add_node(
            NodeOp::AddWeighted(weights.to_vec()),
            contributions,
            1.0,
            rc,
            errors,
        );
        g.set_output(out);
        g
    }

    /// Manhattan row graph (Fig. 2(f)).
    pub fn manhattan(
        config: &AcceleratorConfig,
        p_volts: &[f64],
        q_volts: &[f64],
        weights: &[f64],
        errors: &mut ErrorModel,
    ) -> AnalogGraph {
        let mut g = AnalogGraph::new(config.vcc);
        let rc = rc(config);
        let p: Vec<NodeRef> = p_volts.iter().map(|&v| g.source(v, errors)).collect();
        let q: Vec<NodeRef> = q_volts.iter().map(|&v| g.source(v, errors)).collect();
        let contributions: Vec<NodeRef> = p
            .iter()
            .zip(&q)
            .map(|(&pn, &qn)| g.add_node(NodeOp::Abs, vec![pn, qn], 1.0, rc, errors))
            .collect();
        let out = g.add_node(
            NodeOp::AddWeighted(weights.to_vec()),
            contributions,
            1.0,
            rc,
            errors,
        );
        g.set_output(out);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::builders;
    use super::*;
    use mda_distance::{Distance, Dtw, EditDistance, Hamming, Hausdorff, Lcs, Manhattan};

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::paper_defaults()
    }

    fn volts(config: &AcceleratorConfig, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| config.value_to_voltage(x)).collect()
    }

    #[test]
    fn dtw_steady_state_matches_digital_ideal() {
        let config = cfg();
        let p = [0.0, 1.0, 3.0, 2.0];
        let q = [0.5, 1.5, 2.5, 2.0];
        let g = builders::dtw(
            &config,
            &volts(&config, &p),
            &volts(&config, &q),
            1.0,
            Band::Full,
            &mut ErrorModel::ideal(),
        );
        let final_v = g.steady_state()[g.output().0];
        let expected = Dtw::new().evaluate(&p, &q).unwrap();
        assert!(
            (config.voltage_to_value(final_v) - expected).abs() < 1e-9,
            "ideal analog {} vs digital {expected}",
            config.voltage_to_value(final_v)
        );
    }

    #[test]
    fn lcs_steady_state_matches_digital_ideal() {
        let config = cfg();
        let p = [0.0, 1.0, 2.0, 5.0];
        let q = [0.0, 1.1, 2.0, -5.0];
        let g = builders::lcs(
            &config,
            &volts(&config, &p),
            &volts(&config, &q),
            config.value_to_voltage(0.2),
            1.0,
            &mut ErrorModel::ideal(),
        );
        let final_v = g.steady_state()[g.output().0];
        let expected = Lcs::new(0.2).similarity(&p, &q).unwrap();
        assert!(
            (final_v / config.v_step - expected).abs() < 1e-9,
            "ideal analog {} vs digital {expected}",
            final_v / config.v_step
        );
    }

    #[test]
    fn edit_steady_state_matches_digital_ideal() {
        let config = cfg();
        let p = [0.0, 2.0, 4.0];
        let q = [0.0, 2.0, -4.0, 1.0];
        let g = builders::edit(
            &config,
            &volts(&config, &p),
            &volts(&config, &q),
            config.value_to_voltage(0.2),
            &mut ErrorModel::ideal(),
        );
        let final_v = g.steady_state()[g.output().0];
        let expected = EditDistance::new(0.2).distance(&p, &q).unwrap();
        assert!(
            (final_v / config.v_step - expected).abs() < 1e-9,
            "ideal analog {} vs digital {expected}",
            final_v / config.v_step
        );
    }

    #[test]
    fn hausdorff_steady_state_matches_digital_ideal() {
        let config = cfg();
        let p = [0.0, 4.0];
        let q = [1.0, 3.5, 10.0];
        let g = builders::hausdorff(
            &config,
            &volts(&config, &p),
            &volts(&config, &q),
            1.0,
            &mut ErrorModel::ideal(),
        );
        let final_v = g.steady_state()[g.output().0];
        let expected = Hausdorff::new().distance(&p, &q).unwrap();
        assert!(
            (config.voltage_to_value(final_v) - expected).abs() < 1e-9,
            "ideal analog {} vs digital {expected}",
            config.voltage_to_value(final_v)
        );
    }

    #[test]
    fn hamming_and_manhattan_steady_states_match_digital_ideal() {
        let config = cfg();
        let p = [0.0, 1.0, 2.0, 3.0];
        let q = [0.0, 5.0, 2.0, -3.0];
        let g = builders::hamming(
            &config,
            &volts(&config, &p),
            &volts(&config, &q),
            config.value_to_voltage(0.2),
            &[1.0; 4],
            &mut ErrorModel::ideal(),
        );
        let v = g.steady_state()[g.output().0];
        let expected = Hamming::new(0.2).distance(&p, &q).unwrap();
        assert!((v / config.v_step - expected).abs() < 1e-9);

        let g = builders::manhattan(
            &config,
            &volts(&config, &p),
            &volts(&config, &q),
            &[1.0; 4],
            &mut ErrorModel::ideal(),
        );
        let v = g.steady_state()[g.output().0];
        let expected = Manhattan::new().distance(&p, &q).unwrap();
        assert!((config.voltage_to_value(v) - expected).abs() < 1e-9);
    }

    #[test]
    fn banded_dtw_skips_cells() {
        let config = cfg();
        let p = vec![0.0; 10];
        let q = vec![0.0; 10];
        let full = builders::dtw(
            &config,
            &volts(&config, &p),
            &volts(&config, &q),
            1.0,
            Band::Full,
            &mut ErrorModel::ideal(),
        );
        let banded = builders::dtw(
            &config,
            &volts(&config, &p),
            &volts(&config, &q),
            1.0,
            Band::SakoeChiba(1),
            &mut ErrorModel::ideal(),
        );
        assert!(banded.len() < full.len());
    }

    #[test]
    fn error_model_shifts_outputs_slightly() {
        let config = cfg();
        let p = [0.0, 1.0, 2.0];
        let q = [0.2, 1.4, 1.9];
        let ideal = builders::dtw(
            &config,
            &volts(&config, &p),
            &volts(&config, &q),
            1.0,
            Band::Full,
            &mut ErrorModel::ideal(),
        );
        let noisy = builders::dtw(
            &config,
            &volts(&config, &p),
            &volts(&config, &q),
            1.0,
            Band::Full,
            &mut ErrorModel::new(config.noise_seed),
        );
        let vi = ideal.steady_state()[ideal.output().0];
        let vn = noisy.steady_state()[noisy.output().0];
        assert_ne!(vi, vn);
        // ... but only slightly: millivolt-scale drift across a 3x3 array.
        assert!((vi - vn).abs() < 25.0e-3, "drift {}", (vi - vn).abs());
    }

    #[test]
    fn stuck_fault_changes_output_but_bounded_cells_limit_damage() {
        let config = cfg();
        let p = [0.0, 1.0, 2.0, 3.0];
        let q = [0.0, 0.0, 0.0, 0.0];
        let mut g = builders::manhattan(
            &config,
            &volts(&config, &p),
            &volts(&config, &q),
            &[1.0; 4],
            &mut ErrorModel::ideal(),
        );
        let healthy = g.steady_state()[g.output().index()];
        // Stick the third abs module's output at 0 V (dead PE whose element
        // contributes |2 - 0| = 2 units).
        let victims = g.module_nodes();
        g.inject_stuck_fault(victims[2], 0.0);
        let faulty = g.steady_state()[g.output().index()];
        let damage = healthy - faulty;
        assert!(
            (damage - config.value_to_voltage(2.0)).abs() < 1e-9,
            "fault damage {} should equal the dead element's contribution",
            damage
        );
    }

    #[test]
    fn module_nodes_excludes_sources() {
        let config = cfg();
        let g = builders::manhattan(
            &config,
            &volts(&config, &[1.0]),
            &volts(&config, &[0.0]),
            &[1.0],
            &mut ErrorModel::ideal(),
        );
        let modules = g.module_nodes();
        // 1 abs + 1 adder.
        assert_eq!(modules.len(), 2);
    }

    #[test]
    fn fast_stages_have_small_tau() {
        let config = cfg();
        let g = builders::hausdorff(
            &config,
            &volts(&config, &[0.0, 1.0]),
            &volts(&config, &[0.5]),
            1.0,
            &mut ErrorModel::ideal(),
        );
        let max_tau = g
            .nodes
            .iter()
            .filter(|n| matches!(n.op, NodeOp::Max))
            .map(|n| n.tau)
            .fold(0.0f64, f64::max);
        let sub_tau = g
            .nodes
            .iter()
            .filter(|n| matches!(n.op, NodeOp::Sub))
            .map(|n| n.tau)
            .fold(0.0f64, f64::max);
        assert!(max_tau < sub_tau / 10.0, "max {max_tau} vs sub {sub_tau}");
    }
}
