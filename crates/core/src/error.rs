//! Accelerator error type.

use std::error::Error;
use std::fmt;

use mda_distance::DistanceError;
use mda_spice::SpiceError;

/// Error returned by the accelerator model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AcceleratorError {
    /// No distance function has been configured yet.
    NotConfigured,
    /// The input sequences were rejected by the underlying distance
    /// definition (empty, length mismatch, bad weights).
    Distance(DistanceError),
    /// Device-level circuit simulation failed.
    Spice(SpiceError),
    /// An input value fell outside the encodable voltage range.
    EncodingRange {
        /// The offending value.
        value: f64,
        /// The maximum encodable magnitude.
        max: f64,
    },
    /// An invalid configuration parameter.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for AcceleratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcceleratorError::NotConfigured => {
                write!(f, "no distance function configured; call configure() first")
            }
            AcceleratorError::Distance(e) => write!(f, "distance definition rejected input: {e}"),
            AcceleratorError::Spice(e) => write!(f, "circuit simulation failed: {e}"),
            AcceleratorError::EncodingRange { value, max } => write!(
                f,
                "value {value} outside encodable range (max magnitude {max})"
            ),
            AcceleratorError::InvalidConfig { reason } => {
                write!(f, "invalid accelerator configuration: {reason}")
            }
        }
    }
}

impl Error for AcceleratorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AcceleratorError::Distance(e) => Some(e),
            AcceleratorError::Spice(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<DistanceError> for AcceleratorError {
    fn from(e: DistanceError) -> Self {
        AcceleratorError::Distance(e)
    }
}

#[doc(hidden)]
impl From<SpiceError> for AcceleratorError {
    fn from(e: SpiceError) -> Self {
        AcceleratorError::Spice(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = AcceleratorError::Distance(DistanceError::EmptySequence);
        assert!(e.to_string().contains("empty"));
        assert!(e.source().is_some());
        assert!(AcceleratorError::NotConfigured.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<AcceleratorError>();
    }
}
