//! Value ↔ voltage encoding through the DAC/ADC arrays.

use crate::config::AcceleratorConfig;
use crate::error::AcceleratorError;

/// Encodes sequence values into PE input voltages through the DAC array and
/// decodes measured output voltages back through the ADC array.
///
/// ```
/// use mda_core::{AcceleratorConfig, VoltageEncoder};
///
/// # fn main() -> Result<(), mda_core::AcceleratorError> {
/// let enc = VoltageEncoder::new(AcceleratorConfig::paper_defaults());
/// let volts = enc.encode(&[1.0, -0.5])?;
/// assert!((volts[0] - 0.020).abs() < 2e-3); // 20 mV per unit, 8-bit DAC
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct VoltageEncoder {
    config: AcceleratorConfig,
}

impl VoltageEncoder {
    /// An encoder for the given configuration.
    pub fn new(config: AcceleratorConfig) -> Self {
        VoltageEncoder { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Encodes one value: scale by the voltage resolution, then quantize
    /// through the 8-bit DAC.
    ///
    /// # Errors
    ///
    /// Returns [`AcceleratorError::EncodingRange`] if the value exceeds the
    /// encodable range (`Vcc/2` over the resolution).
    pub fn encode_value(&self, value: f64) -> Result<f64, AcceleratorError> {
        let max = self.config.max_encodable_value();
        if !value.is_finite() || value.abs() > max {
            return Err(AcceleratorError::EncodingRange { value, max });
        }
        Ok(self
            .config
            .dac
            .quantize(self.config.value_to_voltage(value)))
    }

    /// Encodes a whole sequence.
    ///
    /// # Errors
    ///
    /// Same as [`VoltageEncoder::encode_value`].
    pub fn encode(&self, values: &[f64]) -> Result<Vec<f64>, AcceleratorError> {
        values.iter().map(|&v| self.encode_value(v)).collect()
    }

    /// Decodes a measured output voltage through the ADC, returning the
    /// reconstructed value in sequence units (dividing by the voltage
    /// resolution).
    pub fn decode_value(&self, voltage: f64) -> f64 {
        self.config
            .voltage_to_value(self.config.adc.quantize(voltage))
    }

    /// Decodes a voltage that represents counts of `Vstep` (LCS/EdD/HamD
    /// outputs): "the exact result can be obtained by dividing E(m,n) by
    /// Vstep".
    pub fn decode_steps(&self, voltage: f64) -> f64 {
        self.config.adc.quantize(voltage) / self.config.v_step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoder() -> VoltageEncoder {
        VoltageEncoder::new(AcceleratorConfig::paper_defaults())
    }

    #[test]
    fn encode_scales_and_quantizes() {
        let e = encoder();
        let v = e.encode_value(1.0).unwrap();
        // 20 mV, quantized to the nearest 1/256 V = 3.90625 mV grid.
        assert!((v - 0.02).abs() <= e.config().dac.lsb() / 2.0 + 1e-12);
    }

    #[test]
    fn out_of_range_rejected() {
        let e = encoder();
        assert!(matches!(
            e.encode_value(7.0),
            Err(AcceleratorError::EncodingRange { .. })
        ));
        assert!(matches!(
            e.encode_value(f64::NAN),
            Err(AcceleratorError::EncodingRange { .. })
        ));
        assert!(e.encode_value(6.25).is_ok());
    }

    #[test]
    fn roundtrip_error_bounded_by_quantization() {
        let e = encoder();
        let lsb_values = e.config().adc.lsb() / e.config().voltage_resolution;
        for i in -20..=20 {
            let value = i as f64 * 0.37;
            if value.abs() > e.config().max_encodable_value() {
                continue;
            }
            let volts = e.encode_value(value).unwrap();
            let back = e.decode_value(volts);
            assert!(
                (back - value).abs() <= lsb_values + 1e-9,
                "value {value} -> {back}"
            );
        }
    }

    #[test]
    fn decode_steps_counts_vstep_units() {
        let e = encoder();
        // 3 steps of 10 mV = 30 mV (exactly on no grid point, so allow the
        // quantization error of half an ADC LSB = ~1.95 mV -> 0.2 steps).
        let steps = e.decode_steps(0.030);
        assert!((steps - 3.0).abs() < 0.2, "steps {steps}");
    }

    #[test]
    fn encode_sequence() {
        let e = encoder();
        let v = e.encode(&[0.0, 1.0, -1.0]).unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v[0], 0.0);
        assert!((v[1] + v[2]).abs() < 1e-12, "symmetric encoding");
    }
}
