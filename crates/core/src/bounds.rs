//! Calibrated per-path, per-function error bounds.
//!
//! Each analog answer path gets an explicit contract of the form
//! `|value − reference| ≤ abs + rel·|reference|` — the same two-sided shape
//! the accelerator's own acceptance tests use, because analog error has a
//! fixed floor (converter LSB, solver tolerance) plus a proportional part
//! (gain error). The numbers are deliberately *tight enough to fail*: they
//! were calibrated by sweeping the conformance generator across seeds and
//! adding ~2× headroom over the worst observed deviation, so a regression
//! in any layer trips the harness rather than hiding inside slack.
//!
//! These bounds double as routing capabilities: `mda-routing` compares a
//! backend's bound against a request's accuracy SLA to decide whether the
//! analog fabric may answer it. They live here (rather than in
//! `mda-conformance`, which re-exports them) so the routing layer can use
//! them without depending on the test harness.
//!
//! The digital paths' bound is exact bit equality: PR-3 proved the wire
//! path serves values bitwise identical to direct library calls, and the
//! conformance harness keeps that proof under continuous test.

use mda_distance::DistanceKind;

/// A two-sided error bound against the digital reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bound {
    /// Absolute floor, sequence units.
    pub abs: f64,
    /// Proportional part, fraction of `|reference|`.
    pub rel: f64,
}

impl Bound {
    /// The zero bound: exact agreement with the digital reference.
    pub const EXACT: Bound = Bound { abs: 0.0, rel: 0.0 };

    /// `true` when `value` is finite and within the bound of `reference`.
    pub fn allows(&self, value: f64, reference: f64) -> bool {
        value.is_finite() && (value - reference).abs() <= self.abs + self.rel * reference.abs()
    }

    /// The permitted deviation at a given reference magnitude.
    pub fn margin(&self, reference: f64) -> f64 {
        self.abs + self.rel * reference.abs()
    }

    /// This bound with both terms scaled. Scale 1.0 is the calibrated
    /// contract; tests use 0.0 to force every deviation out of bounds and
    /// exercise the shrink/reproducer path.
    pub fn scaled(self, scale: f64) -> Bound {
        Bound {
            abs: self.abs * scale,
            rel: self.rel * scale,
        }
    }
}

/// Bound for the behavioural accelerator layer at a given problem size
/// (`len` = the longer of the two series).
///
/// The matrix DPs accumulate analog noise along their recurrence: every
/// cell adds converter LSB and comparator noise, so the absolute floor of
/// the counting matrix functions (LCS/EdD) grows with length — empirically
/// a bit under one ADC step (25/32 value units) per ~5 elements at the
/// worst corner. The row functions read out a single accumulation node and
/// keep a fixed floor.
pub fn behavioural(kind: DistanceKind, len: usize) -> Bound {
    let len = len as f64;
    match kind {
        DistanceKind::Lcs | DistanceKind::Edit => Bound {
            abs: 0.5 + 0.15 * len,
            rel: 0.3,
        },
        DistanceKind::Dtw | DistanceKind::Hausdorff => Bound {
            abs: 0.6 + 0.05 * len,
            rel: 0.3,
        },
        DistanceKind::Hamming | DistanceKind::Manhattan => Bound { abs: 0.6, rel: 0.3 },
    }
}

/// Bound for the aCAM one-shot matching plane — the thresholded kinds
/// (HamD, thresholded EdD/LCS) whose comparators the match plane resolves
/// in analog.
///
/// A *tuned* array (closed-loop program-and-verify) reproduces the digital
/// comparator exactly, and the routed backend models a tuned array — but
/// the contract deliberately keeps analog headroom (one residual
/// comparator flip at the floor, gain error at the top) rather than
/// claiming [`Bound::EXACT`]: an exact claim would put aCAM on the
/// digital, lease-free routing path, and the router must keep accounting
/// for it as analog fleet capacity with the saturation guard armed. The
/// non-thresholded kinds have no one-shot evaluation; an infinite bound
/// keeps them un-routable even if a capability check is bypassed.
pub fn acam(kind: DistanceKind, _len: usize) -> Bound {
    match kind {
        DistanceKind::Hamming | DistanceKind::Edit | DistanceKind::Lcs => {
            Bound { abs: 0.5, rel: 0.1 }
        }
        _ => Bound {
            abs: f64::INFINITY,
            rel: 0.0,
        },
    }
}

/// Bound for the device-level SPICE layer. Only evaluated on the sizes the
/// PE netlists support (see the conformance harness's `spice_eligibility`),
/// so no length term is needed: the caps keep the netlists in the regime
/// these numbers were swept over.
pub fn spice(kind: DistanceKind) -> Bound {
    match kind {
        DistanceKind::Dtw => Bound {
            abs: 0.3,
            rel: 0.15,
        },
        DistanceKind::Lcs => Bound {
            abs: 0.2,
            rel: 0.15,
        },
        DistanceKind::Edit => Bound {
            abs: 0.45,
            rel: 0.15,
        },
        DistanceKind::Hausdorff => Bound {
            abs: 0.35,
            rel: 0.15,
        },
        DistanceKind::Hamming => Bound {
            abs: 0.15,
            rel: 0.1,
        },
        DistanceKind::Manhattan => Bound {
            abs: 0.3,
            rel: 0.12,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_combines_absolute_and_relative_parts() {
        let b = Bound { abs: 0.5, rel: 0.1 };
        assert!(b.allows(10.9, 10.0));
        assert!(!b.allows(11.6, 10.0));
        assert!(b.allows(0.4, 0.0));
        assert!(!b.allows(0.6, 0.0));
    }

    #[test]
    fn non_finite_values_never_pass() {
        let b = Bound {
            abs: f64::INFINITY,
            rel: 0.0,
        };
        assert!(!b.allows(f64::NAN, 0.0));
        assert!(!b.allows(f64::INFINITY, 0.0));
    }

    #[test]
    fn exact_bound_is_bit_agreement_only() {
        assert!(Bound::EXACT.allows(1.5, 1.5));
        assert!(!Bound::EXACT.allows(1.5 + f64::EPSILON * 4.0, 1.5));
        assert_eq!(Bound::EXACT.margin(1e9), 0.0);
    }

    #[test]
    fn every_kind_has_both_layer_bounds() {
        for kind in DistanceKind::ALL {
            assert!(behavioural(kind, 1).abs > 0.0);
            assert!(spice(kind).abs > 0.0);
        }
    }

    #[test]
    fn acam_bound_covers_exactly_the_thresholded_kinds() {
        for kind in [DistanceKind::Hamming, DistanceKind::Edit, DistanceKind::Lcs] {
            let b = acam(kind, 64);
            // Non-exact (so the router leases and guards it as analog) but
            // admissible at the fabric's 25-unit output ceiling.
            assert!(b != Bound::EXACT, "{kind}");
            assert!(b.margin(25.0) < 25.0, "{kind}");
        }
        for kind in [
            DistanceKind::Dtw,
            DistanceKind::Hausdorff,
            DistanceKind::Manhattan,
        ] {
            // Infinite margin: never admitted by the tolerance scan.
            assert!(acam(kind, 64).margin(25.0).is_infinite(), "{kind}");
        }
    }

    #[test]
    fn matrix_counting_bounds_grow_with_length() {
        let short = behavioural(DistanceKind::Edit, 4);
        let medium = behavioural(DistanceKind::Edit, 16);
        assert!(medium.abs > short.abs);
        // Row functions read one node; no length term.
        assert_eq!(
            behavioural(DistanceKind::Manhattan, 4),
            behavioural(DistanceKind::Manhattan, 16)
        );
    }
}
