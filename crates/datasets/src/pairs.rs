//! The paper's Section 4.2 pairing protocol: "For each algorithm module, we
//! randomly choose a pair of data from the same class and a pair from
//! different classes in one dataset. The length of the time series data are
//! converted to different lengths. Totally 10 similarity computations are
//! presented for each dataset."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;

/// Whether a pair shares its class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairKind {
    /// Both series come from the same class.
    SameClass,
    /// The series come from different classes.
    DifferentClass,
}

/// One experimental comparison: two resampled series and their provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentPair {
    /// First series, resampled to the experiment length.
    pub p: Vec<f64>,
    /// Second series, resampled to the experiment length.
    pub q: Vec<f64>,
    /// Same- or different-class.
    pub kind: PairKind,
    /// The experiment length.
    pub length: usize,
}

/// Generates the Fig. 5 workload from a dataset.
#[derive(Debug, Clone)]
pub struct ExperimentPairs {
    dataset: Dataset,
    seed: u64,
}

impl ExperimentPairs {
    /// Wraps a (z-normalized) dataset for pairing.
    pub fn new(dataset: Dataset, seed: u64) -> Self {
        ExperimentPairs { dataset, seed }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Draws `count` pairs per kind at the given length: alternating
    /// same-class and different-class, resampled to `length`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset lacks a class with two members or a second
    /// class.
    pub fn draw(&self, length: usize, count: usize) -> Vec<ExperimentPair> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ length as u64);
        let ds = self.dataset.resampled(length);
        let classes = ds.classes();
        assert!(classes.len() >= 2, "need at least two classes");
        let mut pairs = Vec::with_capacity(count * 2);
        for _ in 0..count {
            // Same-class pair.
            let class = classes[rng.gen_range(0..classes.len())];
            let members = ds.indices_of_class(class);
            if members.len() >= 2 {
                let a = members[rng.gen_range(0..members.len())];
                let mut b = members[rng.gen_range(0..members.len())];
                while b == a {
                    b = members[rng.gen_range(0..members.len())];
                }
                pairs.push(ExperimentPair {
                    p: ds.series(a).to_vec(),
                    q: ds.series(b).to_vec(),
                    kind: PairKind::SameClass,
                    length,
                });
            }
            // Different-class pair.
            let a = rng.gen_range(0..ds.len());
            let mut b = rng.gen_range(0..ds.len());
            let mut guard = 0;
            while ds.label(b) == ds.label(a) && guard < 1000 {
                b = rng.gen_range(0..ds.len());
                guard += 1;
            }
            pairs.push(ExperimentPair {
                p: ds.series(a).to_vec(),
                q: ds.series(b).to_vec(),
                kind: PairKind::DifferentClass,
                length,
            });
        }
        pairs
    }

    /// The paper's full sweep: 5 same-class + 5 different-class pairs at
    /// each of the given lengths.
    pub fn paper_sweep(&self, lengths: &[usize]) -> Vec<ExperimentPair> {
        lengths.iter().flat_map(|&len| self.draw(len, 5)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{beef, SyntheticSpec};

    fn pairs() -> ExperimentPairs {
        ExperimentPairs::new(beef(&SyntheticSpec::new(64, 4, 5)).z_normalized(), 11)
    }

    #[test]
    fn draw_produces_both_kinds_at_length() {
        let p = pairs().draw(20, 5);
        assert_eq!(p.len(), 10);
        assert!(p.iter().all(|x| x.p.len() == 20 && x.q.len() == 20));
        assert_eq!(
            p.iter().filter(|x| x.kind == PairKind::SameClass).count(),
            5
        );
    }

    #[test]
    fn paper_sweep_covers_all_lengths() {
        let sweep = pairs().paper_sweep(&[10, 20, 30, 40]);
        assert_eq!(sweep.len(), 40);
        for len in [10, 20, 30, 40] {
            assert_eq!(sweep.iter().filter(|x| x.length == len).count(), 10);
        }
    }

    #[test]
    fn drawing_is_deterministic() {
        let a = pairs().draw(16, 3);
        let b = pairs().draw(16, 3);
        assert_eq!(a, b);
    }
}
