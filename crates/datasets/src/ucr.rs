//! Parser for the UCR Time Series Classification Archive text format.
//!
//! Each line is one series: a class label followed by the values, separated
//! by commas (newer archive releases) or whitespace/tabs (older ones).

use std::error::Error;
use std::fmt;
use std::io::BufRead;
use std::path::Path;

use crate::dataset::Dataset;

/// Error produced while parsing UCR-format data.
#[derive(Debug)]
pub enum ParseUcrError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The input contained no series.
    Empty,
}

impl fmt::Display for ParseUcrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseUcrError::Io(e) => write!(f, "i/o error reading ucr data: {e}"),
            ParseUcrError::Malformed { line, reason } => {
                write!(f, "malformed ucr line {line}: {reason}")
            }
            ParseUcrError::Empty => write!(f, "ucr input contained no series"),
        }
    }
}

impl Error for ParseUcrError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseUcrError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ParseUcrError {
    fn from(e: std::io::Error) -> Self {
        ParseUcrError::Io(e)
    }
}

/// Parses UCR-format data from any reader. Pass `&mut reader` to keep
/// ownership.
///
/// Labels may be arbitrary integers (including negatives, which some UCR
/// sets use); they are remapped to dense `0..k` indices in encounter order.
///
/// # Errors
///
/// Returns [`ParseUcrError`] on I/O failure, malformed lines, or empty
/// input.
///
/// ```
/// use mda_datasets::ucr::parse;
///
/// # fn main() -> Result<(), mda_datasets::ucr::ParseUcrError> {
/// let text = "1,0.5,0.7,0.9\n2,0.1,0.2,0.3\n";
/// let ds = parse("demo", text.as_bytes())?;
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.series(0), &[0.5, 0.7, 0.9]);
/// # Ok(())
/// # }
/// ```
pub fn parse<R: BufRead>(name: &str, reader: R) -> Result<Dataset, ParseUcrError> {
    let mut labels = Vec::new();
    let mut series = Vec::new();
    let mut label_map: Vec<i64> = Vec::new();

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = if trimmed.contains(',') {
            trimmed.split(',').collect()
        } else {
            trimmed.split_whitespace().collect()
        };
        if fields.len() < 2 {
            return Err(ParseUcrError::Malformed {
                line: lineno + 1,
                reason: "need a label and at least one value".into(),
            });
        }
        let raw_label: f64 = fields[0]
            .trim()
            .parse()
            .map_err(|e| ParseUcrError::Malformed {
                line: lineno + 1,
                reason: format!("bad label {:?}: {e}", fields[0]),
            })?;
        let raw_label = raw_label as i64;
        let dense = match label_map.iter().position(|&l| l == raw_label) {
            Some(i) => i,
            None => {
                label_map.push(raw_label);
                label_map.len() - 1
            }
        };
        let values: Vec<f64> = fields[1..]
            .iter()
            .map(|f| {
                f.trim().parse().map_err(|e| ParseUcrError::Malformed {
                    line: lineno + 1,
                    reason: format!("bad value {f:?}: {e}"),
                })
            })
            .collect::<Result<_, _>>()?;
        labels.push(dense);
        series.push(values);
    }
    if series.is_empty() {
        return Err(ParseUcrError::Empty);
    }
    Ok(Dataset::new(name, labels, series))
}

/// Serialises a dataset back into the UCR comma-separated format (one
/// `label,v1,v2,…` line per series) — round-trips through [`parse`].
pub fn to_ucr_string(dataset: &crate::dataset::Dataset) -> String {
    let mut out = String::new();
    for (label, series) in dataset.iter() {
        out.push_str(&label.to_string());
        for v in series {
            out.push(',');
            out.push_str(&v.to_string());
        }
        out.push('\n');
    }
    out
}

/// Loads a UCR-format file from disk, deriving the dataset name from the
/// file stem (e.g. `Beef_TRAIN` from `Beef_TRAIN.tsv`).
///
/// # Errors
///
/// Returns [`ParseUcrError`] on I/O or format problems.
pub fn load_file<P: AsRef<Path>>(path: P) -> Result<Dataset, ParseUcrError> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("ucr")
        .to_string();
    let file = std::fs::File::open(path)?;
    parse(&name, std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comma_format() {
        let ds = parse("x", "1,0.5,0.7\n2,0.1,0.2\n".as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.label(0), 0);
        assert_eq!(ds.label(1), 1);
        assert_eq!(ds.series(1), &[0.1, 0.2]);
    }

    #[test]
    fn parses_whitespace_format_with_negative_labels() {
        let ds = parse("x", "-1  0.5 0.7\n 1\t0.1 0.2\n-1 0.0 0.0\n".as_bytes()).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.label(0), 0); // -1 remapped to 0
        assert_eq!(ds.label(1), 1);
        assert_eq!(ds.label(2), 0);
    }

    #[test]
    fn skips_blank_lines() {
        let ds = parse("x", "1,0.5,0.7\n\n\n2,0.1,0.2\n".as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(
            parse("x", "1\n".as_bytes()),
            Err(ParseUcrError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            parse("x", "1,abc\n".as_bytes()),
            Err(ParseUcrError::Malformed { .. })
        ));
        assert!(matches!(
            parse("x", "".as_bytes()),
            Err(ParseUcrError::Empty)
        ));
    }

    #[test]
    fn write_parse_roundtrip() {
        let ds = crate::dataset::Dataset::new(
            "rt",
            vec![0, 1, 0],
            vec![vec![0.5, -1.25], vec![3.0, 4.5], vec![0.0, 0.0]],
        );
        let text = to_ucr_string(&ds);
        let back = parse("rt", text.as_bytes()).expect("roundtrip parses");
        assert_eq!(back.len(), ds.len());
        for i in 0..ds.len() {
            assert_eq!(back.label(i), ds.label(i));
            assert_eq!(back.series(i), ds.series(i));
        }
    }

    #[test]
    fn load_file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("mda_ucr_test_Beef_TRAIN.tsv");
        std::fs::write(&path, "1\t0.5\t0.7\n2\t0.1\t0.2\n").expect("writable tmp");
        let ds = load_file(&path).expect("parsable");
        assert_eq!(ds.name(), "mda_ucr_test_Beef_TRAIN");
        assert_eq!(ds.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_file_missing_is_io_error() {
        assert!(matches!(
            load_file("/definitely/not/here.tsv"),
            Err(ParseUcrError::Io(_))
        ));
    }

    #[test]
    fn float_labels_truncate() {
        // Some archive files store labels as "1.0000000e+00".
        let ds = parse("x", "1.0,0.5,0.7\n".as_bytes()).unwrap();
        assert_eq!(ds.label(0), 0);
    }
}
