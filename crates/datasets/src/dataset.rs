//! Labelled time-series collections.

use mda_distance::znorm::{resample, z_normalized};

/// A labelled collection of equal-domain time series.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    name: String,
    labels: Vec<usize>,
    series: Vec<Vec<f64>>,
}

impl Dataset {
    /// Creates a dataset from parallel label/series vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors disagree in length or any series is empty.
    pub fn new(name: impl Into<String>, labels: Vec<usize>, series: Vec<Vec<f64>>) -> Self {
        assert_eq!(labels.len(), series.len(), "one label per series");
        assert!(
            series.iter().all(|s| !s.is_empty()),
            "series must be non-empty"
        );
        Dataset {
            name: name.into(),
            labels,
            series,
        }
    }

    /// The dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// `true` if the dataset holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The class label of series `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// The values of series `i`.
    pub fn series(&self, i: usize) -> &[f64] {
        &self.series[i]
    }

    /// Iterates over `(label, series)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[f64])> {
        self.labels
            .iter()
            .copied()
            .zip(self.series.iter().map(Vec::as_slice))
    }

    /// The distinct class labels, sorted.
    pub fn classes(&self) -> Vec<usize> {
        let mut c: Vec<usize> = self.labels.clone();
        c.sort_unstable();
        c.dedup();
        c
    }

    /// Indices of all series with the given label.
    pub fn indices_of_class(&self, label: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.labels[i] == label)
            .collect()
    }

    /// The first two series sharing class `label`, if the class has at
    /// least two members.
    pub fn same_class_pair(&self, label: usize) -> Option<(usize, usize)> {
        let idx = self.indices_of_class(label);
        (idx.len() >= 2).then(|| (idx[0], idx[1]))
    }

    /// The first pair of series with different labels, if any.
    pub fn different_class_pair(&self) -> Option<(usize, usize)> {
        let first = *self.labels.first()?;
        let other = (0..self.len()).find(|&i| self.labels[i] != first)?;
        Some((0, other))
    }

    /// A copy with every series linearly resampled to `length` — the
    /// paper's "we formalize the sequences with different lengths".
    pub fn resampled(&self, length: usize) -> Dataset {
        Dataset {
            name: format!("{}@{length}", self.name),
            labels: self.labels.clone(),
            series: self.series.iter().map(|s| resample(s, length)).collect(),
        }
    }

    /// A copy with every series z-normalized.
    pub fn z_normalized(&self) -> Dataset {
        Dataset {
            name: self.name.clone(),
            labels: self.labels.clone(),
            series: self.series.iter().map(|s| z_normalized(s)).collect(),
        }
    }

    /// Splits into (train, test) keeping every `k`-th series for testing.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn split_every(&self, k: usize) -> (Dataset, Dataset) {
        assert!(k >= 2, "k must be at least 2");
        let mut train = (Vec::new(), Vec::new());
        let mut test = (Vec::new(), Vec::new());
        for i in 0..self.len() {
            let bucket = if i % k == 0 { &mut test } else { &mut train };
            bucket.0.push(self.labels[i]);
            bucket.1.push(self.series[i].clone());
        }
        (
            Dataset::new(format!("{}-train", self.name), train.0, train.1),
            Dataset::new(format!("{}-test", self.name), test.0, test.1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::new(
            "tiny",
            vec![0, 0, 1, 1, 2],
            vec![
                vec![0.0, 1.0],
                vec![0.1, 1.1],
                vec![5.0, 6.0],
                vec![5.1, 6.1],
                vec![9.0, 9.0],
            ],
        )
    }

    #[test]
    fn basic_accessors() {
        let d = tiny();
        assert_eq!(d.len(), 5);
        assert_eq!(d.label(2), 1);
        assert_eq!(d.series(0), &[0.0, 1.0]);
        assert_eq!(d.classes(), vec![0, 1, 2]);
        assert_eq!(d.indices_of_class(1), vec![2, 3]);
    }

    #[test]
    fn pairs() {
        let d = tiny();
        let (a, b) = d.same_class_pair(0).unwrap();
        assert_eq!(d.label(a), d.label(b));
        assert!(d.same_class_pair(2).is_none(), "singleton class");
        let (a, b) = d.different_class_pair().unwrap();
        assert_ne!(d.label(a), d.label(b));
    }

    #[test]
    fn resampling_changes_length_only() {
        let d = tiny().resampled(7);
        assert_eq!(d.len(), 5);
        assert!(d.iter().all(|(_, s)| s.len() == 7));
        // Endpoints preserved.
        assert_eq!(d.series(0)[0], 0.0);
        assert_eq!(*d.series(0).last().unwrap(), 1.0);
    }

    #[test]
    fn z_normalization_applies_per_series() {
        let d = tiny().z_normalized();
        for (_, s) in d.iter() {
            let mean: f64 = s.iter().sum::<f64>() / s.len() as f64;
            assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn split_partitions() {
        let d = tiny();
        let (train, test) = d.split_every(2);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(test.len(), 3); // indices 0, 2, 4
    }

    #[test]
    #[should_panic(expected = "one label per series")]
    fn mismatched_lengths_panic() {
        let _ = Dataset::new("bad", vec![0], vec![]);
    }
}
