//! Class-structured synthetic stand-ins for the UCR sets used in the paper.
//!
//! The evaluation only needs series with realistic intra-class similarity
//! and inter-class separation, at controllable lengths. Each generator
//! mimics its archetype's morphology:
//!
//! * [`beef`] — food-spectrometry curves: a smooth shared baseline with
//!   class-specific absorption peaks (the real Beef set distinguishes
//!   adulterants in minced beef);
//! * [`symbols`] — pen-stroke trajectories: low-frequency sinusoid mixtures
//!   with class-specific frequency/phase signatures;
//! * [`osu_leaf`] — leaf-contour distance profiles: periodic lobed shapes
//!   whose lobe count and sharpness vary by class.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;

/// Generation parameters shared by all three generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticSpec {
    /// Native series length before any resampling.
    pub length: usize,
    /// Series generated per class.
    pub per_class: usize,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
}

impl SyntheticSpec {
    /// A spec with the given native length, 5 series per class and the
    /// given seed.
    pub fn new(length: usize, per_class: usize, seed: u64) -> Self {
        assert!(length >= 2, "length must be at least 2");
        assert!(per_class >= 1, "per_class must be at least 1");
        SyntheticSpec {
            length,
            per_class,
            seed,
        }
    }
}

fn noise(rng: &mut StdRng, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Beef-like spectrometry curves, 5 classes.
pub fn beef(spec: &SyntheticSpec) -> Dataset {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xbeef);
    let classes = 5;
    let mut labels = Vec::new();
    let mut series = Vec::new();
    for class in 0..classes {
        // Class signature: two absorption peaks at class-specific positions.
        let peak1 = 0.15 + class as f64 * 0.12;
        let peak2 = 0.55 + class as f64 * 0.07;
        let depth1 = 0.8 + class as f64 * 0.25;
        let depth2 = 1.4 - class as f64 * 0.15;
        for _ in 0..spec.per_class {
            let jitter = noise(&mut rng, 0.01);
            let scale = 1.0 + noise(&mut rng, 0.05);
            let s: Vec<f64> = (0..spec.length)
                .map(|i| {
                    let x = i as f64 / (spec.length - 1) as f64;
                    let baseline = 1.5 - 0.8 * x + 0.3 * (2.0 * std::f64::consts::PI * x).sin();
                    let gauss = |c: f64, d: f64, w: f64| {
                        -d * (-(x - c - jitter) * (x - c - jitter) / (2.0 * w * w)).exp()
                    };
                    scale * (baseline + gauss(peak1, depth1, 0.03) + gauss(peak2, depth2, 0.05))
                        + noise(&mut rng, 0.02)
                })
                .collect();
            labels.push(class);
            series.push(s);
        }
    }
    Dataset::new("Beef-like", labels, series)
}

/// Symbols-like pen-stroke trajectories, 6 classes.
pub fn symbols(spec: &SyntheticSpec) -> Dataset {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5b01);
    let classes = 6;
    let mut labels = Vec::new();
    let mut series = Vec::new();
    for class in 0..classes {
        let f1 = 1.0 + class as f64 * 0.5;
        let f2 = 2.5 + class as f64 * 0.3;
        let mix = 0.3 + class as f64 * 0.1;
        for _ in 0..spec.per_class {
            let phase = noise(&mut rng, 0.15);
            let amp = 1.0 + noise(&mut rng, 0.08);
            let s: Vec<f64> = (0..spec.length)
                .map(|i| {
                    let x = i as f64 / (spec.length - 1) as f64 * std::f64::consts::TAU;
                    amp * ((f1 * x + phase).sin() + mix * (f2 * x - phase).cos())
                        + noise(&mut rng, 0.03)
                })
                .collect();
            labels.push(class);
            series.push(s);
        }
    }
    Dataset::new("Symbols-like", labels, series)
}

/// OSU-Leaf-like contour distance profiles, 6 classes.
pub fn osu_leaf(spec: &SyntheticSpec) -> Dataset {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x1eaf);
    let classes = 6;
    let mut labels = Vec::new();
    let mut series = Vec::new();
    for class in 0..classes {
        let lobes = 3 + class; // lobe count distinguishes species
        let sharpness = 1.0 + class as f64 * 0.4;
        for _ in 0..spec.per_class {
            let rot = rng.gen_range(0.0..std::f64::consts::TAU / lobes as f64);
            let size = 1.0 + noise(&mut rng, 0.07);
            let s: Vec<f64> = (0..spec.length)
                .map(|i| {
                    let theta = i as f64 / spec.length as f64 * std::f64::consts::TAU;
                    let lobe = ((lobes as f64) * (theta + rot)).cos();
                    size * (1.0 + 0.45 * lobe.signum() * lobe.abs().powf(sharpness))
                        + noise(&mut rng, 0.02)
                })
                .collect();
            labels.push(class);
            series.push(s);
        }
    }
    Dataset::new("OSULeaf-like", labels, series)
}

/// All three paper datasets with one spec.
pub fn paper_datasets(spec: &SyntheticSpec) -> Vec<Dataset> {
    vec![beef(spec), symbols(spec), osu_leaf(spec)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_distance::{Distance, Dtw};

    fn spec() -> SyntheticSpec {
        SyntheticSpec::new(64, 4, 7)
    }

    #[test]
    fn generators_produce_expected_shapes() {
        let b = beef(&spec());
        assert_eq!(b.len(), 5 * 4);
        assert_eq!(b.classes().len(), 5);
        let s = symbols(&spec());
        assert_eq!(s.classes().len(), 6);
        let l = osu_leaf(&spec());
        assert_eq!(l.classes().len(), 6);
        for ds in [b, s, l] {
            assert!(ds.iter().all(|(_, xs)| xs.len() == 64));
            assert!(ds.iter().all(|(_, xs)| xs.iter().all(|x| x.is_finite())));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = beef(&spec());
        let b = beef(&spec());
        assert_eq!(a, b);
        let c = beef(&SyntheticSpec::new(64, 4, 8));
        assert_ne!(a, c);
    }

    #[test]
    fn same_class_pairs_are_closer_than_cross_class() {
        // The property the paper's experiment depends on: same-class DTW
        // distance must be systematically below different-class distance.
        let dtw = Dtw::new();
        for ds in paper_datasets(&SyntheticSpec::new(48, 4, 3)) {
            let ds = ds.z_normalized();
            let mut same = Vec::new();
            let mut diff = Vec::new();
            for i in 0..ds.len() {
                for j in (i + 1)..ds.len() {
                    let d = dtw.evaluate(ds.series(i), ds.series(j)).unwrap();
                    if ds.label(i) == ds.label(j) {
                        same.push(d);
                    } else {
                        diff.push(d);
                    }
                }
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            assert!(
                mean(&same) < mean(&diff) * 0.8,
                "{}: same {} vs diff {}",
                ds.name(),
                mean(&same),
                mean(&diff)
            );
        }
    }

    #[test]
    fn values_fit_the_encodable_range_after_znorm() {
        // The accelerator encodes ±25 units; z-normalized series stay well
        // inside.
        for ds in paper_datasets(&spec()) {
            let z = ds.z_normalized();
            for (_, s) in z.iter() {
                assert!(s.iter().all(|x| x.abs() < 25.0));
            }
        }
    }
}
