//! # mda-datasets
//!
//! Time-series datasets for the accelerator evaluation.
//!
//! The paper evaluates on three sets from the UCR Time Series
//! Classification Archive — **Beef**, **Symbols** and **OSU Leaf** — which
//! are not redistributable here. [`synthetic`] provides class-structured
//! generators that mimic each set's morphology (spectrometry curves, pen
//! strokes, leaf-contour profiles) with the same role in the experiments:
//! pairs of same-class and different-class series formalized to several
//! lengths. [`ucr`] parses the real archive's text format for users who
//! have it.
//!
//! ```
//! use mda_datasets::synthetic::{beef, SyntheticSpec};
//!
//! let ds = beef(&SyntheticSpec::new(128, 5, 42));
//! assert_eq!(ds.len(), 5 * SyntheticSpec::new(128, 5, 42).per_class);
//! let (a, b) = ds.same_class_pair(0).expect("two series per class");
//! assert_eq!(ds.label(a), ds.label(b));
//! ```

pub mod dataset;
pub mod pairs;
pub mod synthetic;
pub mod ucr;

pub use dataset::Dataset;
pub use pairs::{ExperimentPairs, PairKind};
