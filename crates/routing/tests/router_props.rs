//! Property tests for the router's two contracts:
//!
//! * **exact is bitwise** — an `exact` SLA always routes to the digital
//!   path and the routed value is bit-identical to a direct library call,
//!   whatever the inputs;
//! * **tolerance is sound** — for DAC-encodable inputs, whatever backend a
//!   `tolerance(ε)` SLA routes to, the value that comes back is within ε
//!   of the digital reference, and the declared bound itself fits ε at the
//!   fabric's output ceiling.
//!
//! Inputs are constrained to the analog fabric's input range (|x| ≤ 6.25
//! units at paper defaults) and short lengths so the tolerance property
//! exercises real analog answers rather than guaranteed fallbacks.

use proptest::prelude::*;

use mda_distance::{DistanceKind, DpScratch};
use mda_routing::{evaluate_routed, BackendId, Bound, PairRequest, Router, RouterConfig, Sla};

fn kind() -> impl Strategy<Value = DistanceKind> {
    (0usize..DistanceKind::ALL.len()).prop_map(|i| DistanceKind::ALL[i])
}

/// Series inside the DAC's encodable input range (±6.25 units at paper
/// defaults), so the analog path can actually answer.
fn encodable_series() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-6.25f64..6.25, 1..24)
}

/// Any finite series, including magnitudes far beyond what the fabric can
/// encode — the exact path must not care.
fn any_series() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e12f64..1e12, 1..24)
}

fn reference(kind: DistanceKind, p: &[f64], q: &[f64]) -> f64 {
    let mut scratch = DpScratch::new();
    evaluate_routed(
        BackendId::DigitalExact,
        &PairRequest::new(kind),
        p,
        q,
        &mut scratch,
    )
    .expect("equal-length series never shape-error")
    .value
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_sla_routes_digital_and_is_bitwise(
        kind in kind(),
        p in any_series(),
        len_seed in 0usize..1000,
    ) {
        // Equal lengths so row-structure kinds accept the pair.
        let q: Vec<f64> = p.iter().map(|x| x * 0.5 + (len_seed as f64) * 1e-3).collect();
        let router = Router::new(RouterConfig::default());
        let route = router.route_pair(kind, p.len(), Sla::Exact);
        prop_assert_eq!(route.backend, BackendId::DigitalExact);
        prop_assert_eq!(route.bound, Bound::EXACT);
        prop_assert!(route.lease.is_none());

        let mut scratch = DpScratch::new();
        let routed = evaluate_routed(
            route.backend,
            &PairRequest::new(kind),
            &p,
            &q,
            &mut scratch,
        ).expect("equal-length series");
        prop_assert!(!routed.fell_back);
        prop_assert_eq!(routed.value.to_bits(), reference(kind, &p, &q).to_bits());
    }

    #[test]
    fn tolerance_sla_is_always_honoured_on_encodable_inputs(
        kind in kind(),
        p in encodable_series(),
        q in encodable_series(),
        epsilon in 0.0f64..64.0,
    ) {
        // Row-structure kinds need equal lengths; trim both to the shorter.
        let n = p.len().min(q.len());
        let (p, q) = (&p[..n], &q[..n]);

        let router = Router::new(RouterConfig::default());
        let route = router.route_pair(kind, n, Sla::Tolerance(epsilon));

        // Whatever was picked, its declared bound must fit the SLA at the
        // fabric's output ceiling (the worst reference an analog answer can
        // stand for after the saturation guard).
        let ceiling = router.backends().analog().ceiling();
        prop_assert!(
            route.bound.margin(ceiling) <= epsilon,
            "declared bound {:?} exceeds ε={epsilon} at ceiling",
            route.bound
        );

        let mut scratch = DpScratch::new();
        let routed = evaluate_routed(
            route.backend,
            &PairRequest::new(kind),
            p,
            q,
            &mut scratch,
        ).expect("equal-length series");
        let reference = reference(kind, p, q);
        prop_assert!(
            (routed.value - reference).abs() <= epsilon,
            "backend {} answered {} vs reference {} outside ε={epsilon} (fell_back={})",
            route.backend,
            routed.value,
            reference,
            routed.fell_back
        );
    }

    #[test]
    fn fleet_envelope_never_oversubscribes_and_always_drains(
        requests in prop::collection::vec((0usize..DistanceKind::ALL.len(), 8usize..128), 1..24),
    ) {
        let router = Router::new(RouterConfig { fleet_power_w: 10.0 });
        let mut held = Vec::new();
        for (k, len) in requests {
            let route = router.route_pair(
                DistanceKind::ALL[k],
                len,
                Sla::Tolerance(1e9),
            );
            prop_assert!(
                router.fleet().in_use_w() <= router.fleet().cap_w() + 1e-9,
                "fleet oversubscribed: {} W in use under a {} W cap",
                router.fleet().in_use_w(),
                router.fleet().cap_w()
            );
            if route.lease.is_some() {
                held.push(route);
            }
        }
        drop(held);
        prop_assert_eq!(router.fleet().in_use_w(), 0.0);
    }
}
