//! Property tests for the aCAM one-shot backend's routing contract:
//!
//! * **exact never routes aCAM** — the one-shot plane declares a non-exact
//!   bound, so an `exact` SLA must never reach it, whatever the kind;
//! * **tolerance routed to aCAM is honoured** — whenever the router picks
//!   the aCAM backend its declared bound fits ε at the fabric's output
//!   ceiling, and the answer that comes back is within ε of the digital
//!   reference (bitwise, in fact: the routed backend models a tuned array);
//! * **tight tolerances fall back digitally** — below the aCAM bound's
//!   ceiling margin the router must skip the match plane;
//! * **the fleet ledger drains** — aCAM leases interleaved with DP-fabric
//!   leases never oversubscribe the envelope and release to exactly zero.

use proptest::prelude::*;

use mda_distance::{DistanceKind, DpScratch};
use mda_routing::{evaluate_routed, BackendId, PairRequest, Router, RouterConfig, Sla};

const THRESHOLDED: [DistanceKind; 3] =
    [DistanceKind::Hamming, DistanceKind::Edit, DistanceKind::Lcs];

fn any_kind() -> impl Strategy<Value = DistanceKind> {
    (0usize..DistanceKind::ALL.len()).prop_map(|i| DistanceKind::ALL[i])
}

fn thresholded_kind() -> impl Strategy<Value = DistanceKind> {
    (0usize..THRESHOLDED.len()).prop_map(|i| THRESHOLDED[i])
}

fn series() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-6.25f64..6.25, 1..24)
}

fn reference(kind: DistanceKind, p: &[f64], q: &[f64]) -> f64 {
    let mut scratch = DpScratch::new();
    evaluate_routed(
        BackendId::DigitalExact,
        &PairRequest::new(kind),
        p,
        q,
        &mut scratch,
    )
    .expect("equal-length series never shape-error")
    .value
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_sla_never_routes_to_acam(
        kind in any_kind(),
        len in 1usize..2048,
    ) {
        let router = Router::new(RouterConfig::default());
        let route = router.route_pair(kind, len, Sla::Exact);
        prop_assert_ne!(route.backend, BackendId::Acam);
        prop_assert_eq!(route.backend, BackendId::DigitalExact);
    }

    #[test]
    fn tolerance_routed_to_acam_is_honoured_bitwise(
        kind in thresholded_kind(),
        p in series(),
        q in series(),
        epsilon in 4.0f64..64.0,
    ) {
        let n = p.len().min(q.len());
        let (p, q) = (&p[..n], &q[..n]);
        let router = Router::new(RouterConfig::default());
        let route = router.route_pair(kind, n, Sla::Tolerance(epsilon));
        // The match plane is the cheapest path for the thresholded kinds,
        // and its ceiling margin (3.0 at paper defaults) fits every ε here,
        // so the scan must reach it.
        prop_assert_eq!(route.backend, BackendId::Acam);
        prop_assert!(route.lease.is_some(), "analog capacity must be leased");
        let ceiling = router.backends().analog().ceiling();
        prop_assert!(route.bound.margin(ceiling) <= epsilon);

        let mut scratch = DpScratch::new();
        let routed = evaluate_routed(
            route.backend,
            &PairRequest::new(kind),
            p,
            q,
            &mut scratch,
        ).expect("equal-length series");
        let reference = reference(kind, p, q);
        prop_assert!((routed.value - reference).abs() <= epsilon);
        if !routed.fell_back {
            // A tuned array reproduces the digital comparator exactly.
            prop_assert_eq!(routed.value.to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn tight_tolerance_skips_the_match_plane(
        kind in thresholded_kind(),
        len in 1usize..256,
        epsilon in 0.0f64..2.99,
    ) {
        // ε below acam's ceiling margin (0.5 + 0.1·25 = 3.0) — and below
        // the behavioural bound's too — must fall back to digital exact.
        let router = Router::new(RouterConfig::default());
        let route = router.route_pair(kind, len, Sla::Tolerance(epsilon));
        prop_assert_ne!(route.backend, BackendId::Acam);
        prop_assert_eq!(route.backend, BackendId::DigitalExact);
        prop_assert!(route.lease.is_none());
    }

    #[test]
    fn fleet_drains_to_zero_with_acam_leases_interleaved(
        requests in prop::collection::vec(
            (0usize..DistanceKind::ALL.len(), 8usize..128, 0usize..2),
            1..24,
        ),
    ) {
        let router = Router::new(RouterConfig { fleet_power_w: 10.0 });
        let mut held = Vec::new();
        for (k, len, drop_now) in requests {
            let route = router.route_pair(
                DistanceKind::ALL[k],
                len,
                Sla::Tolerance(1e9),
            );
            prop_assert!(
                router.fleet().in_use_w() <= router.fleet().cap_w() + 1e-9,
                "fleet oversubscribed: {} W under a {} W cap",
                router.fleet().in_use_w(),
                router.fleet().cap_w()
            );
            if route.backend == BackendId::Acam {
                prop_assert!(route.lease.is_some(), "aCAM answers must be leased");
            }
            if route.lease.is_some() {
                if drop_now == 1 {
                    drop(route);
                } else {
                    held.push(route);
                }
            }
        }
        drop(held);
        prop_assert_eq!(router.fleet().in_use_w(), 0.0);
    }
}
