//! The five [`DistanceBackend`] implementations, each wrapping one of the
//! repo's existing answer paths without changing its semantics.

use std::sync::OnceLock;

use mda_acam::OneShotMatcher;
use mda_core::accelerator::FunctionParams;
use mda_core::bounds::{acam, behavioural, spice, Bound};
use mda_core::{pe, AcceleratorConfig, DistanceAccelerator};
use mda_distance::dtw::Band;
use mda_distance::lower_bounds::cascading_dtw_with;
use mda_distance::{
    Distance, DistanceKind, DpScratch, Dtw, EditDistance, Hamming, Hausdorff, Lcs, Manhattan,
};
use mda_power::budget::{PowerBudget, PAPER_ELEMENT_RATE};

use crate::backend::{BackendError, BackendId, DistanceBackend, PairRequest};

/// Modeled wall power of the digital host while it computes a DP kernel —
/// one data-center CPU socket's typical sustained draw. The point of the
/// figure is its *order*: digital costs tens of watts where the analog
/// fabric costs single-digit watts (paper Section 4.3), so the router's
/// cheapest-first scan prefers analog whenever the SLA admits it.
pub const DIGITAL_HOST_WATTS: f64 = 65.0;

/// Paper default threshold when a request carries none — the same default
/// `mda-server`'s executor applies.
const DEFAULT_THRESHOLD: f64 = 0.1;

/// The digital DP library, exactly as `mda-server`'s executor drives it:
/// same constructors, same threshold default, same band handling — so its
/// answers are bitwise identical to every pre-routing reply.
#[derive(Debug, Default)]
pub struct DigitalExactBackend;

impl DistanceBackend for DigitalExactBackend {
    fn id(&self) -> BackendId {
        BackendId::DigitalExact
    }

    fn supports(&self, _kind: DistanceKind, _len: usize) -> bool {
        true
    }

    fn bound(&self, _kind: DistanceKind, _len: usize) -> Bound {
        Bound::EXACT
    }

    fn power_w(&self, _kind: DistanceKind, _len: usize) -> f64 {
        DIGITAL_HOST_WATTS
    }

    fn evaluate(
        &self,
        req: &PairRequest,
        p: &[f64],
        q: &[f64],
        scratch: &mut DpScratch,
    ) -> Result<f64, BackendError> {
        let threshold = req.threshold.unwrap_or(DEFAULT_THRESHOLD);
        let value = match req.kind {
            DistanceKind::Dtw => {
                let mut dtw = Dtw::new();
                if let Some(r) = req.band {
                    dtw = dtw.with_band(Band::SakoeChiba(r));
                }
                dtw.evaluate_with(p, q, scratch)
            }
            DistanceKind::Lcs => Lcs::new(threshold).evaluate_with(p, q, scratch),
            DistanceKind::Edit => EditDistance::new(threshold).evaluate_with(p, q, scratch),
            DistanceKind::Hausdorff => Hausdorff::new().evaluate_with(p, q, scratch),
            DistanceKind::Hamming => Hamming::new(threshold).evaluate_with(p, q, scratch),
            DistanceKind::Manhattan => Manhattan::new().evaluate_with(p, q, scratch),
        }?;
        Ok(value)
    }
}

/// The UCR lower-bound cascade — DTW only. Still exact in value (the
/// cascade only skips work it can prove irrelevant), but entered through
/// the pruning pipeline rather than the plain DP, so the serving tier's
/// subsequence-search path is a first-class backend too.
#[derive(Debug, Default)]
pub struct DigitalPrunedBackend;

impl DistanceBackend for DigitalPrunedBackend {
    fn id(&self) -> BackendId {
        BackendId::DigitalPruned
    }

    fn supports(&self, kind: DistanceKind, _len: usize) -> bool {
        kind == DistanceKind::Dtw
    }

    fn bound(&self, _kind: DistanceKind, _len: usize) -> Bound {
        Bound::EXACT
    }

    fn power_w(&self, _kind: DistanceKind, _len: usize) -> f64 {
        DIGITAL_HOST_WATTS
    }

    fn evaluate(
        &self,
        req: &PairRequest,
        p: &[f64],
        q: &[f64],
        scratch: &mut DpScratch,
    ) -> Result<f64, BackendError> {
        if req.kind != DistanceKind::Dtw {
            return Err(BackendError::Unsupported("non-DTW pruned evaluation"));
        }
        // A radius covering the longer side makes Sakoe–Chiba the full
        // matrix, matching the executor's unbanded default.
        let r = req.band.unwrap_or_else(|| p.len().max(q.len()));
        // With no best-so-far nothing can prune, so the cascade always
        // reaches the DP and carries a computed value.
        let decision = cascading_dtw_with(p, q, r, f64::INFINITY, scratch)?;
        Ok(decision.value())
    }
}

/// The behavioural (array-level) analog accelerator model with the
/// paper-default fabric.
#[derive(Debug)]
pub struct AnalogBackend {
    config: AcceleratorConfig,
    budget: PowerBudget,
}

impl AnalogBackend {
    /// An analog backend over the given fabric configuration.
    pub fn new(config: AcceleratorConfig) -> AnalogBackend {
        AnalogBackend {
            budget: PowerBudget::new(config.clone()),
            config,
        }
    }

    /// The fabric's output ceiling in value units: the readout ADC clamps
    /// at ±half its full scale, so answers at or beyond this magnitude may
    /// have saturated.
    pub fn ceiling(&self) -> f64 {
        self.config.adc.full_scale / 2.0 / self.config.voltage_resolution
    }
}

impl Default for AnalogBackend {
    fn default() -> Self {
        AnalogBackend::new(AcceleratorConfig::paper_defaults())
    }
}

impl DistanceBackend for AnalogBackend {
    fn id(&self) -> BackendId {
        BackendId::Analog
    }

    fn supports(&self, _kind: DistanceKind, _len: usize) -> bool {
        true
    }

    fn bound(&self, kind: DistanceKind, len: usize) -> Bound {
        behavioural(kind, len)
    }

    fn power_w(&self, kind: DistanceKind, len: usize) -> f64 {
        self.budget
            .breakdown(kind, len.max(1), PAPER_ELEMENT_RATE)
            .total_w()
    }

    fn evaluate(
        &self,
        req: &PairRequest,
        p: &[f64],
        q: &[f64],
        _scratch: &mut DpScratch,
    ) -> Result<f64, BackendError> {
        let mut acc = DistanceAccelerator::new(self.config.clone());
        acc.configure_with(
            req.kind,
            FunctionParams {
                threshold: req.threshold.unwrap_or(DEFAULT_THRESHOLD),
                weight: 1.0,
                band: match req.band {
                    Some(r) => Band::SakoeChiba(r),
                    None => Band::Full,
                },
            },
        )?;
        Ok(acc.compute(p, q)?.value)
    }
}

/// The device-level SPICE-solved PE netlists. Size-gated like the
/// conformance harness's SPICE layer (matrix netlists grow O(m·n) MNA
/// nodes), and more expensive than everything else — the host solves the
/// netlist *and* models the fabric — so the router never auto-picks it,
/// but it stays addressable as a first-class backend.
#[derive(Debug)]
pub struct SpiceBackend {
    config: AcceleratorConfig,
    budget: PowerBudget,
}

/// Largest per-side length the matrix-structure netlists (DTW/LCS/EdD/HauD)
/// are solved at.
const SPICE_MATRIX_CAP: usize = 3;
/// Largest length the row-structure netlists (HamD/MD) are solved at.
const SPICE_ROW_CAP: usize = 8;

impl SpiceBackend {
    /// A SPICE backend over the given fabric configuration.
    pub fn new(config: AcceleratorConfig) -> SpiceBackend {
        SpiceBackend {
            budget: PowerBudget::new(config.clone()),
            config,
        }
    }
}

impl Default for SpiceBackend {
    fn default() -> Self {
        SpiceBackend::new(AcceleratorConfig::paper_defaults())
    }
}

impl DistanceBackend for SpiceBackend {
    fn id(&self) -> BackendId {
        BackendId::Spice
    }

    fn supports(&self, kind: DistanceKind, len: usize) -> bool {
        if kind.uses_matrix_structure() {
            len <= SPICE_MATRIX_CAP
        } else {
            len <= SPICE_ROW_CAP
        }
    }

    fn bound(&self, kind: DistanceKind, _len: usize) -> Bound {
        spice(kind)
    }

    fn power_w(&self, kind: DistanceKind, len: usize) -> f64 {
        // The fabric draws its analog budget while the digital host solves
        // the netlist: strictly the most expensive way to get an answer.
        self.budget
            .breakdown(kind, len.max(1), PAPER_ELEMENT_RATE)
            .total_w()
            + DIGITAL_HOST_WATTS
    }

    fn evaluate(
        &self,
        req: &PairRequest,
        p: &[f64],
        q: &[f64],
        _scratch: &mut DpScratch,
    ) -> Result<f64, BackendError> {
        if req.band.is_some() {
            // The device netlists hard-wire the full recurrence fabric.
            return Err(BackendError::Unsupported("banded DTW SPICE netlists"));
        }
        if !self.supports(req.kind, p.len().max(q.len())) {
            return Err(BackendError::Unsupported("netlists above the size cap"));
        }
        let threshold = req.threshold.unwrap_or(DEFAULT_THRESHOLD);
        let value = match req.kind {
            DistanceKind::Dtw => pe::dtw::evaluate_dc(&self.config, p, q, 1.0),
            DistanceKind::Lcs => pe::lcs::evaluate_dc(&self.config, p, q, threshold, 1.0),
            DistanceKind::Edit => pe::edit::evaluate_dc(&self.config, p, q, threshold),
            DistanceKind::Hausdorff => pe::hausdorff::evaluate_dc(&self.config, p, q, 1.0),
            DistanceKind::Hamming => {
                pe::hamming::evaluate_dc(&self.config, p, q, threshold, &vec![1.0; p.len()])
            }
            DistanceKind::Manhattan => {
                pe::manhattan::evaluate_dc(&self.config, p, q, &vec![1.0; p.len()])
            }
        }?;
        Ok(value)
    }
}

/// The aCAM one-shot matching plane: thresholded kinds (HamD, thresholded
/// EdD/LCS) answered by interval-comparator match lines instead of a DP
/// iteration. The routed backend models a *tuned* array (closed-loop
/// program-and-verify, so every comparator sits exactly on the digital
/// threshold); variation- and fault-seeded arrays live in the pre-filter
/// and the conformance fault plane, where their one-sided degradation is
/// what's under test.
#[derive(Debug)]
pub struct AcamBackend {
    budget: PowerBudget,
}

/// Largest word the match plane holds: one row of interval cells per
/// element, sized to the paper's array geometry.
const ACAM_MAX_LEN: usize = 1024;

/// Duty factor of a one-shot search against the DP fabric's draw: the
/// match plane fires one precharge/sense cycle per word where the DP
/// fabric clocks a full wavefront, so its time-averaged draw is a small
/// fraction of the analog budget for the same request.
const ACAM_DUTY: f64 = 0.25;

impl AcamBackend {
    /// An aCAM backend drawing against the given fabric configuration's
    /// power model.
    pub fn new(config: AcceleratorConfig) -> AcamBackend {
        AcamBackend {
            budget: PowerBudget::new(config),
        }
    }
}

impl Default for AcamBackend {
    fn default() -> Self {
        AcamBackend::new(AcceleratorConfig::paper_defaults())
    }
}

impl DistanceBackend for AcamBackend {
    fn id(&self) -> BackendId {
        BackendId::Acam
    }

    fn supports(&self, kind: DistanceKind, len: usize) -> bool {
        matches!(
            kind,
            DistanceKind::Hamming | DistanceKind::Edit | DistanceKind::Lcs
        ) && len <= ACAM_MAX_LEN
    }

    fn bound(&self, kind: DistanceKind, len: usize) -> Bound {
        acam(kind, len)
    }

    fn power_w(&self, kind: DistanceKind, len: usize) -> f64 {
        ACAM_DUTY
            * self
                .budget
                .breakdown(kind, len.max(1), PAPER_ELEMENT_RATE)
                .total_w()
    }

    fn evaluate(
        &self,
        req: &PairRequest,
        p: &[f64],
        q: &[f64],
        _scratch: &mut DpScratch,
    ) -> Result<f64, BackendError> {
        if !self.supports(req.kind, p.len().max(q.len())) {
            return Err(BackendError::Unsupported("non-thresholded one-shot kinds"));
        }
        let threshold = req.threshold.unwrap_or(DEFAULT_THRESHOLD);
        if !threshold.is_finite() || threshold < 0.0 {
            return Err(BackendError::Unsupported(
                "non-finite or negative match thresholds",
            ));
        }
        let value = OneShotMatcher::new(threshold).evaluate(req.kind, p, q)?;
        Ok(value)
    }
}

/// All five backends over one fabric configuration.
#[derive(Debug, Default)]
pub struct BackendSet {
    digital_exact: DigitalExactBackend,
    digital_pruned: DigitalPrunedBackend,
    analog: AnalogBackend,
    acam: AcamBackend,
    spice: SpiceBackend,
}

impl BackendSet {
    /// A set over the given fabric configuration (the digital paths are
    /// configuration-free).
    pub fn new(config: AcceleratorConfig) -> BackendSet {
        BackendSet {
            digital_exact: DigitalExactBackend,
            digital_pruned: DigitalPrunedBackend,
            analog: AnalogBackend::new(config.clone()),
            acam: AcamBackend::new(config.clone()),
            spice: SpiceBackend::new(config),
        }
    }

    /// The backend for an id.
    pub fn get(&self, id: BackendId) -> &dyn DistanceBackend {
        match id {
            BackendId::DigitalExact => &self.digital_exact,
            BackendId::DigitalPruned => &self.digital_pruned,
            BackendId::Analog => &self.analog,
            BackendId::Acam => &self.acam,
            BackendId::Spice => &self.spice,
        }
    }

    /// The analog backend, concretely (for its [`AnalogBackend::ceiling`]).
    pub fn analog(&self) -> &AnalogBackend {
        &self.analog
    }

    /// All five backends in [`BackendId::ALL`] order.
    pub fn all(&self) -> [&dyn DistanceBackend; 5] {
        BackendId::ALL.map(|id| self.get(id))
    }
}

/// The process-wide backend set over the paper-default fabric — what the
/// server's executor dispatches against, so routing state never has to be
/// threaded through the coalescing queue.
pub fn default_backends() -> &'static BackendSet {
    static SET: OnceLock<BackendSet> = OnceLock::new();
    SET.get_or_init(BackendSet::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(len: usize, phase: f64) -> Vec<f64> {
        (0..len).map(|i| (i as f64 * 0.4 + phase).sin()).collect()
    }

    #[test]
    fn digital_exact_is_bitwise_identical_to_direct_library_calls() {
        let p = series(16, 0.0);
        let q = series(16, 0.7);
        let mut scratch = DpScratch::new();
        let backend = DigitalExactBackend;
        for kind in DistanceKind::ALL {
            let routed = backend
                .evaluate(&PairRequest::new(kind), &p, &q, &mut scratch)
                .unwrap();
            let direct = mda_distance::boxed_distance(kind).evaluate(&p, &q).unwrap();
            assert_eq!(routed.to_bits(), direct.to_bits(), "{kind}");
        }
    }

    #[test]
    fn digital_pruned_matches_exact_dtw_in_value() {
        let p = series(24, 0.0);
        let q = series(24, 1.1);
        let mut scratch = DpScratch::new();
        let pruned = DigitalPrunedBackend
            .evaluate(&PairRequest::new(DistanceKind::Dtw), &p, &q, &mut scratch)
            .unwrap();
        let exact = Dtw::new().evaluate(&p, &q).unwrap();
        assert!((pruned - exact).abs() < 1e-9, "{pruned} vs {exact}");
        assert!(DigitalPrunedBackend
            .evaluate(&PairRequest::new(DistanceKind::Lcs), &p, &q, &mut scratch)
            .is_err());
    }

    #[test]
    fn analog_answers_stay_within_the_calibrated_bound() {
        let p = series(12, 0.0);
        let q = series(12, 0.5);
        let mut scratch = DpScratch::new();
        let set = default_backends();
        for kind in DistanceKind::ALL {
            let req = PairRequest::new(kind);
            let analog = set
                .get(BackendId::Analog)
                .evaluate(&req, &p, &q, &mut scratch)
                .unwrap();
            let reference = set
                .get(BackendId::DigitalExact)
                .evaluate(&req, &p, &q, &mut scratch)
                .unwrap();
            let bound = behavioural(kind, 12);
            assert!(
                bound.allows(analog, reference),
                "{kind}: {analog} vs {reference}"
            );
        }
    }

    #[test]
    fn power_ordering_prefers_analog_and_penalizes_spice() {
        let set = default_backends();
        for kind in DistanceKind::ALL {
            let analog = set.get(BackendId::Analog).power_w(kind, 128);
            let digital = set.get(BackendId::DigitalExact).power_w(kind, 128);
            let spice = set.get(BackendId::Spice).power_w(kind, 128);
            assert!(analog < digital, "{kind}: {analog} vs {digital}");
            assert!(spice > digital, "{kind}: {spice} vs {digital}");
        }
        // The one-shot match plane undercuts even the DP fabric on the
        // kinds it serves, so the cheapest-first scan reaches it first.
        for kind in [DistanceKind::Hamming, DistanceKind::Edit, DistanceKind::Lcs] {
            let acam_w = set.get(BackendId::Acam).power_w(kind, 128);
            let analog = set.get(BackendId::Analog).power_w(kind, 128);
            assert!(acam_w < analog, "{kind}: {acam_w} vs {analog}");
        }
    }

    #[test]
    fn acam_one_shot_is_bitwise_identical_to_the_digital_kernels() {
        let mut scratch = DpScratch::new();
        let set = default_backends();
        let backend = set.get(BackendId::Acam);
        for (lp, lq) in [(12usize, 12usize), (9, 14), (14, 9)] {
            let p = series(lp, 0.0);
            let q = series(lq, 0.7);
            for kind in [DistanceKind::Hamming, DistanceKind::Edit, DistanceKind::Lcs] {
                if kind == DistanceKind::Hamming && lp != lq {
                    continue;
                }
                for threshold in [None, Some(0.05), Some(0.4)] {
                    let req = PairRequest {
                        kind,
                        threshold,
                        band: None,
                    };
                    let one_shot = backend.evaluate(&req, &p, &q, &mut scratch).unwrap();
                    let digital = set
                        .get(BackendId::DigitalExact)
                        .evaluate(&req, &p, &q, &mut scratch)
                        .unwrap();
                    assert_eq!(
                        one_shot.to_bits(),
                        digital.to_bits(),
                        "{kind} threshold {threshold:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn acam_supports_exactly_the_thresholded_kinds() {
        let set = default_backends();
        let backend = set.get(BackendId::Acam);
        for kind in DistanceKind::ALL {
            let thresholded = matches!(
                kind,
                DistanceKind::Hamming | DistanceKind::Edit | DistanceKind::Lcs
            );
            assert_eq!(backend.supports(kind, 16), thresholded, "{kind}");
        }
        assert!(!backend.supports(DistanceKind::Hamming, ACAM_MAX_LEN + 1));
        // Unsupported requests report as such, not as a distance error.
        let p = series(8, 0.0);
        let q = series(8, 0.3);
        let mut scratch = DpScratch::new();
        let err = backend
            .evaluate(&PairRequest::new(DistanceKind::Dtw), &p, &q, &mut scratch)
            .unwrap_err();
        assert!(matches!(err, BackendError::Unsupported(_)), "{err}");
    }

    #[test]
    fn spice_size_gates_mirror_the_conformance_harness() {
        let set = default_backends();
        let spice = set.get(BackendId::Spice);
        assert!(spice.supports(DistanceKind::Dtw, 3));
        assert!(!spice.supports(DistanceKind::Dtw, 4));
        assert!(spice.supports(DistanceKind::Manhattan, 8));
        assert!(!spice.supports(DistanceKind::Manhattan, 9));
    }

    #[test]
    fn analog_ceiling_matches_the_conformance_harness() {
        // 1 V full scale at 20 mV/unit → ±25 units of encodable output.
        assert!((default_backends().analog().ceiling() - 25.0).abs() < 1e-12);
    }
}
