//! The analog fleet's power envelope: a shared watt budget that routed
//! work reserves against and releases when it completes.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Watts expressed in integer microwatts, so the envelope accounting is a
/// single atomic with no float races.
fn to_microwatts(w: f64) -> u64 {
    (w.max(0.0) * 1e6).round() as u64
}

/// A shared analog-fleet power envelope.
///
/// Cloning shares the envelope: every clone draws against the same
/// accumulator, which is how the event loop, the router and tests all see
/// one fleet.
#[derive(Clone)]
pub struct FleetBudget {
    cap_uw: u64,
    in_use_uw: Arc<AtomicU64>,
}

impl FleetBudget {
    /// An envelope of `cap_w` watts, initially idle.
    pub fn new(cap_w: f64) -> FleetBudget {
        FleetBudget {
            cap_uw: to_microwatts(cap_w),
            in_use_uw: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The envelope size, watts.
    pub fn cap_w(&self) -> f64 {
        self.cap_uw as f64 / 1e6
    }

    /// Watts currently reserved.
    pub fn in_use_w(&self) -> f64 {
        self.in_use_uw.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Tries to reserve `watts` from the envelope. `None` when the fleet is
    /// saturated — the router's cue to fall back to digital. The returned
    /// lease releases the reservation when dropped.
    pub fn try_reserve(&self, watts: f64) -> Option<PowerLease> {
        let want = to_microwatts(watts);
        let mut current = self.in_use_uw.load(Ordering::Relaxed);
        loop {
            let next = current.checked_add(want)?;
            if next > self.cap_uw {
                return None;
            }
            match self.in_use_uw.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(PowerLease {
                        uw: want,
                        in_use_uw: Arc::clone(&self.in_use_uw),
                    })
                }
                Err(seen) => current = seen,
            }
        }
    }
}

impl fmt::Debug for FleetBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetBudget")
            .field("cap_w", &self.cap_w())
            .field("in_use_w", &self.in_use_w())
            .finish()
    }
}

/// A live reservation against a [`FleetBudget`]; releases on drop.
#[derive(Debug)]
pub struct PowerLease {
    uw: u64,
    in_use_uw: Arc<AtomicU64>,
}

impl PowerLease {
    /// The reserved draw, watts.
    pub fn watts(&self) -> f64 {
        self.uw as f64 / 1e6
    }
}

impl Drop for PowerLease {
    fn drop(&mut self) {
        self.in_use_uw.fetch_sub(self.uw, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservations_accumulate_and_release_on_drop() {
        let fleet = FleetBudget::new(10.0);
        let a = fleet.try_reserve(4.0).unwrap();
        let b = fleet.try_reserve(4.0).unwrap();
        assert!((fleet.in_use_w() - 8.0).abs() < 1e-9);
        // 4 more would exceed the 10 W envelope.
        assert!(fleet.try_reserve(4.0).is_none());
        drop(a);
        assert!((fleet.in_use_w() - 4.0).abs() < 1e-9);
        let c = fleet.try_reserve(6.0).unwrap();
        assert!((c.watts() - 6.0).abs() < 1e-9);
        drop((b, c));
        assert_eq!(fleet.in_use_w(), 0.0);
    }

    #[test]
    fn clones_share_one_envelope() {
        let fleet = FleetBudget::new(5.0);
        let view = fleet.clone();
        let _lease = fleet.try_reserve(5.0).unwrap();
        assert!(view.try_reserve(0.1).is_none());
        assert!((view.in_use_w() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cap_admits_nothing() {
        let fleet = FleetBudget::new(0.0);
        assert!(fleet.try_reserve(0.5).is_none());
    }
}
