//! Per-request accuracy SLAs.

use std::fmt;

/// How accurate a request's answer must be.
///
/// `Exact` demands the bitwise digital value; `Tolerance(ε)` accepts any
/// answer within `ε` sequence units of the true digital value, which is
/// what lets the router move bulk work onto the analog fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sla {
    /// The answer must be the bitwise digital value.
    Exact,
    /// The answer may deviate from the digital value by at most this many
    /// sequence units (finite, non-negative).
    Tolerance(f64),
}

/// Why a tolerance was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SlaError {
    /// The tolerance was NaN or infinite.
    NonFinite(f64),
    /// The tolerance was negative.
    Negative(f64),
}

impl fmt::Display for SlaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlaError::NonFinite(v) => write!(f, "tolerance must be finite, got {v}"),
            SlaError::Negative(v) => write!(f, "tolerance must be non-negative, got {v}"),
        }
    }
}

impl std::error::Error for SlaError {}

impl Sla {
    /// A validated tolerance SLA.
    ///
    /// # Errors
    ///
    /// [`SlaError`] for NaN, infinite or negative `epsilon` — the same
    /// NaN-hygiene contract the pruned-search thresholds enforce.
    pub fn tolerance(epsilon: f64) -> Result<Sla, SlaError> {
        if !epsilon.is_finite() {
            return Err(SlaError::NonFinite(epsilon));
        }
        if epsilon < 0.0 {
            return Err(SlaError::Negative(epsilon));
        }
        Ok(Sla::Tolerance(epsilon))
    }

    /// `true` for [`Sla::Exact`].
    pub fn is_exact(&self) -> bool {
        matches!(self, Sla::Exact)
    }

    /// The permitted deviation: 0 for `Exact`, ε for `Tolerance(ε)`.
    pub fn epsilon(&self) -> f64 {
        match self {
            Sla::Exact => 0.0,
            Sla::Tolerance(e) => *e,
        }
    }
}

impl Default for Sla {
    /// Absent SLA ⇒ `exact`: the wire protocol's bitwise-compatible default.
    fn default() -> Self {
        Sla::Exact
    }
}

impl fmt::Display for Sla {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sla::Exact => f.write_str("exact"),
            Sla::Tolerance(e) => write!(f, "tolerance({e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_rejects_non_finite_and_negative() {
        assert!(matches!(
            Sla::tolerance(f64::NAN),
            Err(SlaError::NonFinite(v)) if v.is_nan()
        ));
        assert!(matches!(
            Sla::tolerance(f64::INFINITY),
            Err(SlaError::NonFinite(_))
        ));
        assert_eq!(Sla::tolerance(-0.5), Err(SlaError::Negative(-0.5)));
        assert_eq!(Sla::tolerance(0.0), Ok(Sla::Tolerance(0.0)));
    }

    #[test]
    fn default_is_exact() {
        assert!(Sla::default().is_exact());
        assert_eq!(Sla::default().epsilon(), 0.0);
    }

    #[test]
    fn display_matches_wire_names() {
        assert_eq!(Sla::Exact.to_string(), "exact");
        assert_eq!(Sla::Tolerance(2.5).to_string(), "tolerance(2.5)");
    }
}
