//! The [`DistanceBackend`] trait: one capability surface over the four
//! answer paths.

use std::fmt;

use mda_core::bounds::Bound;
use mda_core::AcceleratorError;
use mda_distance::{DistanceError, DistanceKind, DpScratch};

/// Which answer path a backend wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendId {
    /// The digital DP library, bitwise identical to direct calls.
    DigitalExact,
    /// The UCR lower-bound cascade — still exact, prunes instead of
    /// approximating. The serving tier's subsequence-search path.
    DigitalPruned,
    /// The behavioural (array-level) analog accelerator model.
    Analog,
    /// The aCAM one-shot matching plane — thresholded kinds only, one
    /// precharge/sense cycle per word instead of a DP iteration.
    Acam,
    /// The device-level SPICE-solved PE netlists.
    Spice,
}

impl BackendId {
    /// All five backends, cheapest-to-validate first. Declaration order —
    /// the server's metrics index counters by discriminant and label them
    /// by this array, so the two must stay aligned.
    pub const ALL: [BackendId; 5] = [
        BackendId::DigitalExact,
        BackendId::DigitalPruned,
        BackendId::Analog,
        BackendId::Acam,
        BackendId::Spice,
    ];

    /// The wire name reported on routed replies.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendId::DigitalExact => "digital_exact",
            BackendId::DigitalPruned => "digital_pruned",
            BackendId::Analog => "analog",
            BackendId::Acam => "acam",
            BackendId::Spice => "spice",
        }
    }
}

impl fmt::Display for BackendId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when parsing a [`BackendId`] wire name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendIdError {
    name: String,
}

impl fmt::Display for ParseBackendIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown backend `{}` (expected digital_exact, digital_pruned, analog, acam or spice)",
            self.name
        )
    }
}

impl std::error::Error for ParseBackendIdError {}

impl std::str::FromStr for BackendId {
    type Err = ParseBackendIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BackendId::ALL
            .into_iter()
            .find(|b| b.as_str() == s)
            .ok_or_else(|| ParseBackendIdError {
                name: s.to_string(),
            })
    }
}

/// Function parameters for one pair evaluation — the backend-agnostic
/// mirror of the server executor's `PairSpec`.
#[derive(Debug, Clone, Copy)]
pub struct PairRequest {
    /// Which of the six functions.
    pub kind: DistanceKind,
    /// Match threshold override (LCS/EdD/HamD); `None` = paper default 0.1.
    pub threshold: Option<f64>,
    /// Sakoe–Chiba radius (DTW); `None` = full matrix.
    pub band: Option<usize>,
}

impl PairRequest {
    /// A request with default parameters.
    pub fn new(kind: DistanceKind) -> PairRequest {
        PairRequest {
            kind,
            threshold: None,
            band: None,
        }
    }
}

/// Why a backend could not answer.
#[derive(Debug)]
pub enum BackendError {
    /// The distance definition rejected the inputs (shape errors) — the
    /// same error every backend reports for the same bad input.
    Distance(DistanceError),
    /// The analog model failed (encoding range, solver, configuration).
    Accelerator(AcceleratorError),
    /// The backend does not implement this request shape.
    Unsupported(&'static str),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Distance(e) => write!(f, "{e}"),
            BackendError::Accelerator(e) => write!(f, "{e}"),
            BackendError::Unsupported(what) => write!(f, "backend does not support {what}"),
        }
    }
}

impl std::error::Error for BackendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BackendError::Distance(e) => Some(e),
            BackendError::Accelerator(e) => Some(e),
            BackendError::Unsupported(_) => None,
        }
    }
}

impl From<DistanceError> for BackendError {
    fn from(e: DistanceError) -> Self {
        BackendError::Distance(e)
    }
}

impl From<AcceleratorError> for BackendError {
    fn from(e: AcceleratorError) -> Self {
        // Shape rejections surface as the underlying distance error so
        // every backend reports bad input identically.
        match e {
            AcceleratorError::Distance(d) => BackendError::Distance(d),
            other => BackendError::Accelerator(other),
        }
    }
}

/// One answer path, with its capability surface.
///
/// `len` throughout is the longer of the two series — the size the
/// calibrated bounds and the power model are parameterized by.
pub trait DistanceBackend: Send + Sync {
    /// Which path this is.
    fn id(&self) -> BackendId;

    /// Whether this backend can answer `kind` at problem size `len`.
    fn supports(&self, kind: DistanceKind, len: usize) -> bool;

    /// The calibrated error bound this backend guarantees against the
    /// digital reference at `(kind, len)`. [`Bound::EXACT`] for the
    /// digital paths.
    fn bound(&self, kind: DistanceKind, len: usize) -> Bound;

    /// Modeled power draw while answering `(kind, len)`, watts.
    fn power_w(&self, kind: DistanceKind, len: usize) -> f64;

    /// Evaluates one pair.
    ///
    /// # Errors
    ///
    /// [`BackendError`] — shape rejections are reported identically across
    /// backends; analog-only failures (encoding range, solver) are the
    /// router's cue to fall back to digital.
    fn evaluate(
        &self,
        req: &PairRequest,
        p: &[f64],
        q: &[f64],
        scratch: &mut DpScratch,
    ) -> Result<f64, BackendError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_ids_round_trip_their_wire_names() {
        for id in BackendId::ALL {
            assert_eq!(id.as_str().parse::<BackendId>(), Ok(id));
        }
        let err = "fpga".parse::<BackendId>().unwrap_err();
        assert!(err.to_string().contains("`fpga`"), "{err}");
    }
}
