//! The accuracy-SLA, power-budget-aware router, and the fallback-guarded
//! evaluation entry the serving tier dispatches through.

use mda_distance::{DistanceError, DistanceKind, DpScratch};

use crate::backend::{BackendError, BackendId, PairRequest};
use crate::backends::{default_backends, BackendSet};
use crate::fleet::{FleetBudget, PowerLease};
use crate::sla::Sla;
use mda_core::bounds::Bound;

/// Router configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterConfig {
    /// The analog fleet's power envelope, watts. Tolerance-tagged work is
    /// admitted onto the analog fabric only while its modeled draw fits
    /// inside this cap; past it, work falls back to digital.
    pub fleet_power_w: f64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        // Room for a few dozen concurrent analog configurations at the
        // paper's 0.58–6.36 W operating points.
        RouterConfig {
            fleet_power_w: 50.0,
        }
    }
}

/// A routing decision: which backend answers, the bound it guarantees, and
/// the fleet reservation held while it computes (analog paths only).
#[derive(Debug)]
pub struct Route {
    /// The chosen backend.
    pub backend: BackendId,
    /// The error bound the answer is guaranteed to satisfy.
    pub bound: Bound,
    /// The fleet power reservation, held until dropped.
    pub lease: Option<PowerLease>,
}

/// Picks the cheapest backend whose calibrated bound satisfies each
/// request's accuracy SLA at current fleet load.
#[derive(Debug)]
pub struct Router {
    backends: &'static BackendSet,
    fleet: FleetBudget,
}

impl Router {
    /// A router over the process-default backends with a fresh fleet
    /// envelope.
    pub fn new(config: RouterConfig) -> Router {
        Router::with_fleet(FleetBudget::new(config.fleet_power_w))
    }

    /// A router sharing an existing fleet envelope (so several routers, or
    /// a router and a metrics exporter, can see one fleet).
    pub fn with_fleet(fleet: FleetBudget) -> Router {
        Router {
            backends: default_backends(),
            fleet,
        }
    }

    /// The fleet envelope this router admits analog work against.
    pub fn fleet(&self) -> &FleetBudget {
        &self.fleet
    }

    /// The backends this router chooses among.
    pub fn backends(&self) -> &'static BackendSet {
        self.backends
    }

    /// Routes one pair evaluation of `kind` at problem size `len` (the
    /// longer of the two series).
    ///
    /// `exact` always routes to the bitwise digital path. `tolerance(ε)`
    /// scans backends cheapest-first and picks the first whose calibrated
    /// bound provably fits inside ε — for analog paths that means the
    /// bound's margin *at the fabric's output ceiling* (the largest
    /// reference the saturation guard in [`evaluate_routed`] lets an analog
    /// answer stand for) fits in ε, and a fleet reservation is available.
    /// When nothing cheaper qualifies, the answer falls back to digital
    /// exact, which satisfies every SLA.
    pub fn route_pair(&self, kind: DistanceKind, len: usize, sla: Sla) -> Route {
        let exact = Route {
            backend: BackendId::DigitalExact,
            bound: Bound::EXACT,
            lease: None,
        };
        let epsilon = match sla {
            Sla::Exact => return exact,
            Sla::Tolerance(e) => e,
        };
        let mut candidates: Vec<(f64, BackendId)> = BackendId::ALL
            .into_iter()
            .map(|id| (self.backends.get(id).power_w(kind, len), id))
            .collect();
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
        let ceiling = self.backends.analog().ceiling();
        for (_, id) in candidates {
            let backend = self.backends.get(id);
            if !backend.supports(kind, len) {
                continue;
            }
            let bound = backend.bound(kind, len);
            if bound == Bound::EXACT {
                // A digital path: exact, free of fleet accounting, and the
                // cheapest-first scan already preferred anything cheaper.
                return Route {
                    backend: id,
                    bound,
                    lease: None,
                };
            }
            // Analog path. The saturation guard lets an analog answer stand
            // only for references up to the output ceiling, so the worst
            // admissible deviation is the bound's margin there; it must fit
            // in ε and leave the guard a non-empty admission window.
            let margin = bound.margin(ceiling);
            if margin > epsilon || margin >= ceiling {
                continue;
            }
            if let Some(lease) = self.fleet.try_reserve(backend.power_w(kind, len)) {
                return Route {
                    backend: id,
                    bound,
                    lease: Some(lease),
                };
            }
        }
        exact
    }

    /// Routes a subsequence search. The UCR cascade needs exact distances
    /// to prune soundly against a best-so-far, so every SLA routes to the
    /// pruned digital path — itself exact in value.
    pub fn route_search(&self, _sla: Sla) -> Route {
        Route {
            backend: BackendId::DigitalPruned,
            bound: Bound::EXACT,
            lease: None,
        }
    }
}

/// A routed answer: the value, and whether the analog path silently fell
/// back to a digital recompute for this item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutedValue {
    /// The answer.
    pub value: f64,
    /// `true` when an analog backend saturated or could not encode the
    /// inputs and the value is a digital recompute instead.
    pub fell_back: bool,
}

/// Evaluates one pair on a routed backend, with the fallback guard that
/// makes tolerance routing sound:
///
/// * an analog answer at or beyond `ceiling − margin` may have saturated —
///   beyond that magnitude the true value could be anywhere above the
///   ceiling, so the item is silently recomputed digitally;
/// * analog-only failures (DAC encoding range, solver trouble) also fall
///   back to the digital recompute;
/// * shape errors surface as the same [`DistanceError`] the digital path
///   reports, whatever the backend.
///
/// An answer below the guard threshold stands for a true value of at most
/// `ceiling`, where the calibrated bound's margin is exactly what the
/// router checked against the SLA — so every value returned here is within
/// the route's declared bound of the true digital value.
///
/// # Errors
///
/// Shape errors from the distance definitions, identical across backends.
pub fn evaluate_routed(
    backend: BackendId,
    req: &PairRequest,
    p: &[f64],
    q: &[f64],
    scratch: &mut DpScratch,
) -> Result<RoutedValue, DistanceError> {
    let set = default_backends();
    let digital = |scratch: &mut DpScratch| -> Result<f64, DistanceError> {
        match set
            .get(BackendId::DigitalExact)
            .evaluate(req, p, q, scratch)
        {
            Ok(v) => Ok(v),
            Err(BackendError::Distance(e)) => Err(e),
            // The digital library only fails with shape errors.
            Err(other) => unreachable!("digital backend failed non-digitally: {other}"),
        }
    };
    match set.get(backend).evaluate(req, p, q, scratch) {
        Ok(value) => {
            let guarded = match backend {
                BackendId::DigitalExact | BackendId::DigitalPruned => {
                    return Ok(RoutedValue {
                        value,
                        fell_back: false,
                    })
                }
                BackendId::Analog | BackendId::Acam | BackendId::Spice => value,
            };
            let ceiling = set.analog().ceiling();
            let len = p.len().max(q.len());
            let margin = set.get(backend).bound(req.kind, len).margin(ceiling);
            if !guarded.is_finite() || guarded.abs() >= ceiling - margin {
                // Possible saturation: the true value may exceed the
                // ceiling, where the bound no longer covers it.
                return Ok(RoutedValue {
                    value: digital(scratch)?,
                    fell_back: true,
                });
            }
            Ok(RoutedValue {
                value: guarded,
                fell_back: false,
            })
        }
        Err(BackendError::Distance(e)) => Err(e),
        Err(BackendError::Accelerator(_)) | Err(BackendError::Unsupported(_)) => Ok(RoutedValue {
            value: digital(scratch)?,
            fell_back: true,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_core::bounds::behavioural;
    use mda_distance::{Distance, Dtw, Manhattan};

    fn series(len: usize, phase: f64, amp: f64) -> Vec<f64> {
        (0..len)
            .map(|i| amp * (i as f64 * 0.4 + phase).sin())
            .collect()
    }

    #[test]
    fn exact_sla_always_routes_digital_exact() {
        let router = Router::new(RouterConfig::default());
        for kind in DistanceKind::ALL {
            let route = router.route_pair(kind, 128, Sla::Exact);
            assert_eq!(route.backend, BackendId::DigitalExact);
            assert_eq!(route.bound, Bound::EXACT);
            assert!(route.lease.is_none());
        }
    }

    #[test]
    fn loose_tolerance_routes_to_the_analog_fabric() {
        let router = Router::new(RouterConfig::default());
        let route = router.route_pair(DistanceKind::Dtw, 128, Sla::Tolerance(16.0));
        assert_eq!(route.backend, BackendId::Analog);
        assert!(route.lease.is_some());
        assert!(router.fleet().in_use_w() > 0.0);
        drop(route);
        assert_eq!(router.fleet().in_use_w(), 0.0);
    }

    #[test]
    fn tight_tolerance_falls_back_to_digital() {
        let router = Router::new(RouterConfig::default());
        // behavioural(Dtw, 128).margin(25) = 0.6 + 6.4 + 7.5 = 14.5 > 1.
        let route = router.route_pair(DistanceKind::Dtw, 128, Sla::Tolerance(1.0));
        assert_eq!(route.backend, BackendId::DigitalExact);
        assert_eq!(route.bound, Bound::EXACT);
    }

    #[test]
    fn saturated_fleet_falls_back_to_digital() {
        let router = Router::with_fleet(FleetBudget::new(1.0));
        // DTW at n=128 draws ~0.58 W: the first route fits, the second
        // would exceed the 1 W envelope.
        let held = router.route_pair(DistanceKind::Dtw, 128, Sla::Tolerance(16.0));
        assert_eq!(held.backend, BackendId::Analog);
        let overflow = router.route_pair(DistanceKind::Dtw, 128, Sla::Tolerance(16.0));
        assert_eq!(overflow.backend, BackendId::DigitalExact);
        drop(held);
        let again = router.route_pair(DistanceKind::Dtw, 128, Sla::Tolerance(16.0));
        assert_eq!(again.backend, BackendId::Analog);
    }

    #[test]
    fn searches_route_to_the_pruned_path_for_every_sla() {
        let router = Router::new(RouterConfig::default());
        for sla in [Sla::Exact, Sla::Tolerance(100.0)] {
            let route = router.route_search(sla);
            assert_eq!(route.backend, BackendId::DigitalPruned);
            assert_eq!(route.bound, Bound::EXACT);
        }
    }

    #[test]
    fn routed_analog_answer_is_within_the_declared_bound() {
        let p = series(12, 0.0, 2.0);
        let q = series(12, 0.9, 2.0);
        let mut scratch = DpScratch::new();
        let req = PairRequest::new(DistanceKind::Dtw);
        let routed = evaluate_routed(BackendId::Analog, &req, &p, &q, &mut scratch).unwrap();
        let reference = Dtw::new().evaluate(&p, &q).unwrap();
        if !routed.fell_back {
            assert!(behavioural(DistanceKind::Dtw, 12).allows(routed.value, reference));
        } else {
            assert_eq!(routed.value.to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn unencodable_inputs_fall_back_to_the_digital_value() {
        // |x| far beyond the 6.25-unit DAC cap: analog cannot encode it.
        let p = vec![100.0, -100.0, 50.0, 75.0];
        let q = vec![-80.0, 90.0, -60.0, 40.0];
        let mut scratch = DpScratch::new();
        let req = PairRequest::new(DistanceKind::Manhattan);
        let routed = evaluate_routed(BackendId::Analog, &req, &p, &q, &mut scratch).unwrap();
        assert!(routed.fell_back);
        let reference = Manhattan::new().evaluate(&p, &q).unwrap();
        assert_eq!(routed.value.to_bits(), reference.to_bits());
    }

    #[test]
    fn shape_errors_surface_identically_through_every_backend() {
        let mut scratch = DpScratch::new();
        let req = PairRequest::new(DistanceKind::Manhattan);
        for id in [BackendId::DigitalExact, BackendId::Analog] {
            let err = evaluate_routed(id, &req, &[0.0], &[0.0, 1.0], &mut scratch);
            assert!(err.is_err(), "{id}");
        }
    }
}
