//! # mda-routing
//!
//! Accuracy-SLA, power-budget-aware routing across the accelerator's four
//! answer paths.
//!
//! The repo can answer one distance query four ways — digital exact (the DP
//! library), digital pruned (the UCR lower-bound cascade, still exact),
//! behavioural analog (the array-level accelerator model) and
//! SPICE-validated analog (the device-level PE netlists). This crate unifies
//! them behind one [`DistanceBackend`] trait whose capability surface is
//! exactly what the paper's data-center story needs: which
//! [`mda_distance::DistanceKind`]s a backend supports, the calibrated error [`Bound`] it
//! guarantees per function and length ([`mda_core::bounds`], re-exported by
//! `mda-conformance`), and its modeled power draw
//! ([`mda_power::budget::PowerBudget`]).
//!
//! On top sits the [`Router`]: given a per-request accuracy SLA ([`Sla`]:
//! `exact` or `tolerance(ε)`) and a configurable analog fleet power
//! envelope ([`FleetBudget`]), it picks the cheapest backend whose
//! calibrated bound satisfies the SLA at current load. `exact` always
//! routes to the bitwise-identical digital path; `tolerance(ε)` routes to
//! the analog fabric when its bound fits inside ε and the fleet envelope
//! has headroom, falling back to digital otherwise. Saturated or
//! unencodable analog answers fall back to a digital recompute per item
//! ([`evaluate_routed`]), so a routed answer is *always* within the
//! declared bound of the true digital value.
//!
//! ```
//! use mda_distance::DistanceKind;
//! use mda_routing::{BackendId, Router, RouterConfig, Sla};
//!
//! let router = Router::new(RouterConfig::default());
//! // Exact work stays on the bitwise digital path…
//! let exact = router.route_pair(DistanceKind::Dtw, 128, Sla::Exact);
//! assert_eq!(exact.backend, BackendId::DigitalExact);
//! // …while tolerant bulk work lands on the analog fabric.
//! let bulk = router.route_pair(DistanceKind::Dtw, 128, Sla::tolerance(16.0).unwrap());
//! assert_eq!(bulk.backend, BackendId::Analog);
//! ```

mod backend;
mod backends;
mod fleet;
mod router;
mod sla;

pub use backend::{BackendError, BackendId, DistanceBackend, PairRequest, ParseBackendIdError};
pub use backends::{
    default_backends, AnalogBackend, BackendSet, DigitalExactBackend, DigitalPrunedBackend,
    SpiceBackend, DIGITAL_HOST_WATTS,
};
pub use fleet::{FleetBudget, PowerLease};
pub use router::{evaluate_routed, Route, RoutedValue, Router, RouterConfig};
pub use sla::{Sla, SlaError};

pub use mda_core::bounds::Bound;
