//! # mda-memristor
//!
//! Memristor device models for the DAC'17 distance accelerator:
//!
//! * [`biolek`] — the deterministic Biolek model with its non-linear dopant
//!   drift window function;
//! * [`stochastic`] — the stochastic switching extension (Al-Shedivat et
//!   al., the paper's reference \[5\]) with the parameters of the paper's
//!   Table 2;
//! * [`variation`] — process variation sampling (±20–30 % tolerance) and the
//!   tolerance-control pairing of Section 3.3(3);
//! * [`tuning`] — the two-step modulate/verify resistance-tuning procedures
//!   of Section 3.3(2) for analog subtractors and adders (Fig. 4);
//! * [`faults`] — seeded cell-fault models (stuck-at rails, drift, dead
//!   programming) the conformance harness injects under the tuning loop.
//!
//! ## Example
//!
//! ```
//! use mda_memristor::{BiolekParams, Memristor};
//!
//! // A memristor programmed to its low-resistance state conducts ~1 kΩ.
//! let params = BiolekParams::paper_defaults();
//! let m = Memristor::at_state(params, 1.0);
//! assert!((m.resistance() - params.r_on).abs() < 1e-9);
//! ```

pub mod biolek;
pub mod faults;
pub mod params;
pub mod stochastic;
pub mod tuning;
pub mod variation;

pub use biolek::Memristor;
pub use faults::{CellFault, FaultyMemristor};
pub use params::{BiolekParams, StochasticParams};
pub use stochastic::{StochasticMemristor, SwitchingEvent};
pub use tuning::{
    try_tune_ratio, tune_ratio, AdderTuner, PulseSchedule, SubtractorTuner, TuneTarget,
    TuningError, TuningOutcome, TuningReport,
};
pub use variation::{pair_with_tolerance_control, ProcessVariation};
