//! Deterministic Biolek memristor model.
//!
//! State equation (Biolek, Biolek & Biolková 2009):
//!
//! ```text
//! dx/dt = k · i(t) · f(x, i)
//! f(x, i) = 1 − (x − stp(−i))^(2p)        (Biolek window)
//! M(x)   = Ron·x + Roff·(1 − x)
//! ```
//!
//! where `stp` is the unit step. The window removes the terminal-state
//! lock-up of the Joglekar window: the drift slows to zero as the state
//! approaches the boundary *being approached*, but reverses freely.

use crate::params::BiolekParams;

/// A memristor integrating the deterministic Biolek model.
///
/// ```
/// use mda_memristor::{BiolekParams, Memristor};
///
/// let mut m = Memristor::at_state(BiolekParams::paper_defaults(), 0.0);
/// // A 3.5 V programming pulse for 2 µs drives the device toward LRS.
/// m.apply_voltage(3.5, 2.0e-6, 1.0e-9);
/// assert!(m.resistance() < 10_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Memristor {
    params: BiolekParams,
    /// Internal state `x ∈ [0, 1]`; 1 = fully ON (LRS).
    state: f64,
}

impl Memristor {
    /// A device at a given internal state `x ∈ [0, 1]` (clamped).
    pub fn at_state(params: BiolekParams, state: f64) -> Self {
        Memristor {
            params,
            state: state.clamp(0.0, 1.0),
        }
    }

    /// A device programmed to the high-resistance state (HRS).
    pub fn hrs(params: BiolekParams) -> Self {
        Self::at_state(params, 0.0)
    }

    /// A device programmed to the low-resistance state (LRS).
    pub fn lrs(params: BiolekParams) -> Self {
        Self::at_state(params, 1.0)
    }

    /// A device programmed to a specific resistance (clamped to
    /// `[Ron, Roff]`).
    pub fn at_resistance(params: BiolekParams, r: f64) -> Self {
        let state = params.state_for_resistance(r);
        Self::at_state(params, state)
    }

    /// The model parameters.
    pub fn params(&self) -> &BiolekParams {
        &self.params
    }

    /// Internal state `x ∈ [0, 1]`.
    pub fn state(&self) -> f64 {
        self.state
    }

    /// Present memristance, Ω.
    pub fn resistance(&self) -> f64 {
        self.params.resistance_at(self.state)
    }

    /// Present conductance, S.
    pub fn conductance(&self) -> f64 {
        1.0 / self.resistance()
    }

    /// The Biolek window value at the present state for current `i`.
    fn window(&self, i: f64) -> f64 {
        let stp = if -i > 0.0 { 1.0 } else { 0.0 };
        let base: f64 = self.state - stp;
        1.0 - base.powi(2 * self.params.window_exponent as i32)
    }

    /// Advances the state by one explicit-Euler step of `dt` seconds under a
    /// terminal voltage `v` (V). Returns the current drawn (A).
    pub fn step(&mut self, v: f64, dt: f64) -> f64 {
        let i = v / self.resistance();
        let dx = self.params.drift_coefficient * i * self.window(i) * dt;
        self.state = (self.state + dx).clamp(0.0, 1.0);
        i
    }

    /// Integrates a constant applied voltage `v` for `duration` seconds with
    /// internal step `dt`. Returns the total charge moved (C).
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `duration < 0`.
    pub fn apply_voltage(&mut self, v: f64, duration: f64, dt: f64) -> f64 {
        assert!(dt > 0.0, "dt must be positive");
        assert!(duration >= 0.0, "duration must be non-negative");
        let mut t = 0.0;
        let mut charge = 0.0;
        while t < duration {
            let step = dt.min(duration - t);
            let i = self.step(v, step);
            charge += i * step;
            t += step;
        }
        charge
    }

    /// Static power dissipated under a constant voltage `v`: `v² / M(x)`.
    pub fn power(&self, v: f64) -> f64 {
        v * v / self.resistance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> BiolekParams {
        BiolekParams::paper_defaults()
    }

    #[test]
    fn hrs_and_lrs_resistances() {
        assert_eq!(Memristor::hrs(params()).resistance(), 100.0e3);
        assert_eq!(Memristor::lrs(params()).resistance(), 1.0e3);
    }

    #[test]
    fn positive_voltage_drives_toward_lrs() {
        let mut m = Memristor::at_state(params(), 0.2);
        let r0 = m.resistance();
        m.apply_voltage(3.0, 1.0e-7, 1.0e-10);
        assert!(m.resistance() < r0);
    }

    #[test]
    fn negative_voltage_drives_toward_hrs() {
        let mut m = Memristor::at_state(params(), 0.8);
        let r0 = m.resistance();
        m.apply_voltage(-3.0, 1.0e-7, 1.0e-10);
        assert!(m.resistance() > r0);
    }

    #[test]
    fn full_transition_time_is_order_one_microsecond() {
        // Section 4.2: "the transition time of about 1 µs for memristors".
        let mut m = Memristor::hrs(params());
        let mut t = 0.0;
        let dt = 1.0e-9;
        while m.state() < 0.99 && t < 100.0e-6 {
            m.step(3.0, dt);
            t += dt;
        }
        assert!(
            t > 0.05e-6 && t < 20.0e-6,
            "transition took {t:.3e} s, expected ~1e-6"
        );
    }

    #[test]
    fn state_stays_in_unit_interval() {
        let mut m = Memristor::at_state(params(), 0.5);
        m.apply_voltage(5.0, 1.0e-5, 1.0e-9);
        assert!(m.state() <= 1.0);
        m.apply_voltage(-5.0, 1.0e-5, 1.0e-9);
        assert!(m.state() >= 0.0);
    }

    #[test]
    fn window_vanishes_at_approached_boundary() {
        // Positive current (toward ON): window must vanish at x = 1.
        let m = Memristor::at_state(params(), 1.0);
        assert!(m.window(1.0e-6).abs() < 1e-12);
        // Negative current (toward OFF): window must vanish at x = 0.
        let m = Memristor::at_state(params(), 0.0);
        assert!(m.window(-1.0e-6).abs() < 1e-12);
    }

    #[test]
    fn window_allows_escape_from_boundary() {
        // Unlike Joglekar, Biolek's window lets the state LEAVE a boundary:
        // at x = 1 with negative current the window is 1 - (1-1)^2 = 1.
        let m = Memristor::at_state(params(), 1.0);
        assert!((m.window(-1.0e-6) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn at_resistance_constructor() {
        let m = Memristor::at_resistance(params(), 50.0e3);
        assert!((m.resistance() - 50.0e3).abs() < 1.0);
    }

    #[test]
    fn sub_threshold_compute_voltages_barely_move_state() {
        // In-circuit voltages are ≤ 0.25 V for ~10 ns (Section 4.2); the
        // state drift must be negligible, keeping computation linear.
        let mut m = Memristor::at_state(params(), 0.5);
        let r0 = m.resistance();
        m.apply_voltage(0.25, 10.0e-9, 1.0e-11);
        let drift = (m.resistance() - r0).abs() / r0;
        assert!(drift < 1e-2, "relative drift {drift} too large");
    }

    #[test]
    fn charge_accumulates() {
        let mut m = Memristor::lrs(params());
        let q = m.apply_voltage(1.0, 1.0e-6, 1.0e-9);
        // ~1 V across ~1 kΩ for 1 µs -> ~1 nC (state moves, so approximate).
        assert!(q > 0.1e-9 && q < 10.0e-9, "charge {q:.3e}");
    }

    #[test]
    fn power_follows_ohms_law() {
        let m = Memristor::lrs(params());
        assert!((m.power(1.0) - 1.0 / 1.0e3).abs() < 1e-12);
    }
}
