//! Device parameters, including the paper's Table 2.

/// Parameters of the (deterministic) Biolek memristor model.
///
/// The boundary resistances come straight from Table 2 of the paper
/// (`Roff = 100 kΩ`, `Ron = 1 kΩ`); the drift coefficient is chosen so a
/// full HRS→LRS transition under the 3 V threshold voltage takes about the
/// 1 µs transition time the paper quotes in Section 4.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiolekParams {
    /// Low-resistance (fully doped) state, Ω. Table 2: 1 kΩ.
    pub r_on: f64,
    /// High-resistance (undoped) state, Ω. Table 2: 100 kΩ.
    pub r_off: f64,
    /// Dopant drift coefficient `k = µv · Ron / D²` (1/(A·s)): the state
    /// velocity per unit current before windowing.
    pub drift_coefficient: f64,
    /// Exponent `p` of the Biolek window `f(x) = 1 - (x - stp(-i))^(2p)`.
    pub window_exponent: u32,
}

impl BiolekParams {
    /// Parameters matching the paper's Table 2 resistances with a ~1 µs full
    /// transition at the 3 V threshold voltage.
    pub fn paper_defaults() -> Self {
        BiolekParams {
            r_on: 1.0e3,
            r_off: 100.0e3,
            // At 3 V across ~50 kΩ average resistance the current is ~60 µA;
            // a full unit-interval state sweep in ~1 µs then needs
            // k ≈ 1 / (60e-6 A × 1e-6 s) ≈ 1.7e10. We round to 2e10, giving
            // a transition time of the right order.
            drift_coefficient: 2.0e10,
            window_exponent: 1,
        }
    }

    /// Memristance at internal state `x ∈ [0, 1]` (1 = fully ON):
    /// `M(x) = Ron·x + Roff·(1 − x)`.
    pub fn resistance_at(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        self.r_on * x + self.r_off * (1.0 - x)
    }

    /// Inverse of [`BiolekParams::resistance_at`]: the state that produces
    /// resistance `r` (clamped into the valid range).
    pub fn state_for_resistance(&self, r: f64) -> f64 {
        let r = r.clamp(self.r_on, self.r_off);
        (self.r_off - r) / (self.r_off - self.r_on)
    }
}

impl Default for BiolekParams {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Parameters of the stochastic switching extension — Table 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StochasticParams {
    /// Voltage scale of the switching-rate exponential, V. Table 2: 0.156 V.
    pub v0: f64,
    /// Characteristic switching time at zero overdrive, s. Table 2: 2.85e5 s.
    pub tau: f64,
    /// Nominal threshold voltage, V. Table 2: 3.0 V.
    pub vt0: f64,
    /// Threshold dispersion (standard deviation), V. Table 2: 0.2 V.
    pub delta_v: f64,
    /// Relative dispersion of the post-switching resistance. Table 2: 5 %.
    pub delta_r: f64,
}

impl StochasticParams {
    /// The values of Table 2.
    pub fn table2() -> Self {
        StochasticParams {
            v0: 0.156,
            tau: 2.85e5,
            vt0: 3.0,
            delta_v: 0.2,
            delta_r: 0.05,
        }
    }

    /// Mean time to a stochastic filament-switching event under a constant
    /// applied voltage `v` (V): `τ(v) = τ · exp(−|v| / V0)`.
    ///
    /// At the sub-threshold voltages inside the accelerator (≤ Vcc/4 =
    /// 0.25 V) this is ~5.7e4 s, which is why the paper can treat the
    /// computation as deterministic.
    pub fn mean_switching_time(&self, v: f64) -> f64 {
        self.tau * (-v.abs() / self.v0).exp()
    }

    /// Probability that a switching event occurs within `duration` seconds
    /// under constant voltage `v`, assuming a Poisson process with rate
    /// `1/τ(v)`.
    pub fn switching_probability(&self, v: f64, duration: f64) -> f64 {
        let tau_v = self.mean_switching_time(v);
        1.0 - (-duration / tau_v).exp()
    }
}

impl Default for StochasticParams {
    fn default() -> Self {
        Self::table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let p = StochasticParams::table2();
        assert_eq!(p.v0, 0.156);
        assert_eq!(p.tau, 2.85e5);
        assert_eq!(p.vt0, 3.0);
        assert_eq!(p.delta_v, 0.2);
        assert_eq!(p.delta_r, 0.05);
        let b = BiolekParams::paper_defaults();
        assert_eq!(b.r_on, 1.0e3);
        assert_eq!(b.r_off, 100.0e3);
    }

    #[test]
    fn resistance_interpolates_between_bounds() {
        let p = BiolekParams::paper_defaults();
        assert_eq!(p.resistance_at(0.0), 100.0e3);
        assert_eq!(p.resistance_at(1.0), 1.0e3);
        let mid = p.resistance_at(0.5);
        assert!(mid > 1.0e3 && mid < 100.0e3);
    }

    #[test]
    fn state_resistance_roundtrip() {
        let p = BiolekParams::paper_defaults();
        for x in [0.0, 0.25, 0.5, 0.9, 1.0] {
            let r = p.resistance_at(x);
            assert!((p.state_for_resistance(r) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn state_clamped_outside_bounds() {
        let p = BiolekParams::paper_defaults();
        assert_eq!(p.resistance_at(-0.5), p.r_off);
        assert_eq!(p.resistance_at(2.0), p.r_on);
        assert_eq!(p.state_for_resistance(1e9), 0.0);
    }

    #[test]
    fn paper_claim_subthreshold_switching_is_negligible() {
        // Section 4.2: inside the circuit all memristors see ≤ Vcc/4 = 0.25 V
        // for only a few nanoseconds; the switching probability must be
        // essentially zero.
        let p = StochasticParams::table2();
        let prob = p.switching_probability(0.25, 10e-9);
        assert!(prob < 1e-12, "switching probability {prob} too high");
    }

    #[test]
    fn above_threshold_switching_is_fast() {
        // Programming pulses above VT0 must switch many orders of magnitude
        // faster than sub-threshold operation.
        let p = StochasticParams::table2();
        let sub = p.mean_switching_time(0.25);
        let above = p.mean_switching_time(3.2);
        assert!(above < sub * 1e-7);
    }

    #[test]
    fn switching_probability_monotone_in_duration_and_voltage() {
        let p = StochasticParams::table2();
        assert!(p.switching_probability(1.0, 1e-3) < p.switching_probability(1.0, 1e-2));
        assert!(p.switching_probability(1.0, 1e-3) < p.switching_probability(2.0, 1e-3));
    }
}
