//! Stochastic Biolek memristor: nondeterministic filament switching.
//!
//! Al-Shedivat et al. (the paper's reference \[5\]) model resistive switching
//! as a stochastic process: under a sub-threshold voltage the formation of a
//! single conductive filament is probabilistic, with a mean waiting time
//! that decays exponentially with the applied voltage. The paper's Table 2
//! gives the parameters; Section 4.2 argues the accelerator's computation is
//! unaffected because (1) in-circuit voltages stay ≤ Vcc/4 = 0.25 V, far
//! below VT0 = 3 V, and (2) computations finish in nanoseconds while
//! transitions take ~1 µs. [`StochasticMemristor`] lets us verify both
//! claims numerically instead of taking them on faith.

use rand::Rng;

use crate::biolek::Memristor;
use crate::params::{BiolekParams, StochasticParams};

/// A stochastic switching event recorded during simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchingEvent {
    /// Simulation time at which the filament formed/ruptured, s.
    pub time: f64,
    /// Voltage across the device when it switched, V.
    pub voltage: f64,
    /// Resistance after the event, Ω.
    pub new_resistance: f64,
}

/// A Biolek memristor with stochastic threshold switching layered on top of
/// the deterministic drift.
///
/// Each device draws its own threshold voltage `VT ~ N(VT0, ΔV)` at
/// construction (device-to-device dispersion), and while the applied voltage
/// is sustained the filament switches after an exponentially distributed
/// waiting time with mean `τ·exp(−|v|/V0)`. After a switching event the new
/// boundary resistance is perturbed by the cycle-to-cycle dispersion
/// `ΔRon/off` (Table 2: 5 %).
#[derive(Debug, Clone)]
pub struct StochasticMemristor {
    inner: Memristor,
    stochastic: StochasticParams,
    /// This device's sampled threshold voltage.
    threshold: f64,
    /// Simulation clock, s.
    time: f64,
    events: Vec<SwitchingEvent>,
}

impl StochasticMemristor {
    /// Creates a device at state `x`, sampling its threshold dispersion from
    /// `rng`.
    pub fn new<R: Rng + ?Sized>(
        params: BiolekParams,
        stochastic: StochasticParams,
        state: f64,
        rng: &mut R,
    ) -> Self {
        // Box-Muller keeps us independent of rand_distr.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let gaussian = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let threshold = stochastic.vt0 + stochastic.delta_v * gaussian;
        StochasticMemristor {
            inner: Memristor::at_state(params, state),
            stochastic,
            threshold,
            time: 0.0,
            events: Vec::new(),
        }
    }

    /// The sampled threshold voltage of this device.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Present memristance, Ω.
    pub fn resistance(&self) -> f64 {
        self.inner.resistance()
    }

    /// Switching events observed so far.
    pub fn events(&self) -> &[SwitchingEvent] {
        &self.events
    }

    /// Simulation clock, s.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Applies a constant voltage for `duration` seconds with internal step
    /// `dt`, combining deterministic drift with stochastic filament
    /// switching. Returns the number of stochastic events that occurred.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `duration < 0`.
    pub fn apply_voltage<R: Rng + ?Sized>(
        &mut self,
        v: f64,
        duration: f64,
        dt: f64,
        rng: &mut R,
    ) -> usize {
        assert!(dt > 0.0, "dt must be positive");
        assert!(duration >= 0.0, "duration must be non-negative");
        let mut events = 0;
        let mut t = 0.0;
        while t < duration {
            let step = dt.min(duration - t);
            self.inner.step(v, step);
            // Above the (sampled) threshold, deterministic drift dominates
            // and the filament follows the field; below it, switching is a
            // rare Poisson event with voltage-dependent rate.
            let p_switch = self.stochastic.switching_probability(v, step);
            if rng.gen_bool(p_switch.clamp(0.0, 1.0)) {
                events += 1;
                self.stochastic_switch(v, rng);
            }
            t += step;
            self.time += step;
        }
        events
    }

    /// Performs one stochastic switching event: the state jumps to the
    /// polarity-favoured boundary with ±ΔR resistance dispersion.
    fn stochastic_switch<R: Rng + ?Sized>(&mut self, v: f64, rng: &mut R) {
        let params = *self.inner.params();
        let target_r = if v >= 0.0 { params.r_on } else { params.r_off };
        let spread = self.stochastic.delta_r;
        let factor = 1.0 + rng.gen_range(-spread..=spread);
        let new_r =
            (target_r * factor).clamp(params.r_on * (1.0 - spread), params.r_off * (1.0 + spread));
        self.inner = Memristor::at_resistance(params, new_r.clamp(params.r_on, params.r_off));
        self.events.push(SwitchingEvent {
            time: self.time,
            voltage: v,
            new_resistance: self.inner.resistance(),
        });
    }
}

/// Monte-Carlo estimate of the probability that *any* of `device_count`
/// memristors switches during one distance computation of `duration`
/// seconds at in-circuit voltage `v`.
///
/// This is the quantitative version of the paper's Section 4.2 argument
/// ("the possibility for stochastic resistance change is rather low with
/// several hundreds of experiments").
pub fn computation_disturb_probability(
    stochastic: &StochasticParams,
    v: f64,
    duration: f64,
    device_count: usize,
) -> f64 {
    let p_single = stochastic.switching_probability(v, duration);
    1.0 - (1.0 - p_single).powi(device_count as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn device(rng: &mut StdRng) -> StochasticMemristor {
        StochasticMemristor::new(
            BiolekParams::paper_defaults(),
            StochasticParams::table2(),
            0.0,
            rng,
        )
    }

    #[test]
    fn threshold_dispersion_is_centered_on_vt0() {
        let mut rng = StdRng::seed_from_u64(42);
        let thresholds: Vec<f64> = (0..200).map(|_| device(&mut rng).threshold()).collect();
        let mean = thresholds.iter().sum::<f64>() / thresholds.len() as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean threshold {mean}");
        let sd = (thresholds
            .iter()
            .map(|t| (t - mean) * (t - mean))
            .sum::<f64>()
            / thresholds.len() as f64)
            .sqrt();
        assert!((sd - 0.2).abs() < 0.05, "threshold sd {sd}");
    }

    #[test]
    fn no_switching_at_compute_voltages() {
        // Paper Section 4.2: hundreds of runs at <= 0.25 V for nanoseconds
        // never disturb the state.
        let mut rng = StdRng::seed_from_u64(7);
        let mut total_events = 0;
        for _ in 0..300 {
            let mut m = device(&mut rng);
            total_events += m.apply_voltage(0.25, 10.0e-9, 1.0e-9, &mut rng);
        }
        assert_eq!(total_events, 0);
    }

    #[test]
    fn programming_pulses_do_switch() {
        // Well above threshold the mean waiting time collapses to far below
        // the pulse width, so a long strong pulse switches with certainty.
        let p = StochasticParams::table2();
        // τ(6 V) = 2.85e5 * exp(-38.5) ≈ 5.3e-12 s.
        assert!(p.mean_switching_time(6.0) < 1.0e-9);
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = device(&mut rng);
        let events = m.apply_voltage(6.0, 1.0e-6, 1.0e-9, &mut rng);
        assert!(events > 0, "expected at least one switching event");
        assert!(!m.events().is_empty());
    }

    #[test]
    fn switched_resistance_within_delta_r_of_boundary() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut m = device(&mut rng);
        m.apply_voltage(6.0, 1.0e-6, 1.0e-9, &mut rng);
        for e in m.events() {
            // Positive polarity -> Ron ± 5 %.
            assert!(
                e.new_resistance <= 1.0e3 * 1.05 + 1e-9,
                "resistance {} too far from Ron",
                e.new_resistance
            );
        }
    }

    #[test]
    fn disturb_probability_whole_array_is_negligible() {
        // A 128x128 array has ~16k PEs x ~20 memristors each; even then the
        // in-computation disturb probability stays essentially zero.
        let p = StochasticParams::table2();
        let prob = computation_disturb_probability(&p, 0.25, 10.0e-9, 128 * 128 * 20);
        assert!(prob < 1e-6, "array disturb probability {prob}");
    }

    #[test]
    fn disturb_probability_grows_with_count() {
        let p = StochasticParams::table2();
        let one = computation_disturb_probability(&p, 2.0, 1.0e-6, 1);
        let many = computation_disturb_probability(&p, 2.0, 1.0e-6, 1000);
        assert!(many > one);
    }
}
