//! Post-fabrication resistance tuning — Section 3.3(2) and Fig. 4 of the
//! paper.
//!
//! All resistances in the accelerator are memristors, so after fabrication
//! each one must be programmed to its configured value. The paper describes
//! a two-step *modulate / verify* loop:
//!
//! * **analog subtractor** (Fig. 4(a)): ports `x1..x4` modulate `M1..M4`;
//!   then with `y2 = 0, x1 = 0.1 V` the measured `x2` verifies `M1/M2`, and
//!   with `x3 = 0.1 V, x4 = 0` the measured `y2` verifies `M3/M4`;
//! * **analog adder** (Fig. 4(b)): `M(k+1)` is the reference; each `Mi` is
//!   verified by driving `mi = 0.1 V` and measuring `n1`.
//!
//! "The two steps can be iterated several times for better precision."
//!
//! [`tune_ratio`] implements one modulate/verify loop for a single device
//! against a reference; [`SubtractorTuner`] and [`AdderTuner`] apply it to
//! the two circuit shapes. [`try_tune_ratio`] is the typed-error variant
//! used by the conformance harness: it validates its arguments instead of
//! panicking, prechecks the target against the device's programmable window
//! ([`TuneTarget::resistance_bounds`]) and reports unreachable targets and
//! non-convergence as [`TuningError`] values, so faulty cells can never be
//! silently "tuned" to a wrong answer.

use std::fmt;

use rand::Rng;

use crate::biolek::Memristor;

/// A device the modulate/verify loop can program.
///
/// The loop only needs three capabilities: read the (possibly degraded)
/// resistance, know the programmable window, and apply one pulse. Real
/// [`Memristor`]s implement it directly; fault models such as
/// [`FaultyMemristor`](crate::faults::FaultyMemristor) wrap one and distort
/// these primitives.
pub trait TuneTarget {
    /// The resistance a verify step reads back, Ω.
    fn resistance(&self) -> f64;
    /// `(min, max)` resistance the device can be programmed to, Ω.
    ///
    /// A stuck cell collapses this to a point, which is how
    /// [`try_tune_ratio`] detects an unreachable target before wasting
    /// pulses on it.
    fn resistance_bounds(&self) -> (f64, f64);
    /// Applies one programming pulse (positive voltage drives toward LRS).
    fn pulse(&mut self, voltage: f64, width: f64, dt: f64);
}

impl TuneTarget for Memristor {
    fn resistance(&self) -> f64 {
        Memristor::resistance(self)
    }

    fn resistance_bounds(&self) -> (f64, f64) {
        (self.params().r_on, self.params().r_off)
    }

    fn pulse(&mut self, voltage: f64, width: f64, dt: f64) {
        self.apply_voltage(voltage, width, dt);
    }
}

/// Why a typed tuning attempt failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TuningError {
    /// An argument was out of domain (non-positive ratio, tolerance, …).
    InvalidParameter {
        /// Which argument.
        name: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// The target resistance lies outside the device's programmable window,
    /// so no pulse sequence can reach it (e.g. a stuck-at cell).
    TargetUnreachable {
        /// `target_ratio * reference_resistance`, Ω.
        required_resistance: f64,
        /// Lower edge of the programmable window, Ω.
        min_resistance: f64,
        /// Upper edge of the programmable window, Ω.
        max_resistance: f64,
    },
    /// The target was in range but the loop hit its iteration cap — e.g. a
    /// cell whose programming pulses no longer move the state.
    DidNotConverge {
        /// The full report of the failed loop (history included).
        report: TuningReport,
    },
}

impl fmt::Display for TuningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuningError::InvalidParameter { name, reason } => {
                write!(f, "invalid tuning parameter `{name}`: {reason}")
            }
            TuningError::TargetUnreachable {
                required_resistance,
                min_resistance,
                max_resistance,
            } => write!(
                f,
                "target resistance {required_resistance:.3e} Ω outside programmable window \
                 [{min_resistance:.3e}, {max_resistance:.3e}] Ω"
            ),
            TuningError::DidNotConverge { report } => write!(
                f,
                "tuning did not converge after {} iterations (final error {:.3e})",
                report.iterations, report.final_error
            ),
        }
    }
}

impl std::error::Error for TuningError {}

/// Programming-pulse parameters used during modulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseSchedule {
    /// Programming voltage magnitude, V (above the switching threshold).
    pub voltage: f64,
    /// Base pulse width, s.
    pub base_width: f64,
    /// Integration step used inside each pulse, s.
    pub dt: f64,
}

impl Default for PulseSchedule {
    fn default() -> Self {
        PulseSchedule {
            voltage: 3.5,
            base_width: 20.0e-9,
            dt: 1.0e-9,
        }
    }
}

/// Why a tuning loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuningOutcome {
    /// The measured ratio reached the tolerance.
    Converged,
    /// The iteration cap was hit before convergence.
    MaxIterationsReached,
}

/// Result of one tuning loop.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningReport {
    /// Whether and how the loop terminated.
    pub outcome: TuningOutcome,
    /// Modulate/verify iterations performed.
    pub iterations: usize,
    /// Final measured relative ratio error.
    pub final_error: f64,
    /// Measured relative error after each verify step.
    pub history: Vec<f64>,
}

impl TuningReport {
    /// `true` if the loop converged within tolerance.
    pub fn converged(&self) -> bool {
        self.outcome == TuningOutcome::Converged
    }
}

/// Tunes `device` until `device.resistance() / reference_resistance` is
/// within `tolerance` (relative) of `target_ratio`.
///
/// Each iteration *verifies* by measuring the ratio with a small multiplicative
/// measurement error (`measure_noise`, e.g. 1e-3 for 0.1 %), then *modulates*
/// with a programming pulse whose width scales with the remaining error —
/// the analog of "M1 will be modulated according to the offset".
///
/// # Panics
///
/// Panics if `target_ratio`, `tolerance` or `reference_resistance` are not
/// positive.
#[allow(clippy::too_many_arguments)]
pub fn tune_ratio<R: Rng + ?Sized>(
    device: &mut Memristor,
    reference_resistance: f64,
    target_ratio: f64,
    tolerance: f64,
    schedule: PulseSchedule,
    max_iterations: usize,
    measure_noise: f64,
    rng: &mut R,
) -> TuningReport {
    assert!(target_ratio > 0.0, "target ratio must be positive");
    assert!(tolerance > 0.0, "tolerance must be positive");
    assert!(
        reference_resistance > 0.0,
        "reference resistance must be positive"
    );

    let target_r =
        (target_ratio * reference_resistance).clamp(device.params().r_on, device.params().r_off);
    run_loop(
        device,
        reference_resistance,
        target_ratio,
        target_r,
        tolerance,
        schedule,
        max_iterations,
        measure_noise,
        rng,
    )
}

/// The shared modulate/verify loop behind [`tune_ratio`] and
/// [`try_tune_ratio`]. `target_r` is the resistance the modulation steers
/// toward; convergence is always verified against the caller's unclamped
/// `target_ratio`, so an out-of-window target reported as reachable by a
/// clamping caller still shows its true residual error.
#[allow(clippy::too_many_arguments)]
fn run_loop<D: TuneTarget + ?Sized, R: Rng + ?Sized>(
    device: &mut D,
    reference_resistance: f64,
    target_ratio: f64,
    target_r: f64,
    tolerance: f64,
    schedule: PulseSchedule,
    max_iterations: usize,
    measure_noise: f64,
    rng: &mut R,
) -> TuningReport {
    let mut history = Vec::new();

    for iteration in 1..=max_iterations {
        // Verify: measure the ratio with multiplicative instrument noise.
        let noise = 1.0 + rng.gen_range(-measure_noise..=measure_noise);
        let measured_ratio = device.resistance() / reference_resistance * noise;
        let error = measured_ratio / target_ratio - 1.0;
        history.push(error.abs());
        if error.abs() <= tolerance {
            return TuningReport {
                outcome: TuningOutcome::Converged,
                iterations: iteration,
                final_error: error.abs(),
                history,
            };
        }
        // Modulate: pulse width proportional to the error magnitude, with
        // polarity chosen to move the resistance the right way (positive
        // voltage drives toward LRS, i.e. lowers resistance).
        // Proportional controller: a gain of ~20 converges from a ±30 %
        // fabrication offset in a few dozen pulses without overshooting at
        // the 1 % tolerance boundary.
        let width = (schedule.base_width * (error.abs() * 20.0).min(1.0)).max(schedule.dt);
        let direction = if device.resistance() > target_r {
            schedule.voltage
        } else {
            -schedule.voltage
        };
        device.pulse(direction, width, schedule.dt);
    }

    let final_error = (device.resistance() / reference_resistance / target_ratio - 1.0).abs();
    TuningReport {
        outcome: TuningOutcome::MaxIterationsReached,
        iterations: max_iterations,
        final_error,
        history,
    }
}

/// Typed-error variant of [`tune_ratio`], generic over [`TuneTarget`] so
/// fault-injected devices can be tuned through the same loop.
///
/// Validates all arguments (returning
/// [`TuningError::InvalidParameter`] instead of panicking), prechecks the
/// target resistance against the device's programmable window (returning
/// [`TuningError::TargetUnreachable`] without spending a single pulse on a
/// stuck cell), and reports an exhausted iteration cap as
/// [`TuningError::DidNotConverge`] carrying the full report. A successful
/// return therefore *guarantees* the measured ratio is within tolerance —
/// there is no silently-degraded success path.
///
/// # Errors
///
/// [`TuningError`] as described above; never panics.
#[allow(clippy::too_many_arguments)]
pub fn try_tune_ratio<D: TuneTarget + ?Sized, R: Rng + ?Sized>(
    device: &mut D,
    reference_resistance: f64,
    target_ratio: f64,
    tolerance: f64,
    schedule: PulseSchedule,
    max_iterations: usize,
    measure_noise: f64,
    rng: &mut R,
) -> Result<TuningReport, TuningError> {
    let positive_finite = |name: &'static str, value: f64| -> Result<(), TuningError> {
        if value.is_finite() && value > 0.0 {
            Ok(())
        } else {
            Err(TuningError::InvalidParameter {
                name,
                reason: format!("must be positive and finite, got {value}"),
            })
        }
    };
    positive_finite("target_ratio", target_ratio)?;
    positive_finite("tolerance", tolerance)?;
    positive_finite("reference_resistance", reference_resistance)?;
    if !(measure_noise.is_finite() && measure_noise >= 0.0) {
        return Err(TuningError::InvalidParameter {
            name: "measure_noise",
            reason: format!("must be non-negative and finite, got {measure_noise}"),
        });
    }
    if max_iterations == 0 {
        return Err(TuningError::InvalidParameter {
            name: "max_iterations",
            reason: "must be at least 1".to_string(),
        });
    }

    let required_resistance = target_ratio * reference_resistance;
    let (min_resistance, max_resistance) = device.resistance_bounds();
    // The verify step measures a *ratio*, so the window check uses the same
    // relative tolerance: a target within `tolerance` of the window edge is
    // still attainable.
    if required_resistance < min_resistance * (1.0 - tolerance)
        || required_resistance > max_resistance * (1.0 + tolerance)
    {
        return Err(TuningError::TargetUnreachable {
            required_resistance,
            min_resistance,
            max_resistance,
        });
    }

    let target_r = required_resistance.clamp(min_resistance, max_resistance);
    let report = run_loop(
        device,
        reference_resistance,
        target_ratio,
        target_r,
        tolerance,
        schedule,
        max_iterations,
        measure_noise,
        rng,
    );
    match report.outcome {
        TuningOutcome::Converged => Ok(report),
        TuningOutcome::MaxIterationsReached => Err(TuningError::DidNotConverge { report }),
    }
}

/// Tuner for the four memristors of an analog subtractor (Fig. 4(a)).
///
/// The gain of the subtractor depends only on the ratios `M1/M2` and
/// `M3/M4`, so `M2` and `M4` are treated as in-place references and `M1`,
/// `M3` are modulated against them.
#[derive(Debug, Clone)]
pub struct SubtractorTuner {
    /// Target `M1/M2` ratio.
    pub target_m1_m2: f64,
    /// Target `M3/M4` ratio.
    pub target_m3_m4: f64,
    /// Relative tolerance per ratio.
    pub tolerance: f64,
    /// Pulse schedule for modulation.
    pub schedule: PulseSchedule,
    /// Iteration cap per ratio.
    pub max_iterations: usize,
}

impl SubtractorTuner {
    /// A tuner with the paper-grade 1 % tolerance.
    pub fn new(target_m1_m2: f64, target_m3_m4: f64) -> Self {
        SubtractorTuner {
            target_m1_m2,
            target_m3_m4,
            tolerance: 0.01,
            schedule: PulseSchedule::default(),
            max_iterations: 200,
        }
    }

    /// Tunes `m1` against `m2` and `m3` against `m4`, returning one report
    /// per tuned ratio.
    pub fn tune<R: Rng + ?Sized>(
        &self,
        m1: &mut Memristor,
        m2: &Memristor,
        m3: &mut Memristor,
        m4: &Memristor,
        rng: &mut R,
    ) -> [TuningReport; 2] {
        let r1 = tune_ratio(
            m1,
            m2.resistance(),
            self.target_m1_m2,
            self.tolerance,
            self.schedule,
            self.max_iterations,
            1.0e-3,
            rng,
        );
        let r2 = tune_ratio(
            m3,
            m4.resistance(),
            self.target_m3_m4,
            self.tolerance,
            self.schedule,
            self.max_iterations,
            1.0e-3,
            rng,
        );
        [r1, r2]
    }
}

/// Tuner for the `k + 1` memristors of an analog adder (Fig. 4(b)).
///
/// `M(k+1)` is the reference; every other `Mi` is modulated until its ratio
/// to the reference matches the configured weight.
#[derive(Debug, Clone)]
pub struct AdderTuner {
    /// Target ratios `Mi / M(k+1)` for each input memristor.
    pub target_ratios: Vec<f64>,
    /// Relative tolerance per ratio.
    pub tolerance: f64,
    /// Pulse schedule for modulation.
    pub schedule: PulseSchedule,
    /// Iteration cap per device.
    pub max_iterations: usize,
}

impl AdderTuner {
    /// A tuner with the paper-grade 1 % tolerance.
    pub fn new(target_ratios: Vec<f64>) -> Self {
        AdderTuner {
            target_ratios,
            tolerance: 0.01,
            schedule: PulseSchedule::default(),
            max_iterations: 200,
        }
    }

    /// Tunes each input memristor against the reference.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.target_ratios.len()`.
    pub fn tune<R: Rng + ?Sized>(
        &self,
        inputs: &mut [Memristor],
        reference: &Memristor,
        rng: &mut R,
    ) -> Vec<TuningReport> {
        assert_eq!(
            inputs.len(),
            self.target_ratios.len(),
            "one target ratio per input memristor"
        );
        inputs
            .iter_mut()
            .zip(&self.target_ratios)
            .map(|(m, &ratio)| {
                tune_ratio(
                    m,
                    reference.resistance(),
                    ratio,
                    self.tolerance,
                    self.schedule,
                    self.max_iterations,
                    1.0e-3,
                    rng,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BiolekParams;
    use crate::variation::ProcessVariation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fab_device(nominal: f64, rng: &mut StdRng) -> Memristor {
        let v = ProcessVariation::paper_defaults();
        Memristor::at_resistance(BiolekParams::paper_defaults(), v.sample(nominal, rng))
    }

    #[test]
    fn tune_ratio_converges_to_unity() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut device = fab_device(60.0e3, &mut rng);
        let report = tune_ratio(
            &mut device,
            50.0e3,
            1.0,
            0.01,
            PulseSchedule::default(),
            500,
            1.0e-3,
            &mut rng,
        );
        assert!(report.converged(), "did not converge: {report:?}");
        assert!((device.resistance() / 50.0e3 - 1.0).abs() < 0.02);
    }

    #[test]
    fn tune_ratio_handles_both_directions() {
        let mut rng = StdRng::seed_from_u64(12);
        // Device starts BELOW target: must be driven toward HRS.
        let mut low = Memristor::at_resistance(BiolekParams::paper_defaults(), 20.0e3);
        let r = tune_ratio(
            &mut low,
            50.0e3,
            1.0,
            0.01,
            PulseSchedule::default(),
            500,
            1.0e-3,
            &mut rng,
        );
        assert!(r.converged());
        // Device starts ABOVE target: driven toward LRS.
        let mut high = Memristor::at_resistance(BiolekParams::paper_defaults(), 90.0e3);
        let r = tune_ratio(
            &mut high,
            50.0e3,
            1.0,
            0.01,
            PulseSchedule::default(),
            500,
            1.0e-3,
            &mut rng,
        );
        assert!(r.converged());
    }

    #[test]
    fn error_history_trends_downward() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut device = fab_device(80.0e3, &mut rng);
        let report = tune_ratio(
            &mut device,
            40.0e3,
            1.0,
            0.005,
            PulseSchedule::default(),
            500,
            1.0e-3,
            &mut rng,
        );
        assert!(report.converged());
        let first = report.history.first().copied().unwrap();
        let last = report.history.last().copied().unwrap();
        assert!(last < first, "error should shrink: {first} -> {last}");
    }

    #[test]
    fn subtractor_tuner_hits_weighted_dtw_ratios() {
        // Weighted DTW: M1/M2 = (2 - w)/w; take w = 0.8 -> ratio 1.5.
        let mut rng = StdRng::seed_from_u64(14);
        let mut m1 = fab_device(60.0e3, &mut rng);
        let m2 = fab_device(40.0e3, &mut rng);
        let mut m3 = fab_device(50.0e3, &mut rng);
        let m4 = fab_device(50.0e3, &mut rng);
        let tuner = SubtractorTuner::new(1.5, 1.0);
        let reports = tuner.tune(&mut m1, &m2, &mut m3, &m4, &mut rng);
        assert!(reports.iter().all(TuningReport::converged));
        assert!((m1.resistance() / m2.resistance() - 1.5).abs() / 1.5 < 0.02);
        assert!((m3.resistance() / m4.resistance() - 1.0).abs() < 0.02);
    }

    #[test]
    fn adder_tuner_programs_weight_vector() {
        // Weighted MD/HamD: M0/Mk = w_k. Tune three devices to distinct
        // weights against a common reference.
        let mut rng = StdRng::seed_from_u64(15);
        let reference = Memristor::at_resistance(BiolekParams::paper_defaults(), 50.0e3);
        let mut inputs = vec![
            fab_device(50.0e3, &mut rng),
            fab_device(50.0e3, &mut rng),
            fab_device(50.0e3, &mut rng),
        ];
        let tuner = AdderTuner::new(vec![0.5, 1.0, 1.6]);
        let reports = tuner.tune(&mut inputs, &reference, &mut rng);
        assert!(reports.iter().all(TuningReport::converged));
        for (m, target) in inputs.iter().zip([0.5, 1.0, 1.6]) {
            let ratio = m.resistance() / reference.resistance();
            assert!(
                (ratio - target).abs() / target < 0.02,
                "ratio {ratio} vs target {target}"
            );
        }
    }

    #[test]
    fn impossible_target_reports_max_iterations() {
        let mut rng = StdRng::seed_from_u64(16);
        let mut device = Memristor::at_resistance(BiolekParams::paper_defaults(), 50.0e3);
        // Ratio 1000 vs a 1 kΩ reference needs 1 MΩ — beyond Roff.
        let report = tune_ratio(
            &mut device,
            1.0e3,
            1000.0,
            0.01,
            PulseSchedule::default(),
            50,
            1.0e-3,
            &mut rng,
        );
        assert_eq!(report.outcome, TuningOutcome::MaxIterationsReached);
    }

    #[test]
    fn try_tune_converges_from_hrs_side_error() {
        // Fabricated above target (HRS-side offset): pulses must drive the
        // resistance down until the two-step loop verifies in tolerance.
        let mut rng = StdRng::seed_from_u64(21);
        let mut device = Memristor::at_resistance(BiolekParams::paper_defaults(), 65.0e3);
        let report = try_tune_ratio(
            &mut device,
            50.0e3,
            1.0,
            0.01,
            PulseSchedule::default(),
            500,
            1.0e-3,
            &mut rng,
        )
        .expect("HRS-side tuning must converge");
        assert!(report.converged());
        assert!((device.resistance() / 50.0e3 - 1.0).abs() < 0.02);
    }

    #[test]
    fn try_tune_converges_from_lrs_side_error() {
        // Fabricated below target (LRS-side offset): driven toward HRS.
        let mut rng = StdRng::seed_from_u64(22);
        let mut device = Memristor::at_resistance(BiolekParams::paper_defaults(), 35.0e3);
        let report = try_tune_ratio(
            &mut device,
            50.0e3,
            1.0,
            0.01,
            PulseSchedule::default(),
            500,
            1.0e-3,
            &mut rng,
        )
        .expect("LRS-side tuning must converge");
        assert!(report.converged());
        assert!((device.resistance() / 50.0e3 - 1.0).abs() < 0.02);
    }

    #[test]
    fn try_tune_rejects_unreachable_target_typed() {
        // Ratio 1000 against a 1 kΩ reference needs 1 MΩ — beyond Roff.
        // The typed API must refuse before wasting pulses, not panic and
        // not report a clamped pseudo-success.
        let mut rng = StdRng::seed_from_u64(23);
        let mut device = Memristor::at_resistance(BiolekParams::paper_defaults(), 50.0e3);
        let before = device.resistance();
        let err = try_tune_ratio(
            &mut device,
            1.0e3,
            1000.0,
            0.01,
            PulseSchedule::default(),
            50,
            1.0e-3,
            &mut rng,
        )
        .expect_err("unreachable target must fail");
        let TuningError::TargetUnreachable {
            required_resistance,
            min_resistance,
            max_resistance,
        } = err
        else {
            panic!("expected TargetUnreachable, got {err:?}");
        };
        assert!((required_resistance - 1.0e6).abs() < 1.0);
        assert!(required_resistance > max_resistance);
        assert!(min_resistance < max_resistance);
        assert_eq!(device.resistance(), before, "no pulses may be spent");
    }

    #[test]
    fn try_tune_rejects_bad_parameters_typed() {
        let mut rng = StdRng::seed_from_u64(24);
        let mut device = Memristor::at_resistance(BiolekParams::paper_defaults(), 50.0e3);
        let cases: [(f64, f64, f64, usize, f64, &str); 5] = [
            (-1.0, 0.01, 50.0e3, 50, 1.0e-3, "target_ratio"),
            (1.0, 0.0, 50.0e3, 50, 1.0e-3, "tolerance"),
            (1.0, 0.01, f64::NAN, 50, 1.0e-3, "reference_resistance"),
            (1.0, 0.01, 50.0e3, 0, 1.0e-3, "max_iterations"),
            (1.0, 0.01, 50.0e3, 50, -0.5, "measure_noise"),
        ];
        for (ratio, tol, reference, iters, noise, expect) in cases {
            let err = try_tune_ratio(
                &mut device,
                reference,
                ratio,
                tol,
                PulseSchedule::default(),
                iters,
                noise,
                &mut rng,
            )
            .expect_err("bad parameter must fail typed");
            let TuningError::InvalidParameter { name, .. } = err else {
                panic!("expected InvalidParameter for {expect}, got {err:?}");
            };
            assert_eq!(name, expect);
        }
    }

    #[test]
    fn try_tune_reports_non_convergence_with_history() {
        // A dead-programming cell looks healthy at precheck but never moves;
        // the loop must exhaust its cap and return the full report.
        use crate::faults::{CellFault, FaultyMemristor};
        let mut rng = StdRng::seed_from_u64(25);
        let inner = Memristor::at_resistance(BiolekParams::paper_defaults(), 80.0e3);
        let mut cell = FaultyMemristor::new(inner, CellFault::DeadProgramming);
        let err = try_tune_ratio(
            &mut cell,
            50.0e3,
            1.0,
            0.01,
            PulseSchedule::default(),
            40,
            1.0e-3,
            &mut rng,
        )
        .expect_err("dead cell cannot converge");
        let TuningError::DidNotConverge { report } = err else {
            panic!("expected DidNotConverge, got {err:?}");
        };
        assert_eq!(report.outcome, TuningOutcome::MaxIterationsReached);
        assert_eq!(report.iterations, 40);
        assert_eq!(report.history.len(), 40);
        assert!(report.final_error > 0.01);
    }

    #[test]
    fn try_tune_compensates_drift_for_in_range_targets() {
        // Retention drift rescales the read path; the ratio controller
        // still converges because the programmable window shifts with it.
        use crate::faults::{CellFault, FaultyMemristor};
        let mut rng = StdRng::seed_from_u64(26);
        let inner = Memristor::at_resistance(BiolekParams::paper_defaults(), 60.0e3);
        let mut cell = FaultyMemristor::new(inner, CellFault::Drift(1.15));
        let report = try_tune_ratio(
            &mut cell,
            50.0e3,
            1.0,
            0.01,
            PulseSchedule::default(),
            500,
            1.0e-3,
            &mut rng,
        )
        .expect("drifted cell with in-range target must still tune");
        assert!(report.converged());
        assert!((TuneTarget::resistance(&cell) / 50.0e3 - 1.0).abs() < 0.02);
    }

    #[test]
    fn try_tune_fails_typed_on_stuck_cells() {
        use crate::faults::{CellFault, FaultyMemristor};
        let mut rng = StdRng::seed_from_u64(27);
        for fault in [CellFault::StuckAtHrs, CellFault::StuckAtLrs] {
            let inner = Memristor::at_resistance(BiolekParams::paper_defaults(), 50.0e3);
            let mut cell = FaultyMemristor::new(inner, fault);
            let err = try_tune_ratio(
                &mut cell,
                50.0e3,
                1.0,
                0.01,
                PulseSchedule::default(),
                200,
                1.0e-3,
                &mut rng,
            )
            .expect_err("stuck cell must fail typed");
            assert!(
                matches!(err, TuningError::TargetUnreachable { .. }),
                "{fault:?}: expected TargetUnreachable, got {err:?}"
            );
        }
    }

    #[test]
    fn tuning_defeats_process_variation_statistically() {
        // The paper's end-to-end claim: +-25 % fabrication spread is reduced
        // to <1-2 % ratio error by tuning, across many devices.
        let mut rng = StdRng::seed_from_u64(17);
        let mut worst: f64 = 0.0;
        for _ in 0..50 {
            let mut device = fab_device(50.0e3, &mut rng);
            let reference = fab_device(50.0e3, &mut rng);
            let report = tune_ratio(
                &mut device,
                reference.resistance(),
                1.0,
                0.01,
                PulseSchedule::default(),
                500,
                1.0e-3,
                &mut rng,
            );
            assert!(report.converged());
            worst = worst.max((device.resistance() / reference.resistance() - 1.0).abs());
        }
        assert!(worst < 0.02, "worst post-tuning ratio error {worst}");
    }
}
