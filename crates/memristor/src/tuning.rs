//! Post-fabrication resistance tuning — Section 3.3(2) and Fig. 4 of the
//! paper.
//!
//! All resistances in the accelerator are memristors, so after fabrication
//! each one must be programmed to its configured value. The paper describes
//! a two-step *modulate / verify* loop:
//!
//! * **analog subtractor** (Fig. 4(a)): ports `x1..x4` modulate `M1..M4`;
//!   then with `y2 = 0, x1 = 0.1 V` the measured `x2` verifies `M1/M2`, and
//!   with `x3 = 0.1 V, x4 = 0` the measured `y2` verifies `M3/M4`;
//! * **analog adder** (Fig. 4(b)): `M(k+1)` is the reference; each `Mi` is
//!   verified by driving `mi = 0.1 V` and measuring `n1`.
//!
//! "The two steps can be iterated several times for better precision."
//!
//! [`tune_ratio`] implements one modulate/verify loop for a single device
//! against a reference; [`SubtractorTuner`] and [`AdderTuner`] apply it to
//! the two circuit shapes.

use rand::Rng;

use crate::biolek::Memristor;

/// Programming-pulse parameters used during modulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseSchedule {
    /// Programming voltage magnitude, V (above the switching threshold).
    pub voltage: f64,
    /// Base pulse width, s.
    pub base_width: f64,
    /// Integration step used inside each pulse, s.
    pub dt: f64,
}

impl Default for PulseSchedule {
    fn default() -> Self {
        PulseSchedule {
            voltage: 3.5,
            base_width: 20.0e-9,
            dt: 1.0e-9,
        }
    }
}

/// Why a tuning loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuningOutcome {
    /// The measured ratio reached the tolerance.
    Converged,
    /// The iteration cap was hit before convergence.
    MaxIterationsReached,
}

/// Result of one tuning loop.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningReport {
    /// Whether and how the loop terminated.
    pub outcome: TuningOutcome,
    /// Modulate/verify iterations performed.
    pub iterations: usize,
    /// Final measured relative ratio error.
    pub final_error: f64,
    /// Measured relative error after each verify step.
    pub history: Vec<f64>,
}

impl TuningReport {
    /// `true` if the loop converged within tolerance.
    pub fn converged(&self) -> bool {
        self.outcome == TuningOutcome::Converged
    }
}

/// Tunes `device` until `device.resistance() / reference_resistance` is
/// within `tolerance` (relative) of `target_ratio`.
///
/// Each iteration *verifies* by measuring the ratio with a small multiplicative
/// measurement error (`measure_noise`, e.g. 1e-3 for 0.1 %), then *modulates*
/// with a programming pulse whose width scales with the remaining error —
/// the analog of "M1 will be modulated according to the offset".
///
/// # Panics
///
/// Panics if `target_ratio`, `tolerance` or `reference_resistance` are not
/// positive.
#[allow(clippy::too_many_arguments)]
pub fn tune_ratio<R: Rng + ?Sized>(
    device: &mut Memristor,
    reference_resistance: f64,
    target_ratio: f64,
    tolerance: f64,
    schedule: PulseSchedule,
    max_iterations: usize,
    measure_noise: f64,
    rng: &mut R,
) -> TuningReport {
    assert!(target_ratio > 0.0, "target ratio must be positive");
    assert!(tolerance > 0.0, "tolerance must be positive");
    assert!(
        reference_resistance > 0.0,
        "reference resistance must be positive"
    );

    let target_r =
        (target_ratio * reference_resistance).clamp(device.params().r_on, device.params().r_off);
    let mut history = Vec::new();

    for iteration in 1..=max_iterations {
        // Verify: measure the ratio with multiplicative instrument noise.
        let noise = 1.0 + rng.gen_range(-measure_noise..=measure_noise);
        let measured_ratio = device.resistance() / reference_resistance * noise;
        let error = measured_ratio / target_ratio - 1.0;
        history.push(error.abs());
        if error.abs() <= tolerance {
            return TuningReport {
                outcome: TuningOutcome::Converged,
                iterations: iteration,
                final_error: error.abs(),
                history,
            };
        }
        // Modulate: pulse width proportional to the error magnitude, with
        // polarity chosen to move the resistance the right way (positive
        // voltage drives toward LRS, i.e. lowers resistance).
        // Proportional controller: a gain of ~20 converges from a ±30 %
        // fabrication offset in a few dozen pulses without overshooting at
        // the 1 % tolerance boundary.
        let width = (schedule.base_width * (error.abs() * 20.0).min(1.0)).max(schedule.dt);
        let direction = if device.resistance() > target_r {
            schedule.voltage
        } else {
            -schedule.voltage
        };
        device.apply_voltage(direction, width, schedule.dt);
    }

    let final_error = (device.resistance() / reference_resistance / target_ratio - 1.0).abs();
    TuningReport {
        outcome: TuningOutcome::MaxIterationsReached,
        iterations: max_iterations,
        final_error,
        history,
    }
}

/// Tuner for the four memristors of an analog subtractor (Fig. 4(a)).
///
/// The gain of the subtractor depends only on the ratios `M1/M2` and
/// `M3/M4`, so `M2` and `M4` are treated as in-place references and `M1`,
/// `M3` are modulated against them.
#[derive(Debug, Clone)]
pub struct SubtractorTuner {
    /// Target `M1/M2` ratio.
    pub target_m1_m2: f64,
    /// Target `M3/M4` ratio.
    pub target_m3_m4: f64,
    /// Relative tolerance per ratio.
    pub tolerance: f64,
    /// Pulse schedule for modulation.
    pub schedule: PulseSchedule,
    /// Iteration cap per ratio.
    pub max_iterations: usize,
}

impl SubtractorTuner {
    /// A tuner with the paper-grade 1 % tolerance.
    pub fn new(target_m1_m2: f64, target_m3_m4: f64) -> Self {
        SubtractorTuner {
            target_m1_m2,
            target_m3_m4,
            tolerance: 0.01,
            schedule: PulseSchedule::default(),
            max_iterations: 200,
        }
    }

    /// Tunes `m1` against `m2` and `m3` against `m4`, returning one report
    /// per tuned ratio.
    pub fn tune<R: Rng + ?Sized>(
        &self,
        m1: &mut Memristor,
        m2: &Memristor,
        m3: &mut Memristor,
        m4: &Memristor,
        rng: &mut R,
    ) -> [TuningReport; 2] {
        let r1 = tune_ratio(
            m1,
            m2.resistance(),
            self.target_m1_m2,
            self.tolerance,
            self.schedule,
            self.max_iterations,
            1.0e-3,
            rng,
        );
        let r2 = tune_ratio(
            m3,
            m4.resistance(),
            self.target_m3_m4,
            self.tolerance,
            self.schedule,
            self.max_iterations,
            1.0e-3,
            rng,
        );
        [r1, r2]
    }
}

/// Tuner for the `k + 1` memristors of an analog adder (Fig. 4(b)).
///
/// `M(k+1)` is the reference; every other `Mi` is modulated until its ratio
/// to the reference matches the configured weight.
#[derive(Debug, Clone)]
pub struct AdderTuner {
    /// Target ratios `Mi / M(k+1)` for each input memristor.
    pub target_ratios: Vec<f64>,
    /// Relative tolerance per ratio.
    pub tolerance: f64,
    /// Pulse schedule for modulation.
    pub schedule: PulseSchedule,
    /// Iteration cap per device.
    pub max_iterations: usize,
}

impl AdderTuner {
    /// A tuner with the paper-grade 1 % tolerance.
    pub fn new(target_ratios: Vec<f64>) -> Self {
        AdderTuner {
            target_ratios,
            tolerance: 0.01,
            schedule: PulseSchedule::default(),
            max_iterations: 200,
        }
    }

    /// Tunes each input memristor against the reference.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.target_ratios.len()`.
    pub fn tune<R: Rng + ?Sized>(
        &self,
        inputs: &mut [Memristor],
        reference: &Memristor,
        rng: &mut R,
    ) -> Vec<TuningReport> {
        assert_eq!(
            inputs.len(),
            self.target_ratios.len(),
            "one target ratio per input memristor"
        );
        inputs
            .iter_mut()
            .zip(&self.target_ratios)
            .map(|(m, &ratio)| {
                tune_ratio(
                    m,
                    reference.resistance(),
                    ratio,
                    self.tolerance,
                    self.schedule,
                    self.max_iterations,
                    1.0e-3,
                    rng,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BiolekParams;
    use crate::variation::ProcessVariation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fab_device(nominal: f64, rng: &mut StdRng) -> Memristor {
        let v = ProcessVariation::paper_defaults();
        Memristor::at_resistance(BiolekParams::paper_defaults(), v.sample(nominal, rng))
    }

    #[test]
    fn tune_ratio_converges_to_unity() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut device = fab_device(60.0e3, &mut rng);
        let report = tune_ratio(
            &mut device,
            50.0e3,
            1.0,
            0.01,
            PulseSchedule::default(),
            500,
            1.0e-3,
            &mut rng,
        );
        assert!(report.converged(), "did not converge: {report:?}");
        assert!((device.resistance() / 50.0e3 - 1.0).abs() < 0.02);
    }

    #[test]
    fn tune_ratio_handles_both_directions() {
        let mut rng = StdRng::seed_from_u64(12);
        // Device starts BELOW target: must be driven toward HRS.
        let mut low = Memristor::at_resistance(BiolekParams::paper_defaults(), 20.0e3);
        let r = tune_ratio(
            &mut low,
            50.0e3,
            1.0,
            0.01,
            PulseSchedule::default(),
            500,
            1.0e-3,
            &mut rng,
        );
        assert!(r.converged());
        // Device starts ABOVE target: driven toward LRS.
        let mut high = Memristor::at_resistance(BiolekParams::paper_defaults(), 90.0e3);
        let r = tune_ratio(
            &mut high,
            50.0e3,
            1.0,
            0.01,
            PulseSchedule::default(),
            500,
            1.0e-3,
            &mut rng,
        );
        assert!(r.converged());
    }

    #[test]
    fn error_history_trends_downward() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut device = fab_device(80.0e3, &mut rng);
        let report = tune_ratio(
            &mut device,
            40.0e3,
            1.0,
            0.005,
            PulseSchedule::default(),
            500,
            1.0e-3,
            &mut rng,
        );
        assert!(report.converged());
        let first = report.history.first().copied().unwrap();
        let last = report.history.last().copied().unwrap();
        assert!(last < first, "error should shrink: {first} -> {last}");
    }

    #[test]
    fn subtractor_tuner_hits_weighted_dtw_ratios() {
        // Weighted DTW: M1/M2 = (2 - w)/w; take w = 0.8 -> ratio 1.5.
        let mut rng = StdRng::seed_from_u64(14);
        let mut m1 = fab_device(60.0e3, &mut rng);
        let m2 = fab_device(40.0e3, &mut rng);
        let mut m3 = fab_device(50.0e3, &mut rng);
        let m4 = fab_device(50.0e3, &mut rng);
        let tuner = SubtractorTuner::new(1.5, 1.0);
        let reports = tuner.tune(&mut m1, &m2, &mut m3, &m4, &mut rng);
        assert!(reports.iter().all(TuningReport::converged));
        assert!((m1.resistance() / m2.resistance() - 1.5).abs() / 1.5 < 0.02);
        assert!((m3.resistance() / m4.resistance() - 1.0).abs() < 0.02);
    }

    #[test]
    fn adder_tuner_programs_weight_vector() {
        // Weighted MD/HamD: M0/Mk = w_k. Tune three devices to distinct
        // weights against a common reference.
        let mut rng = StdRng::seed_from_u64(15);
        let reference = Memristor::at_resistance(BiolekParams::paper_defaults(), 50.0e3);
        let mut inputs = vec![
            fab_device(50.0e3, &mut rng),
            fab_device(50.0e3, &mut rng),
            fab_device(50.0e3, &mut rng),
        ];
        let tuner = AdderTuner::new(vec![0.5, 1.0, 1.6]);
        let reports = tuner.tune(&mut inputs, &reference, &mut rng);
        assert!(reports.iter().all(TuningReport::converged));
        for (m, target) in inputs.iter().zip([0.5, 1.0, 1.6]) {
            let ratio = m.resistance() / reference.resistance();
            assert!(
                (ratio - target).abs() / target < 0.02,
                "ratio {ratio} vs target {target}"
            );
        }
    }

    #[test]
    fn impossible_target_reports_max_iterations() {
        let mut rng = StdRng::seed_from_u64(16);
        let mut device = Memristor::at_resistance(BiolekParams::paper_defaults(), 50.0e3);
        // Ratio 1000 vs a 1 kΩ reference needs 1 MΩ — beyond Roff.
        let report = tune_ratio(
            &mut device,
            1.0e3,
            1000.0,
            0.01,
            PulseSchedule::default(),
            50,
            1.0e-3,
            &mut rng,
        );
        assert_eq!(report.outcome, TuningOutcome::MaxIterationsReached);
    }

    #[test]
    fn tuning_defeats_process_variation_statistically() {
        // The paper's end-to-end claim: +-25 % fabrication spread is reduced
        // to <1-2 % ratio error by tuning, across many devices.
        let mut rng = StdRng::seed_from_u64(17);
        let mut worst: f64 = 0.0;
        for _ in 0..50 {
            let mut device = fab_device(50.0e3, &mut rng);
            let reference = fab_device(50.0e3, &mut rng);
            let report = tune_ratio(
                &mut device,
                reference.resistance(),
                1.0,
                0.01,
                PulseSchedule::default(),
                500,
                1.0e-3,
                &mut rng,
            );
            assert!(report.converged());
            worst = worst.max((device.resistance() / reference.resistance() - 1.0).abs());
        }
        assert!(worst < 0.02, "worst post-tuning ratio error {worst}");
    }
}
