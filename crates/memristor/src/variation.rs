//! Process variation modelling — Section 3.3(3) of the paper.
//!
//! "Considering process variation, the actual resistance of memristors have
//! a tolerance of ±20 % to ±30 %". Two mitigations are modelled:
//!
//! 1. **Tolerance control** (Hastings, *The Art of Analog Layout*): matched
//!    layout keeps the *relative* mismatch between two paired memristors
//!    below 1 % even though their absolute values wander ±20–30 %;
//! 2. **Post-fabrication resistance tuning** ([`crate::tuning`]).

use rand::Rng;

/// A process-variation model for as-fabricated memristor resistances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessVariation {
    /// Maximum relative deviation of an unmatched device, e.g. `0.25`
    /// for ±25 %.
    pub absolute_tolerance: f64,
    /// Maximum relative mismatch between a *matched pair* after tolerance
    /// control, e.g. `0.01` for 1 %.
    pub matched_tolerance: f64,
}

impl ProcessVariation {
    /// The paper's numbers: ±25 % absolute (mid of the quoted 20–30 %
    /// range), <1 % matched.
    pub fn paper_defaults() -> Self {
        ProcessVariation {
            absolute_tolerance: 0.25,
            matched_tolerance: 0.01,
        }
    }

    /// Samples one as-fabricated resistance around `nominal` with uniform
    /// ±`absolute_tolerance` deviation.
    pub fn sample<R: Rng + ?Sized>(&self, nominal: f64, rng: &mut R) -> f64 {
        let dev = rng.gen_range(-self.absolute_tolerance..=self.absolute_tolerance);
        nominal * (1.0 + dev)
    }

    /// Samples a *matched pair*: both devices share one absolute deviation
    /// (common-mode) and differ only by a small differential mismatch — the
    /// effect of tolerance-control layout.
    pub fn sample_pair<R: Rng + ?Sized>(
        &self,
        nominal_a: f64,
        nominal_b: f64,
        rng: &mut R,
    ) -> (f64, f64) {
        let common = rng.gen_range(-self.absolute_tolerance..=self.absolute_tolerance);
        let half = self.matched_tolerance / 2.0;
        let diff_a = rng.gen_range(-half..=half);
        let diff_b = rng.gen_range(-half..=half);
        // The differential mismatch multiplies the common-mode factor, so the
        // pair's RATIO error is bounded by the matched tolerance alone.
        (
            nominal_a * (1.0 + common) * (1.0 + diff_a),
            nominal_b * (1.0 + common) * (1.0 + diff_b),
        )
    }
}

impl Default for ProcessVariation {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Samples a matched pair and returns the achieved *ratio error*: the
/// relative deviation of `a/b` from `nominal_a/nominal_b`.
///
/// Demonstrates the paper's point that "the solution quality is only the
/// ratio of memristors": the ratio error is bounded by the matched tolerance,
/// not the absolute one.
pub fn pair_with_tolerance_control<R: Rng + ?Sized>(
    variation: &ProcessVariation,
    nominal_a: f64,
    nominal_b: f64,
    rng: &mut R,
) -> (f64, f64, f64) {
    let (a, b) = variation.sample_pair(nominal_a, nominal_b, rng);
    let ratio_error = ((a / b) / (nominal_a / nominal_b) - 1.0).abs();
    (a, b, ratio_error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn absolute_samples_within_tolerance() {
        let v = ProcessVariation::paper_defaults();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let r = v.sample(100.0e3, &mut rng);
            assert!((75.0e3 - 1.0..=125.0e3 + 1.0).contains(&r));
        }
    }

    #[test]
    fn matched_pair_ratio_error_below_one_percent() {
        let v = ProcessVariation::paper_defaults();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let (_, _, ratio_err) = pair_with_tolerance_control(&v, 100.0e3, 50.0e3, &mut rng);
            // Differential mismatch of two +-0.5 % terms: ratio error ~< 1 %.
            assert!(ratio_err < 0.011, "ratio error {ratio_err}");
        }
    }

    #[test]
    fn matched_pair_absolute_values_still_wander() {
        let v = ProcessVariation::paper_defaults();
        let mut rng = StdRng::seed_from_u64(3);
        let mut min_a = f64::INFINITY;
        let mut max_a = f64::NEG_INFINITY;
        for _ in 0..500 {
            let (a, _) = v.sample_pair(100.0e3, 100.0e3, &mut rng);
            min_a = min_a.min(a);
            max_a = max_a.max(a);
        }
        // The common-mode spread should cover most of +-25 %.
        assert!(min_a < 85.0e3);
        assert!(max_a > 115.0e3);
    }

    #[test]
    fn unmatched_ratio_error_can_be_large() {
        // Without tolerance control, two independent +-25 % samples can have
        // a ratio error of tens of percent — this is the problem the paper's
        // mitigations exist to solve.
        let v = ProcessVariation::paper_defaults();
        let mut rng = StdRng::seed_from_u64(4);
        let mut worst: f64 = 0.0;
        for _ in 0..500 {
            let a = v.sample(100.0e3, &mut rng);
            let b = v.sample(100.0e3, &mut rng);
            worst = worst.max((a / b - 1.0).abs());
        }
        assert!(worst > 0.2, "worst unmatched ratio error {worst}");
    }
}
