//! Seeded cell-fault models for the conformance harness.
//!
//! Related work on analog CAMs and NVM accelerators identifies a small set
//! of dominant post-fabrication failure modes for memristive cells; this
//! module models the ones the paper's tuning procedure (Section 3.3(2))
//! must either correct or *detect*:
//!
//! * **stuck-at-HRS / stuck-at-LRS** — forming or endurance failures pin
//!   the cell at one rail; no pulse moves it, so any other target ratio is
//!   unreachable and tuning must fail typed;
//! * **resistance drift** — retention loss scales the read resistance by a
//!   constant factor; the window shifts with it, so in-range targets remain
//!   tunable (the ratio controller compensates);
//! * **dead programming** — the read path works but pulses no longer move
//!   the state (switching-layer wear-out); the target looks in-range yet
//!   the loop can never converge.
//!
//! [`FaultyMemristor`] wraps a healthy [`Memristor`] and distorts the three
//! [`TuneTarget`] primitives accordingly, so the same modulate/verify loop
//! runs unmodified against faulty cells.

use crate::biolek::Memristor;
use crate::tuning::TuneTarget;

/// A single-cell fault mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellFault {
    /// Cell pinned at the high-resistance rail; pulses are no-ops.
    StuckAtHrs,
    /// Cell pinned at the low-resistance rail; pulses are no-ops.
    StuckAtLrs,
    /// Read resistance scaled by the given factor (> 0); programming still
    /// works, so the tuning loop can compensate for in-range targets.
    Drift(f64),
    /// Reads report the true state but programming pulses no longer move
    /// it — the target looks reachable yet tuning cannot converge.
    DeadProgramming,
}

impl CellFault {
    /// Stable lower-case label used in conformance ledgers and reports.
    pub fn label(&self) -> &'static str {
        match self {
            CellFault::StuckAtHrs => "stuck_at_hrs",
            CellFault::StuckAtLrs => "stuck_at_lrs",
            CellFault::Drift(_) => "drift",
            CellFault::DeadProgramming => "dead_programming",
        }
    }
}

/// A memristor with one injected [`CellFault`].
#[derive(Debug, Clone, Copy)]
pub struct FaultyMemristor {
    inner: Memristor,
    fault: CellFault,
}

impl FaultyMemristor {
    /// Wraps a device with a fault.
    pub fn new(inner: Memristor, fault: CellFault) -> Self {
        FaultyMemristor { inner, fault }
    }

    /// The injected fault.
    pub fn fault(&self) -> CellFault {
        self.fault
    }

    /// The wrapped (healthy-model) device.
    pub fn inner(&self) -> &Memristor {
        &self.inner
    }

    /// The resistance an external read observes, Ω.
    pub fn resistance(&self) -> f64 {
        match self.fault {
            CellFault::StuckAtHrs => self.inner.params().r_off,
            CellFault::StuckAtLrs => self.inner.params().r_on,
            CellFault::Drift(scale) => self.inner.resistance() * scale,
            CellFault::DeadProgramming => self.inner.resistance(),
        }
    }
}

impl TuneTarget for FaultyMemristor {
    fn resistance(&self) -> f64 {
        FaultyMemristor::resistance(self)
    }

    fn resistance_bounds(&self) -> (f64, f64) {
        let r_on = self.inner.params().r_on;
        let r_off = self.inner.params().r_off;
        match self.fault {
            // A stuck cell's window collapses to the rail it is pinned at.
            CellFault::StuckAtHrs => (r_off, r_off),
            CellFault::StuckAtLrs => (r_on, r_on),
            // Drift shifts the whole observable window with the read path.
            CellFault::Drift(scale) => (r_on * scale, r_off * scale),
            // Dead programming is indistinguishable from healthy at
            // precheck time — only the loop itself exposes it.
            CellFault::DeadProgramming => (r_on, r_off),
        }
    }

    fn pulse(&mut self, voltage: f64, width: f64, dt: f64) {
        match self.fault {
            CellFault::StuckAtHrs | CellFault::StuckAtLrs | CellFault::DeadProgramming => {}
            CellFault::Drift(_) => {
                self.inner.apply_voltage(voltage, width, dt);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BiolekParams;

    fn healthy(r: f64) -> Memristor {
        Memristor::at_resistance(BiolekParams::paper_defaults(), r)
    }

    #[test]
    fn stuck_cells_read_their_rail_and_ignore_pulses() {
        let params = BiolekParams::paper_defaults();
        let mut hrs = FaultyMemristor::new(healthy(50.0e3), CellFault::StuckAtHrs);
        let mut lrs = FaultyMemristor::new(healthy(50.0e3), CellFault::StuckAtLrs);
        assert_eq!(hrs.resistance(), params.r_off);
        assert_eq!(lrs.resistance(), params.r_on);
        hrs.pulse(3.5, 1.0e-6, 1.0e-9);
        lrs.pulse(-3.5, 1.0e-6, 1.0e-9);
        assert_eq!(hrs.resistance(), params.r_off);
        assert_eq!(lrs.resistance(), params.r_on);
        assert_eq!(hrs.resistance_bounds(), (params.r_off, params.r_off));
        assert_eq!(lrs.resistance_bounds(), (params.r_on, params.r_on));
    }

    #[test]
    fn drift_scales_reads_but_keeps_programming_alive() {
        let mut cell = FaultyMemristor::new(healthy(50.0e3), CellFault::Drift(1.2));
        assert!((cell.resistance() - 60.0e3).abs() < 1.0);
        let before = cell.resistance();
        cell.pulse(3.5, 100.0e-9, 1.0e-9);
        assert!(
            cell.resistance() < before,
            "positive pulse must still lower resistance"
        );
        let (lo, hi) = cell.resistance_bounds();
        let params = BiolekParams::paper_defaults();
        assert!((lo - params.r_on * 1.2).abs() < 1e-6);
        assert!((hi - params.r_off * 1.2).abs() < 1e-6);
    }

    #[test]
    fn dead_programming_reads_true_state_but_pulses_are_no_ops() {
        let mut cell = FaultyMemristor::new(healthy(50.0e3), CellFault::DeadProgramming);
        assert!((cell.resistance() - 50.0e3).abs() < 1.0);
        cell.pulse(3.5, 1.0e-6, 1.0e-9);
        assert!((cell.resistance() - 50.0e3).abs() < 1.0);
        // Indistinguishable from healthy at precheck time.
        let params = BiolekParams::paper_defaults();
        assert_eq!(cell.resistance_bounds(), (params.r_on, params.r_off));
    }

    #[test]
    fn fault_labels_are_stable() {
        assert_eq!(CellFault::StuckAtHrs.label(), "stuck_at_hrs");
        assert_eq!(CellFault::StuckAtLrs.label(), "stuck_at_lrs");
        assert_eq!(CellFault::Drift(1.1).label(), "drift");
        assert_eq!(CellFault::DeadProgramming.label(), "dead_programming");
    }
}
