//! Wall-clock measurement of the digital CPU implementations — the Fig. 6(b)
//! baseline (the paper used optimized C on an i5-3470; we measure the
//! optimized Rust reference on the host).

use std::time::Instant;

use mda_distance::{boxed_distance, DistanceKind};

/// Median-of-`reps` wall-clock time of one CPU distance computation, s.
pub fn measure_cpu_time(kind: DistanceKind, p: &[f64], q: &[f64], reps: usize) -> f64 {
    assert!(reps >= 1, "need at least one repetition");
    let d = boxed_distance(kind);
    // Warm up caches and branch predictors.
    let mut sink = 0.0;
    sink += d.evaluate(p, q).expect("valid inputs");
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            sink += d.evaluate(p, q).expect("valid inputs");
            start.elapsed().as_secs_f64()
        })
        .collect();
    // Keep the optimizer honest.
    assert!(sink.is_finite());
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    samples[samples.len() / 2]
}

/// CPU time per element, s (total divided by the sequence length).
pub fn cpu_time_per_element(kind: DistanceKind, p: &[f64], q: &[f64], reps: usize) -> f64 {
    measure_cpu_time(kind, p, q, reps) / p.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(len: usize, phase: f64) -> Vec<f64> {
        (0..len).map(|i| (i as f64 * 0.3 + phase).sin()).collect()
    }

    #[test]
    fn measurement_returns_positive_times() {
        let p = series(32, 0.0);
        let q = series(32, 0.5);
        for kind in DistanceKind::ALL {
            let t = measure_cpu_time(kind, &p, &q, 5);
            assert!(t > 0.0, "{kind} time {t}");
        }
    }

    #[test]
    fn quadratic_functions_slower_than_linear_at_scale() {
        // The premise of Fig. 6(b): O(n²) DTW costs far more CPU time than
        // O(n) MD at the same length.
        let p = series(256, 0.0);
        let q = series(256, 0.5);
        let dtw = measure_cpu_time(DistanceKind::Dtw, &p, &q, 9);
        let md = measure_cpu_time(DistanceKind::Manhattan, &p, &q, 9);
        assert!(dtw > md * 3.0, "dtw {dtw:.3e} vs md {md:.3e}");
    }
}
