//! Regenerates Tables 1 and 2 of the paper from the configuration the
//! reproduction actually uses.

use mda_bench::Table;
use mda_core::AcceleratorConfig;
use mda_memristor::{BiolekParams, StochasticParams};

fn main() {
    let c = AcceleratorConfig::paper_defaults();
    println!("Table 1: SPICE parameters for distance accelerator setup\n");
    let mut t1 = Table::new(["Parameter", "Configuration"]);
    t1.row(["Open loop gain of op-amp", &format!("{:.0e}", c.opamp_gain)]);
    t1.row([
        "Gain-bandwidth product of op-amp (GHz)",
        &format!("{:.0}", c.opamp_gbw / 1.0e9),
    ]);
    t1.row(["Vcc (V)", &format!("{:.1}", c.vcc)]);
    t1.row([
        "Voltage resolution",
        &format!("{:.0} mV for 1", c.voltage_resolution * 1.0e3),
    ]);
    t1.row([
        "Threshold voltage of diodes (V)",
        "0 (near-ideal exponential)",
    ]);
    t1.row([
        "Parasitic capacitance per net (fF)",
        &format!("{:.0}", c.parasitic_capacitance * 1.0e15),
    ]);
    t1.row(["Vstep (mV)", &format!("{:.0}", c.v_step * 1.0e3)]);
    t1.row(["PE array", &c.array.to_string()]);
    println!("{t1}");

    let s = StochasticParams::table2();
    let b = BiolekParams::paper_defaults();
    println!("Table 2: Parameters for stochastic Biolek's model\n");
    let mut t2 = Table::new(["Parameter", "Value"]);
    t2.row(["V0 (V)", &format!("{:.3}", s.v0)]);
    t2.row(["tau (s)", &format!("{:.2e}", s.tau)]);
    t2.row(["VT0 (V)", &format!("{:.1}", s.vt0)]);
    t2.row(["dV (V)", &format!("{:.1}", s.delta_v)]);
    t2.row(["Roff (kOhm)", &format!("{:.0}", b.r_off / 1.0e3)]);
    t2.row(["Ron (kOhm)", &format!("{:.0}", b.r_on / 1.0e3)]);
    t2.row(["dRon/off", &format!("{:.0}%", s.delta_r * 100.0)]);
    println!("{t2}");

    println!(
        "Sub-threshold disturb check (Section 4.2): P(switch | 0.25 V, 10 ns) = {:.2e}",
        s.switching_probability(0.25, 10.0e-9)
    );
}
