//! Load generator for `mda-server`: drives the service at configurable
//! concurrency, verifies served results are bitwise identical to direct
//! library calls, and measures how request coalescing, connection
//! multiplexing, and resident datasets scale the service.
//!
//! ```text
//! serve_loadgen [--addr HOST:PORT] [--clients N] [--seconds S]
//!               [--conns N] [--rounds N] [--strict]
//! ```
//!
//! Without `--addr`, an in-process server is started on a loopback port.
//! Phases:
//!
//! 1. **identity** — all six distance kinds + kNN, bitwise vs direct
//!    library calls (always fatal);
//! 2. **throughput** — 1 client vs `--clients` concurrent clients issuing
//!    DTW queries back to back; the coalescing ratio between the two is
//!    gated under `--strict`, scaled to the host's core count (a 1-core
//!    container cannot show parallel speedup no matter how good the
//!    batching is, so its requirement bottoms out below 1x);
//! 3. **connection storm** — `--conns` connections (default 1000) all held
//!    open concurrently, each driving pipelined request rounds whose
//!    replies must be bitwise identical (always fatal);
//! 4. **resident datasets** — the same kNN workload inline vs resident;
//!    results must match bitwise and the resident path must move at least
//!    10x fewer wire bytes (always fatal).
//!
//! Writes `results/BENCH_serve.json`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use mda_distance::mining::KnnClassifier;
use mda_distance::{boxed_distance, DistanceKind};
use mda_server::protocol::{
    encode_request, DatasetEntry, DatasetRef, Envelope, Request, TrainInstance,
};
use mda_server::{Client, QueryOptions, Server, ServerConfig};

fn series(len: usize, seed: usize) -> Vec<f64> {
    (0..len)
        .map(|i| ((i + 29 * seed) as f64 * 0.23).sin() * 1.6 + (seed as f64 * 0.41).cos())
        .collect()
}

/// One pass over all six distance functions plus a kNN query, compared
/// bitwise against direct library calls.
fn identity_check(addr: std::net::SocketAddr) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let p = series(48, 3);
    let q = series(48, 4);
    for kind in DistanceKind::ALL {
        let direct = boxed_distance(kind)
            .evaluate(&p, &q)
            .map_err(|e| e.to_string())?;
        let served = client
            .query_distance(kind, &p, &q, &QueryOptions::new())
            .map_err(|e| e.to_string())?
            .value;
        if served.to_bits() != direct.to_bits() {
            return Err(format!(
                "{kind}: served {served:e} != direct {direct:e} (bitwise)"
            ));
        }
    }
    let train: Vec<TrainInstance> = (0..10)
        .map(|i| TrainInstance {
            label: i % 2,
            series: series(48, 200 + i),
        })
        .collect();
    let mut knn = KnnClassifier::new(boxed_distance(DistanceKind::Dtw), 3);
    for t in &train {
        knn.fit(t.label, t.series.clone());
    }
    let direct = knn.classify(&p).map_err(|e| e.to_string())?;
    let served = client
        .query_knn(DistanceKind::Dtw, 3, &p, &train, &QueryOptions::new())
        .map_err(|e| e.to_string())?
        .value;
    if served.label != direct.label
        || served.score.to_bits() != direct.score.to_bits()
        || served.nearest_index != direct.nearest_index
    {
        return Err(format!("kNN: served {served:?} != direct {direct:?}"));
    }
    Ok(())
}

/// Drives `clients` concurrent connections for `seconds`, each issuing
/// DTW distance queries back to back. Returns (requests, errors, qps).
fn run_load(addr: std::net::SocketAddr, clients: usize, seconds: f64) -> (u64, u64, f64) {
    let requests = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let start = Instant::now();
    let deadline = start + Duration::from_secs_f64(seconds);
    std::thread::scope(|scope| {
        for c in 0..clients {
            let (requests, errors) = (&requests, &errors);
            scope.spawn(move || {
                let Ok(mut client) = Client::connect(addr) else {
                    errors.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                let p = series(64, c);
                let mut seed = 0usize;
                while Instant::now() < deadline {
                    let q = series(64, 1000 + c * 97 + (seed % 8));
                    seed += 1;
                    match client.query_distance(DistanceKind::Dtw, &p, &q, &QueryOptions::new()) {
                        Ok(_) => {
                            requests.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let n = requests.load(Ordering::Relaxed);
    (n, errors.load(Ordering::Relaxed), n as f64 / elapsed)
}

/// Outcome of the connection-storm phase.
struct StormOutcome {
    held: usize,
    requests: u64,
    errors: u64,
    mismatches: u64,
    qps: f64,
}

/// Opens `conns` connections, holds them ALL open concurrently (a barrier
/// separates connect from drive), then runs `rounds` of pipelined
/// `send_many` bursts on every connection, verifying each reply bitwise.
fn run_connection_storm(addr: std::net::SocketAddr, conns: usize, rounds: usize) -> StormOutcome {
    let p = series(32, 7);
    let q = series(32, 9);
    let expected: Vec<(DistanceKind, u64)> = DistanceKind::ALL
        .into_iter()
        .map(|kind| {
            let d = boxed_distance(kind)
                .evaluate(&p, &q)
                .expect("direct distance");
            (kind, d.to_bits())
        })
        .collect();

    let threads = conns.clamp(1, 8);
    let barrier = Barrier::new(threads);
    let held = AtomicU64::new(0);
    let requests = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let share = conns / threads + usize::from(t < conns % threads);
            let (barrier, held, requests, errors, mismatches) =
                (&barrier, &held, &requests, &errors, &mismatches);
            let (p, q, expected) = (&p, &q, &expected);
            scope.spawn(move || {
                // Connect this thread's share first; every connection stays
                // open until the whole phase ends.
                let mut clients = Vec::with_capacity(share);
                for _ in 0..share {
                    match Client::connect(addr) {
                        Ok(c) => clients.push(c),
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                held.fetch_add(clients.len() as u64, Ordering::Relaxed);
                barrier.wait();
                let burst: Vec<Request> = expected
                    .iter()
                    .map(|&(kind, _)| Request::Distance {
                        kind,
                        p: p.clone(),
                        q: q.clone(),
                        threshold: None,
                        band: None,
                        deadline_ms: None,
                        accuracy: None,
                    })
                    .collect();
                for _ in 0..rounds {
                    for client in &mut clients {
                        match client.send_many(burst.clone()) {
                            Ok(replies) => {
                                requests.fetch_add(replies.len() as u64, Ordering::Relaxed);
                                for (reply, &(_, want)) in replies.iter().zip(expected.iter()) {
                                    match reply {
                                        mda_server::ResponseBody::Distance { value }
                                            if value.to_bits() == want => {}
                                        _ => {
                                            mismatches.fetch_add(1, Ordering::Relaxed);
                                        }
                                    }
                                }
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let n = requests.load(Ordering::Relaxed);
    StormOutcome {
        held: held.load(Ordering::Relaxed) as usize,
        requests: n,
        errors: errors.load(Ordering::Relaxed),
        mismatches: mismatches.load(Ordering::Relaxed),
        qps: n as f64 / elapsed,
    }
}

/// Outcome of the resident-dataset phase.
struct ResidentOutcome {
    queries: usize,
    inline_bytes: u64,
    resident_bytes: u64,
    reduction: f64,
}

/// Canonical wire size of one request: 4-byte length prefix + payload.
fn wire_bytes(env: &Envelope) -> u64 {
    encode_request(env).len() as u64 + 4
}

/// Runs the same kNN workload (64 x 128-point corpus, ~100 queries) inline
/// and resident, verifying bitwise identity both ways and accounting the
/// wire bytes each path moves (the resident upload is charged in full).
fn run_resident_phase(addr: std::net::SocketAddr) -> Result<ResidentOutcome, String> {
    const CORPUS: usize = 64;
    const LEN: usize = 128;
    const QUERIES: usize = 100;
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;

    let train: Vec<TrainInstance> = (0..CORPUS)
        .map(|i| TrainInstance {
            label: i % 4,
            series: series(LEN, 500 + i),
        })
        .collect();
    let queries: Vec<Vec<f64>> = (0..QUERIES).map(|i| series(LEN, 9000 + i)).collect();

    let mut knn = KnnClassifier::new(boxed_distance(DistanceKind::Dtw), 3);
    for t in &train {
        knn.fit(t.label, t.series.clone());
    }

    // Inline: every request re-ships the whole corpus.
    let mut inline_bytes = 0u64;
    for (i, query) in queries.iter().enumerate() {
        inline_bytes += wire_bytes(&Envelope {
            id: i as u64 + 1,
            req: Request::Knn {
                kind: DistanceKind::Dtw,
                k: 3,
                query: query.clone(),
                train: train.clone(),
                dataset: None,
                threshold: None,
                band: None,
                deadline_ms: None,
                accuracy: None,
            },
        });
        let direct = knn.classify(query).map_err(|e| e.to_string())?;
        let served = client
            .query_knn(DistanceKind::Dtw, 3, query, &train, &QueryOptions::new())
            .map_err(|e| e.to_string())?
            .value;
        if served.label != direct.label || served.score.to_bits() != direct.score.to_bits() {
            return Err(format!("inline kNN query {i}: {served:?} != {direct:?}"));
        }
    }

    // Resident: ship the corpus once, then id-sized queries.
    let entries: Vec<DatasetEntry> = train
        .iter()
        .map(|t| DatasetEntry {
            label: t.label,
            series: t.series.clone(),
        })
        .collect();
    let mut resident_bytes = wire_bytes(&Envelope {
        id: 1,
        req: Request::UploadDataset {
            name: "loadgen-corpus".into(),
            entries: entries.clone(),
        },
    });
    let (dataset_id, _version) = client
        .upload_dataset("loadgen-corpus", &entries)
        .map_err(|e| e.to_string())?;
    for (i, query) in queries.iter().enumerate() {
        resident_bytes += wire_bytes(&Envelope {
            id: i as u64 + 2,
            req: Request::Knn {
                kind: DistanceKind::Dtw,
                k: 3,
                query: query.clone(),
                train: Vec::new(),
                dataset: Some(DatasetRef::by_id(&dataset_id)),
                threshold: None,
                band: None,
                deadline_ms: None,
                accuracy: None,
            },
        });
        let direct = knn.classify(query).map_err(|e| e.to_string())?;
        let served = client
            .query_knn(
                DistanceKind::Dtw,
                3,
                query,
                &[],
                &QueryOptions::new().dataset(DatasetRef::by_id(&dataset_id)),
            )
            .map_err(|e| e.to_string())?
            .value;
        if served.label != direct.label || served.score.to_bits() != direct.score.to_bits() {
            return Err(format!("resident kNN query {i}: {served:?} != {direct:?}"));
        }
    }
    let _ = client.drop_dataset(DatasetRef::by_id(&dataset_id));

    Ok(ResidentOutcome {
        queries: QUERIES,
        inline_bytes,
        resident_bytes,
        reduction: inline_bytes as f64 / resident_bytes as f64,
    })
}

/// Pulls one `name value` line out of a metrics exposition.
fn metric(text: &str, name: &str) -> f64 {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l[name.len() + 1..].trim().parse().ok())
        .unwrap_or(0.0)
}

fn main() {
    let mut addr_arg: Option<String> = None;
    let mut clients = 8usize;
    let mut seconds = 2.0f64;
    let mut conns = 1000usize;
    let mut rounds = 3usize;
    let mut strict = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => addr_arg = args.next(),
            "--clients" => {
                clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients N");
            }
            "--seconds" => {
                seconds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seconds S");
            }
            "--conns" => {
                conns = args.next().and_then(|v| v.parse().ok()).expect("--conns N");
            }
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rounds N");
            }
            "--strict" => strict = true,
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!(
                    "usage: serve_loadgen [--addr HOST:PORT] [--clients N] [--seconds S] \
                     [--conns N] [--rounds N] [--strict]"
                );
                std::process::exit(2);
            }
        }
    }

    // Either attach to a running server or host one in-process.
    let in_process = addr_arg.is_none();
    let server = if in_process {
        Some(
            Server::start(ServerConfig {
                max_connections: conns + 64,
                ..ServerConfig::default()
            })
            .expect("start in-process server"),
        )
    } else {
        None
    };
    let addr: std::net::SocketAddr = match (&server, &addr_arg) {
        (Some(s), _) => s.local_addr(),
        (None, Some(a)) => a.parse().expect("--addr must be HOST:PORT"),
        (None, None) => unreachable!(),
    };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "serve_loadgen -> {addr} ({cores} core(s), {clients} clients, {seconds}s per phase, \
         {conns} storm conns x {rounds} rounds)"
    );

    // Identity gate: always fatal.
    if let Err(e) = identity_check(addr) {
        eprintln!("IDENTITY GATE: {e}");
        std::process::exit(1);
    }
    println!("identity gate: all six kinds + kNN bitwise-identical to direct calls");

    let (n1, e1, qps1) = run_load(addr, 1, seconds);
    println!("  1 client : {n1} requests ({e1} errors), {qps1:.0} req/s");
    let (nc, ec, qpsc) = run_load(addr, clients, seconds);
    println!("  {clients} clients: {nc} requests ({ec} errors), {qpsc:.0} req/s");
    let ratio = if qps1 > 0.0 { qpsc / qps1 } else { 0.0 };
    println!("  concurrency ratio: {ratio:.2}x");

    // Connection storm: every connection open at once, pipelined rounds.
    let storm = run_connection_storm(addr, conns, rounds);
    println!(
        "  storm: {}/{} conns held, {} requests ({} errors, {} mismatches), {:.0} req/s",
        storm.held, conns, storm.requests, storm.errors, storm.mismatches, storm.qps
    );

    // Resident datasets: same workload, fraction of the wire bytes.
    let resident = match run_resident_phase(addr) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("RESIDENT GATE: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "  resident: {} kNN queries, inline {} B vs resident {} B on the wire ({:.1}x reduction)",
        resident.queries, resident.inline_bytes, resident.resident_bytes, resident.reduction
    );

    let metrics_text = Client::connect(addr)
        .and_then(|mut c| c.metrics_text())
        .unwrap_or_default();
    let occupancy = metric(&metrics_text, "mda_batch_occupancy_mean");
    let shed = metric(&metrics_text, "mda_shed_total");
    let p99_us = metric(&metrics_text, "mda_latency_us{quantile=\"0.99\"}");
    let depth_mean = metric(&metrics_text, "mda_pipeline_depth_mean");
    let depth_max = metric(&metrics_text, "mda_pipeline_depth_max");
    println!(
        "  batch occupancy: {occupancy:.2} items/batch, shed: {shed:.0}, p99: {p99_us:.0}us, \
         pipeline depth mean {depth_mean:.2} / max {depth_max:.0}"
    );

    // The >= 2x coalescing requirement needs real parallel cores; scale it
    // with available parallelism so 1- and 2-core hosts gate on "no
    // regression" (sub-1x) instead of an impossible speedup.
    let required_ratio = (cores as f64 / 2.0).clamp(0.85, 2.0);

    let payload = format!(
        concat!(
            "{{\n",
            "  \"cores\": {},\n",
            "  \"clients\": {},\n",
            "  \"seconds\": {},\n",
            "  \"in_process\": {},\n",
            "  \"identity_ok\": true,\n",
            "  \"single_requests\": {},\n",
            "  \"single_errors\": {},\n",
            "  \"single_qps\": {:.1},\n",
            "  \"concurrent_requests\": {},\n",
            "  \"concurrent_errors\": {},\n",
            "  \"concurrent_qps\": {:.1},\n",
            "  \"concurrency_ratio\": {:.3},\n",
            "  \"required_ratio\": {:.3},\n",
            "  \"storm_conns_target\": {},\n",
            "  \"storm_conns_held\": {},\n",
            "  \"storm_requests\": {},\n",
            "  \"storm_errors\": {},\n",
            "  \"storm_mismatches\": {},\n",
            "  \"storm_qps\": {:.1},\n",
            "  \"resident_queries\": {},\n",
            "  \"wire_bytes_inline\": {},\n",
            "  \"wire_bytes_resident\": {},\n",
            "  \"wire_reduction\": {:.2},\n",
            "  \"pipeline_depth_mean\": {:.3},\n",
            "  \"pipeline_depth_max\": {:.0},\n",
            "  \"batch_occupancy_mean\": {:.3},\n",
            "  \"shed_total\": {:.0},\n",
            "  \"latency_p99_us\": {:.0},\n",
            "  \"strict\": {}\n",
            "}}\n",
        ),
        cores,
        clients,
        seconds,
        in_process,
        n1,
        e1,
        qps1,
        nc,
        ec,
        qpsc,
        ratio,
        required_ratio,
        conns,
        storm.held,
        storm.requests,
        storm.errors,
        storm.mismatches,
        storm.qps,
        resident.queries,
        resident.inline_bytes,
        resident.resident_bytes,
        resident.reduction,
        depth_mean,
        depth_max,
        occupancy,
        shed,
        p99_us,
        strict,
    );
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/BENCH_serve.json";
    std::fs::write(path, payload).expect("write bench json");
    println!("wrote {path}");

    if let Some(server) = server {
        server.shutdown_and_join();
    }

    if e1 + ec > 0 {
        eprintln!("LOAD GATE: {} request error(s) under load", e1 + ec);
        std::process::exit(1);
    }
    if storm.mismatches > 0 {
        eprintln!(
            "STORM GATE: {} bitwise mismatch(es) across {} connections",
            storm.mismatches, storm.held
        );
        std::process::exit(1);
    }
    if storm.errors > 0 || storm.held < conns {
        eprintln!(
            "STORM GATE: held {}/{} connections with {} error(s) — raise `ulimit -n`?",
            storm.held, conns, storm.errors
        );
        std::process::exit(1);
    }
    if resident.reduction < 10.0 {
        eprintln!(
            "RESIDENT GATE: wire reduction {:.1}x < 10x",
            resident.reduction
        );
        std::process::exit(1);
    }
    if strict && ratio < required_ratio {
        eprintln!(
            "COALESCING GATE: {ratio:.2}x < {required_ratio:.2}x at {clients} clients \
             (strict mode, {cores} core(s))"
        );
        std::process::exit(1);
    }
    if !strict {
        println!(
            "(coalescing gate advisory: {ratio:.2}x vs {required_ratio:.2}x required on \
             {cores} core(s); rerun with --strict to enforce)"
        );
    }
    println!("done");
}
