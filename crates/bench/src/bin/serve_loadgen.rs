//! Load generator for `mda-server`: drives the service at configurable
//! concurrency, verifies served results are bitwise identical to direct
//! library calls, and measures how request coalescing scales throughput
//! from one connection to many.
//!
//! ```text
//! serve_loadgen [--addr HOST:PORT] [--clients N] [--seconds S] [--strict]
//! ```
//!
//! Without `--addr`, an in-process server is started on a loopback port.
//! The identity gate is always fatal. The coalescing gate (concurrent
//! throughput ≥ 2x a single connection at 8 clients) needs real cores to
//! manifest, so it is only enforced under `--strict` — intended for
//! multi-core CI runners, meaningless on a single-core container.
//!
//! Writes `results/BENCH_serve.json`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use mda_distance::mining::KnnClassifier;
use mda_distance::{boxed_distance, DistanceKind};
use mda_server::protocol::TrainInstance;
use mda_server::{Client, QueryOpts, Server, ServerConfig};

fn series(len: usize, seed: usize) -> Vec<f64> {
    (0..len)
        .map(|i| ((i + 29 * seed) as f64 * 0.23).sin() * 1.6 + (seed as f64 * 0.41).cos())
        .collect()
}

/// One pass over all six distance functions plus a kNN query, compared
/// bitwise against direct library calls.
fn identity_check(addr: std::net::SocketAddr) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let p = series(48, 3);
    let q = series(48, 4);
    for kind in DistanceKind::ALL {
        let direct = boxed_distance(kind)
            .evaluate(&p, &q)
            .map_err(|e| e.to_string())?;
        let served = client.distance(kind, &p, &q).map_err(|e| e.to_string())?;
        if served.to_bits() != direct.to_bits() {
            return Err(format!(
                "{kind}: served {served:e} != direct {direct:e} (bitwise)"
            ));
        }
    }
    let train: Vec<TrainInstance> = (0..10)
        .map(|i| TrainInstance {
            label: i % 2,
            series: series(48, 200 + i),
        })
        .collect();
    let mut knn = KnnClassifier::new(boxed_distance(DistanceKind::Dtw), 3);
    for t in &train {
        knn.fit(t.label, t.series.clone());
    }
    let direct = knn.classify(&p).map_err(|e| e.to_string())?;
    let served = client
        .knn(DistanceKind::Dtw, 3, &p, &train, QueryOpts::default())
        .map_err(|e| e.to_string())?;
    if served.label != direct.label
        || served.score.to_bits() != direct.score.to_bits()
        || served.nearest_index != direct.nearest_index
    {
        return Err(format!("kNN: served {served:?} != direct {direct:?}"));
    }
    Ok(())
}

/// Drives `clients` concurrent connections for `seconds`, each issuing
/// DTW distance queries back to back. Returns (requests, errors, qps).
fn run_load(addr: std::net::SocketAddr, clients: usize, seconds: f64) -> (u64, u64, f64) {
    let requests = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let start = Instant::now();
    let deadline = start + Duration::from_secs_f64(seconds);
    std::thread::scope(|scope| {
        for c in 0..clients {
            let (requests, errors) = (&requests, &errors);
            scope.spawn(move || {
                let Ok(mut client) = Client::connect(addr) else {
                    errors.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                let p = series(64, c);
                let mut seed = 0usize;
                while Instant::now() < deadline {
                    let q = series(64, 1000 + c * 97 + (seed % 8));
                    seed += 1;
                    match client.distance(DistanceKind::Dtw, &p, &q) {
                        Ok(_) => {
                            requests.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let n = requests.load(Ordering::Relaxed);
    (n, errors.load(Ordering::Relaxed), n as f64 / elapsed)
}

/// Pulls one `name value` line out of a metrics exposition.
fn metric(text: &str, name: &str) -> f64 {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l[name.len() + 1..].trim().parse().ok())
        .unwrap_or(0.0)
}

fn main() {
    let mut addr_arg: Option<String> = None;
    let mut clients = 8usize;
    let mut seconds = 2.0f64;
    let mut strict = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => addr_arg = args.next(),
            "--clients" => {
                clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients N");
            }
            "--seconds" => {
                seconds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seconds S");
            }
            "--strict" => strict = true,
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!("usage: serve_loadgen [--addr HOST:PORT] [--clients N] [--seconds S] [--strict]");
                std::process::exit(2);
            }
        }
    }

    // Either attach to a running server or host one in-process.
    let in_process = addr_arg.is_none();
    let server = if in_process {
        Some(Server::start(ServerConfig::default()).expect("start in-process server"))
    } else {
        None
    };
    let addr: std::net::SocketAddr = match (&server, &addr_arg) {
        (Some(s), _) => s.local_addr(),
        (None, Some(a)) => a.parse().expect("--addr must be HOST:PORT"),
        (None, None) => unreachable!(),
    };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("serve_loadgen -> {addr} ({cores} core(s), {clients} clients, {seconds}s per phase)");

    // Identity gate: always fatal.
    if let Err(e) = identity_check(addr) {
        eprintln!("IDENTITY GATE: {e}");
        std::process::exit(1);
    }
    println!("identity gate: all six kinds + kNN bitwise-identical to direct calls");

    let (n1, e1, qps1) = run_load(addr, 1, seconds);
    println!("  1 client : {n1} requests ({e1} errors), {qps1:.0} req/s");
    let (nc, ec, qpsc) = run_load(addr, clients, seconds);
    println!("  {clients} clients: {nc} requests ({ec} errors), {qpsc:.0} req/s");
    let ratio = if qps1 > 0.0 { qpsc / qps1 } else { 0.0 };
    println!("  concurrency ratio: {ratio:.2}x");

    let metrics_text = Client::connect(addr)
        .and_then(|mut c| c.metrics_text())
        .unwrap_or_default();
    let occupancy = metric(&metrics_text, "mda_batch_occupancy_mean");
    let shed = metric(&metrics_text, "mda_shed_total");
    let p99_us = metric(&metrics_text, "mda_latency_us{quantile=\"0.99\"}");
    println!("  batch occupancy: {occupancy:.2} items/batch, shed: {shed:.0}, p99: {p99_us:.0}us");

    let payload = format!(
        concat!(
            "{{\n",
            "  \"cores\": {},\n",
            "  \"clients\": {},\n",
            "  \"seconds\": {},\n",
            "  \"in_process\": {},\n",
            "  \"identity_ok\": true,\n",
            "  \"single_requests\": {},\n",
            "  \"single_errors\": {},\n",
            "  \"single_qps\": {:.1},\n",
            "  \"concurrent_requests\": {},\n",
            "  \"concurrent_errors\": {},\n",
            "  \"concurrent_qps\": {:.1},\n",
            "  \"concurrency_ratio\": {:.3},\n",
            "  \"batch_occupancy_mean\": {:.3},\n",
            "  \"shed_total\": {:.0},\n",
            "  \"latency_p99_us\": {:.0},\n",
            "  \"strict\": {}\n",
            "}}\n",
        ),
        cores,
        clients,
        seconds,
        in_process,
        n1,
        e1,
        qps1,
        nc,
        ec,
        qpsc,
        ratio,
        occupancy,
        shed,
        p99_us,
        strict,
    );
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/BENCH_serve.json";
    std::fs::write(path, payload).expect("write bench json");
    println!("wrote {path}");

    if let Some(server) = server {
        server.shutdown_and_join();
    }

    if e1 + ec > 0 {
        eprintln!("LOAD GATE: {} request error(s) under load", e1 + ec);
        std::process::exit(1);
    }
    // The >= 2x coalescing gate needs real parallel cores; on a 1-core box
    // the ratio hovers near 1x no matter how good the batching is.
    if strict && ratio < 2.0 {
        eprintln!("COALESCING GATE: {ratio:.2}x < 2x at {clients} clients (strict mode)");
        std::process::exit(1);
    }
    if !strict && cores < 4 {
        println!(
            "(coalescing gate skipped: {cores} core(s); rerun with --strict on a multi-core host)"
        );
    }
    println!("done");
}
