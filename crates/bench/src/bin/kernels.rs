//! DP-kernel and pruning-cascade bench: the reworked wavefront kernels and
//! cached-envelope UCR cascade against the frozen pre-rework baselines in
//! [`mda_bench::kernels_baseline`].
//!
//! Three gates, all serial (one simulated accelerator host core):
//!
//! 1. **Identity (fatal)** — every reworked kernel must return bitwise the
//!    same value as its frozen baseline over a shape/band sweep, and the
//!    reworked search must return the baseline's match (offset and distance
//!    bits). Any mismatch exits non-zero.
//! 2. **ns/cell** — per-kernel serial throughput, baseline vs reworked.
//! 3. **Search speedup (fatal)** — end-to-end subsequence search must be
//!    ≥ 2× faster than the pre-rework path on the standard workload.
//!
//! Writes `results/BENCH_kernels.json`. `--quick` shrinks the workload for
//! CI; the identity and speedup gates stay fatal in both modes.

use std::time::Instant;

use mda_bench::kernels_baseline as baseline;
use mda_bench::Table;
use mda_distance::mining::SubsequenceSearch;
use mda_distance::quantized::QuantizedDtw;
use mda_distance::{Band, BatchEngine, DpScratch, Dtw, EditDistance, Lcs};

fn wave(i: usize, k: f64, amp: f64) -> f64 {
    (i as f64 * k).sin() * amp + (i as f64 * 0.013).cos() * 0.6
}

fn series(len: usize, seed: usize) -> Vec<f64> {
    (0..len)
        .map(|i| wave(i + 31 * seed, 0.21 + 0.01 * (seed % 7) as f64, 1.8))
        .collect()
}

/// Best-of-3 wall-clock of `f`, which must return a checksum-ish value so
/// the work cannot be optimized away.
fn best_of_3(mut f: impl FnMut() -> f64) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut out = 0.0;
    for _ in 0..3 {
        let start = Instant::now();
        out = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, out)
}

struct KernelRow {
    name: &'static str,
    cells: u64,
    baseline_ns_per_cell: f64,
    new_ns_per_cell: f64,
    identical: bool,
}

/// Bitwise identity sweep of the reworked kernels against the frozen
/// baselines across shapes and bands. Returns the mismatch count.
fn identity_sweep() -> usize {
    let mut mismatches = 0usize;
    let mut check = |name: &str, new_bits: Option<u64>, base_bits: Option<u64>| {
        if new_bits != base_bits {
            eprintln!("IDENTITY MISMATCH: {name}: new {new_bits:?} vs baseline {base_bits:?}");
            mismatches += 1;
        }
    };
    let mut scratch = DpScratch::new();
    let shapes: [(usize, usize); 7] = [
        (1, 1),
        (2, 5),
        (8, 8),
        (17, 9),
        (33, 33),
        (64, 61),
        (128, 128),
    ];
    for &(m, n) in &shapes {
        let p: Vec<f64> = (0..m).map(|i| wave(i, 0.37, 2.0)).collect();
        let q: Vec<f64> = (0..n).map(|i| wave(i, 0.29, 1.7)).collect();
        for r in [None, Some(0), Some(2), Some(7), Some(64)] {
            let band = r.map_or(Band::Full, Band::SakoeChiba);
            let new = Dtw::new()
                .with_band(band)
                .distance_with(&p, &q, &mut scratch)
                .ok();
            check(
                &format!("dtw {m}x{n} r={r:?}"),
                new.map(f64::to_bits),
                baseline::dtw(&p, &q, r).map(f64::to_bits),
            );
        }
        check(
            &format!("lcs {m}x{n}"),
            Some(Lcs::new(0.3).similarity(&p, &q).unwrap().to_bits()),
            Some(baseline::lcs(&p, &q, 0.3, 1.0).to_bits()),
        );
        check(
            &format!("edit {m}x{n}"),
            Some(EditDistance::new(0.3).distance(&p, &q).unwrap().to_bits()),
            Some(baseline::edit(&p, &q, 0.3, 1.0).to_bits()),
        );
    }
    mismatches
}

fn kernel_rows(pairs: usize, len: usize) -> (Vec<KernelRow>, usize) {
    let mut mismatches = 0usize;
    let inputs: Vec<(Vec<f64>, Vec<f64>)> = (0..pairs)
        .map(|k| (series(len, k), series(len, k + 1000)))
        .collect();
    let cells = (pairs * len * len) as u64;
    let banded_r = (len / 20).max(1);
    let mut rows = Vec::new();

    // DTW, full band.
    let (t_base, sum_base) = best_of_3(|| {
        inputs
            .iter()
            .map(|(p, q)| baseline::dtw(p, q, None).unwrap())
            .sum()
    });
    let (t_new, sum_new) = best_of_3(|| {
        let mut scratch = DpScratch::new();
        let dtw = Dtw::new();
        inputs
            .iter()
            .map(|(p, q)| dtw.distance_with(p, q, &mut scratch).unwrap())
            .sum()
    });
    if sum_base.to_bits() != sum_new.to_bits() {
        eprintln!("IDENTITY MISMATCH: dtw_full batch checksum");
        mismatches += 1;
    }
    rows.push(KernelRow {
        name: "dtw_full",
        cells,
        baseline_ns_per_cell: t_base * 1e9 / cells as f64,
        new_ns_per_cell: t_new * 1e9 / cells as f64,
        identical: sum_base.to_bits() == sum_new.to_bits(),
    });

    // DTW, 5%-style band. Cells = the active band cells.
    let band_cells = (Band::SakoeChiba(banded_r).active_cells(len, len) * pairs) as u64;
    let (t_base, sum_base) = best_of_3(|| {
        inputs
            .iter()
            .map(|(p, q)| baseline::dtw(p, q, Some(banded_r)).unwrap())
            .sum()
    });
    let (t_new, sum_new) = best_of_3(|| {
        let mut scratch = DpScratch::new();
        let dtw = Dtw::new().with_band(Band::SakoeChiba(banded_r));
        inputs
            .iter()
            .map(|(p, q)| dtw.distance_with(p, q, &mut scratch).unwrap())
            .sum()
    });
    if sum_base.to_bits() != sum_new.to_bits() {
        eprintln!("IDENTITY MISMATCH: dtw_banded batch checksum");
        mismatches += 1;
    }
    rows.push(KernelRow {
        name: "dtw_banded",
        cells: band_cells,
        baseline_ns_per_cell: t_base * 1e9 / band_cells as f64,
        new_ns_per_cell: t_new * 1e9 / band_cells as f64,
        identical: sum_base.to_bits() == sum_new.to_bits(),
    });

    // LCS.
    let (t_base, sum_base) = best_of_3(|| {
        inputs
            .iter()
            .map(|(p, q)| baseline::lcs(p, q, 0.3, 1.0))
            .sum()
    });
    let (t_new, sum_new) = best_of_3(|| {
        let mut scratch = DpScratch::new();
        let lcs = Lcs::new(0.3);
        inputs
            .iter()
            .map(|(p, q)| lcs.similarity_with(p, q, &mut scratch).unwrap())
            .sum()
    });
    if sum_base.to_bits() != sum_new.to_bits() {
        eprintln!("IDENTITY MISMATCH: lcs batch checksum");
        mismatches += 1;
    }
    rows.push(KernelRow {
        name: "lcs",
        cells,
        baseline_ns_per_cell: t_base * 1e9 / cells as f64,
        new_ns_per_cell: t_new * 1e9 / cells as f64,
        identical: sum_base.to_bits() == sum_new.to_bits(),
    });

    // Edit distance.
    let (t_base, sum_base) = best_of_3(|| {
        inputs
            .iter()
            .map(|(p, q)| baseline::edit(p, q, 0.3, 1.0))
            .sum()
    });
    let (t_new, sum_new) = best_of_3(|| {
        let mut scratch = DpScratch::new();
        let edit = EditDistance::new(0.3);
        inputs
            .iter()
            .map(|(p, q)| edit.distance_with(p, q, &mut scratch).unwrap())
            .sum()
    });
    if sum_base.to_bits() != sum_new.to_bits() {
        eprintln!("IDENTITY MISMATCH: edit batch checksum");
        mismatches += 1;
    }
    rows.push(KernelRow {
        name: "edit",
        cells,
        baseline_ns_per_cell: t_base * 1e9 / cells as f64,
        new_ns_per_cell: t_new * 1e9 / cells as f64,
        identical: sum_base.to_bits() == sum_new.to_bits(),
    });

    // Quantized opt-in path (i16 codes, f32 accumulation). No bitwise gate
    // — its contract is the behavioural bound, tested in mda-conformance —
    // so it reports throughput only, against the exact full-band baseline.
    let (t_quant, _) = best_of_3(|| {
        let qd = QuantizedDtw::paper_reference();
        inputs.iter().map(|(p, q)| qd.distance(p, q).unwrap()).sum()
    });
    rows.push(KernelRow {
        name: "dtw_quantized",
        cells,
        baseline_ns_per_cell: t_base * 1e9 / cells as f64,
        new_ns_per_cell: t_quant * 1e9 / cells as f64,
        identical: true,
    });

    (rows, mismatches)
}

struct SearchRun {
    haystack_len: usize,
    window: usize,
    radius: usize,
    baseline_seconds: f64,
    new_seconds: f64,
    baseline_prune_rate: f64,
    new_prune_rate: f64,
    identical: bool,
}

fn search_run(haystack_len: usize, window: usize, radius: usize) -> (SearchRun, usize) {
    let mut mismatches = 0usize;
    // Random-walk-flavoured haystack with a near-match planted mid-way: the
    // standard pruning regime (most windows die in the cascade, a few reach
    // the DP).
    let mut haystack: Vec<f64> = Vec::with_capacity(haystack_len);
    let mut level = 0.0f64;
    for i in 0..haystack_len {
        level += wave(i, 0.83, 0.35);
        haystack.push(level * 0.05 + wave(i, 0.19, 1.2));
    }
    let at = haystack_len / 2;
    let query: Vec<f64> = haystack[at..at + window]
        .iter()
        .enumerate()
        .map(|(i, &v)| v + wave(i, 1.7, 0.02))
        .collect();

    let (t_base, _) = best_of_3(|| baseline::search(&query, &haystack, window, radius).distance);
    let base = baseline::search(&query, &haystack, window, radius);

    let search = SubsequenceSearch::new(window, radius).with_engine(BatchEngine::serial());
    let (t_new, _) = best_of_3(|| search.run(&query, &haystack).unwrap().0.distance);
    let (m, stats) = search.run(&query, &haystack).unwrap();

    let identical = m.offset == base.offset && m.distance.to_bits() == base.distance.to_bits();
    if !identical {
        eprintln!(
            "IDENTITY MISMATCH: search baseline ({}, {}) vs new ({}, {})",
            base.offset, base.distance, m.offset, m.distance
        );
        mismatches += 1;
    }
    (
        SearchRun {
            haystack_len,
            window,
            radius,
            baseline_seconds: t_base,
            new_seconds: t_new,
            baseline_prune_rate: base.prune_rate(),
            new_prune_rate: stats.prune_rate(),
            identical,
        },
        mismatches,
    )
}

fn json(rows: &[KernelRow], search: &SearchRun, mismatches: usize, quick: bool) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"identity_mismatches\": {mismatches},\n"));
    s.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"cells\": {},\n",
                "      \"baseline_ns_per_cell\": {:.3},\n",
                "      \"new_ns_per_cell\": {:.3},\n",
                "      \"speedup\": {:.3},\n",
                "      \"identical\": {}\n",
                "    }}{}\n",
            ),
            r.name,
            r.cells,
            r.baseline_ns_per_cell,
            r.new_ns_per_cell,
            r.baseline_ns_per_cell / r.new_ns_per_cell,
            r.identical,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        concat!(
            "  \"search\": {{\n",
            "    \"haystack_len\": {},\n",
            "    \"window\": {},\n",
            "    \"radius\": {},\n",
            "    \"baseline_seconds\": {:.6},\n",
            "    \"new_seconds\": {:.6},\n",
            "    \"speedup\": {:.3},\n",
            "    \"baseline_prune_rate\": {:.4},\n",
            "    \"new_prune_rate\": {:.4},\n",
            "    \"identical\": {}\n",
            "  }}\n",
        ),
        search.haystack_len,
        search.window,
        search.radius,
        search.baseline_seconds,
        search.new_seconds,
        search.baseline_seconds / search.new_seconds,
        search.baseline_prune_rate,
        search.new_prune_rate,
        search.identical,
    ));
    s.push_str("}\n");
    s
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (pairs, len, haystack_len) = if quick {
        (48, 128, 4096)
    } else {
        (128, 128, 16384)
    };
    let window = 128;
    let radius = window / 20; // the paper's 5% band, rounded down to 6

    println!(
        "DP kernel rework bench (serial){}\n",
        if quick { " — quick" } else { "" }
    );

    let mut mismatches = identity_sweep();

    let (rows, kernel_mismatches) = kernel_rows(pairs, len);
    mismatches += kernel_mismatches;
    let mut table = Table::new([
        "kernel",
        "cells",
        "baseline ns/cell",
        "new ns/cell",
        "speedup",
    ]);
    for r in &rows {
        table.row([
            r.name.into(),
            r.cells.to_string(),
            format!("{:.2}", r.baseline_ns_per_cell),
            format!("{:.2}", r.new_ns_per_cell),
            format!("{:.2}x", r.baseline_ns_per_cell / r.new_ns_per_cell),
        ]);
    }
    println!("{}", table.render());

    let (search, search_mismatches) = search_run(haystack_len, window, radius);
    mismatches += search_mismatches;
    let search_speedup = search.baseline_seconds / search.new_seconds;
    println!(
        "\nsubsequence search: haystack {} window {} radius {}: baseline {:.4}s, new {:.4}s ({:.2}x), prune {:.1}% -> {:.1}%",
        search.haystack_len,
        search.window,
        search.radius,
        search.baseline_seconds,
        search.new_seconds,
        search_speedup,
        search.baseline_prune_rate * 100.0,
        search.new_prune_rate * 100.0,
    );

    let payload = json(&rows, &search, mismatches, quick);
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/BENCH_kernels.json";
    std::fs::write(path, payload).expect("write bench json");
    println!("wrote {path}");

    if mismatches > 0 {
        eprintln!("\n{mismatches} identity mismatch(es) — the rework changed kernel values");
        std::process::exit(1);
    }
    if search_speedup < 2.0 {
        eprintln!(
            "\nsearch speedup gate FAILED: {search_speedup:.2}x < 2.0x over the pre-rework path"
        );
        std::process::exit(1);
    }
    println!("\nidentity gate passed; search speedup gate passed ({search_speedup:.2}x)");
}
