//! Fig. 6(b): accelerator runtime and speedup against an optimized CPU
//! implementation at the paper's sequence lengths (paper headline:
//! 20x-1000x, growing with length, smaller for the O(n) HamD/MD).

use mda_bench::runners::{run_fig6b, PAPER_LENGTHS};
use mda_bench::table::fmt_time;
use mda_bench::Table;
use mda_distance::DistanceKind;

fn main() {
    eprintln!("running fig6b at lengths {PAPER_LENGTHS:?} (CPU measured on this host) ...");
    let rows = run_fig6b(&PAPER_LENGTHS);

    println!("Fig. 6(b): accelerator vs CPU implementation\n");
    let mut t = Table::new(["function", "length", "CPU", "accelerator", "speedup"]);
    for row in &rows {
        t.row([
            row.kind.to_string(),
            row.length.to_string(),
            fmt_time(row.cpu_s),
            fmt_time(row.analog_s),
            format!("{:.0}x", row.speedup),
        ]);
    }
    println!("{t}");

    // Shape checks mirrored from the paper's discussion.
    let speedup = |kind: DistanceKind, len: usize| {
        rows.iter()
            .find(|r| r.kind == kind && r.length == len)
            .map(|r| r.speedup)
            .expect("row exists")
    };
    println!("Shape checks:");
    for kind in DistanceKind::ALL {
        let s10 = speedup(kind, 10);
        let s40 = speedup(kind, 40);
        println!(
            "  {kind}: speedup {s10:.0}x @10 -> {s40:.0}x @40 ({})",
            if s40 > s10 { "grows" } else { "flat/shrinks" }
        );
    }
    let dp40 = speedup(DistanceKind::Dtw, 40);
    let md40 = speedup(DistanceKind::Manhattan, 40);
    println!(
        "  O(n^2) vs O(n) at length 40: DTW {dp40:.0}x vs MD {md40:.0}x ({})",
        if dp40 > md40 {
            "DP functions benefit more, as in the paper"
        } else {
            "UNEXPECTED"
        }
    );
}
