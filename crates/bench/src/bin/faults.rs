//! Ablation: stuck-at fault tolerance of the row structure.
//!
//! Memristive fabrics suffer stuck-at-HRS/LRS cells. Because the paper's
//! data-mining use cases only need the *ranking* of candidates (Fig. 3's
//! early determination makes the same argument for time), a dead PE that
//! zeroes one element's contribution often leaves the nearest-neighbour
//! decision intact. This binary sweeps the number of injected faults and
//! reports how often the MD ranking survives.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mda_bench::Table;
use mda_core::analog::graph::builders;
use mda_core::analog::{AnalogEngine, ErrorModel};
use mda_core::AcceleratorConfig;

fn main() {
    let config = AcceleratorConfig::paper_defaults();
    let engine = AnalogEngine::new();
    let n = 16;
    let trials = 40;
    let mut rng = StdRng::seed_from_u64(0xfa17);

    let query: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).sin() * 2.0).collect();
    // Candidates at separated distances; candidate 0 is the true nearest.
    let offsets = [0.4, 1.2, 2.2];
    let candidates: Vec<Vec<f64>> = offsets
        .iter()
        .map(|&o| query.iter().map(|v| v + o).collect())
        .collect();
    let volts =
        |xs: &[f64]| -> Vec<f64> { xs.iter().map(|&x| config.value_to_voltage(x)).collect() };

    println!("Stuck-at fault sweep (MD, n = {n}, 3 candidates, {trials} trials)\n");
    let mut t = Table::new(["faults per array", "ranking preserved"]);
    for faults in [0usize, 1, 2, 4, 8] {
        let mut preserved = 0usize;
        for _ in 0..trials {
            let decoded: Vec<f64> = candidates
                .iter()
                .map(|c| {
                    let mut g = builders::manhattan(
                        &config,
                        &volts(&query),
                        &volts(c),
                        &vec![1.0; n],
                        &mut ErrorModel::new(config.noise_seed),
                    );
                    let modules = g.module_nodes();
                    for _ in 0..faults {
                        let victim = modules[rng.gen_range(0..modules.len())];
                        // Stuck-at-ground or stuck-at-Vstep-scale level.
                        let level = if rng.gen_bool(0.5) { 0.0 } else { 0.05 };
                        g.inject_stuck_fault(victim, level);
                    }
                    config.voltage_to_value(engine.simulate(&g).final_voltage)
                })
                .collect();
            let winner = decoded
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("non-empty");
            preserved += usize::from(winner == 0);
        }
        t.row([
            faults.to_string(),
            format!("{:.0}%", preserved as f64 / trials as f64 * 100.0),
        ]);
    }
    println!("{t}");
    println!(
        "Rankings tolerate scattered dead PEs because each one perturbs the sum\n\
         by at most its own element's contribution; dense faults eventually\n\
         collapse the margins (candidates here are separated by 0.8 units/elem)."
    );
}
