//! Fig. 5: convergence time and relative error of the six distance
//! functions vs sequence length, over the three (synthetic stand-in)
//! datasets.
//!
//! Usage: `fig5 [pairs_per_kind]` (default 5, matching the paper's 10
//! computations per dataset).

use mda_bench::runners::{run_fig5, PAPER_LENGTHS};
use mda_bench::table::fmt_time;
use mda_bench::Table;
use mda_distance::DistanceKind;

fn main() {
    let pairs_per_kind: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    eprintln!(
        "running fig5 sweep: lengths {PAPER_LENGTHS:?}, {} pairs per dataset/length ...",
        pairs_per_kind * 2
    );
    let rows = run_fig5(&PAPER_LENGTHS, pairs_per_kind);

    for kind in DistanceKind::ALL {
        println!("Fig. 5 ({kind}): convergence time and relative error\n");
        let mut t = Table::new([
            "dataset",
            "pair kind",
            "length",
            "convergence",
            "relative error",
            "pairs",
        ]);
        for row in rows.iter().filter(|r| r.kind == kind) {
            t.row([
                row.dataset.clone(),
                format!("{:?}", row.pair_kind),
                row.length.to_string(),
                fmt_time(row.mean_convergence_s),
                format!("{:.3}%", row.mean_relative_error * 100.0),
                row.pairs.to_string(),
            ]);
        }
        println!("{t}");
    }

    // The paper's headline observations, checked over the aggregate.
    let mean = |kind: DistanceKind, len: usize| {
        let v: Vec<f64> = rows
            .iter()
            .filter(|r| r.kind == kind && r.length == len)
            .map(|r| r.mean_convergence_s)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    println!("Shape checks:");
    for kind in DistanceKind::ALL {
        let ratio = mean(kind, 40) / mean(kind, 10);
        let shape = if ratio > 2.0 {
            "grows with length"
        } else {
            "~constant"
        };
        println!("  {kind}: t(40)/t(10) = {ratio:.2} ({shape})");
    }
}
