//! Streaming push-mode bench: the incremental operator DAG of
//! `mda-streaming` against a naive per-push batch recompute, plus the
//! differential identity gate and replay byte-stability.
//!
//! Three gates, all serial (one simulated accelerator host core):
//!
//! 1. **Differential identity (fatal)** — [`mda_streaming::check_series`]
//!    over a window/band sweep: every operator output (window, z-norm,
//!    envelope, cascade decision, motif/discord fold) must be **bitwise**
//!    equal to a from-scratch batch recomputation at every push. Any
//!    mismatch exits non-zero.
//! 2. **Incremental speedup (fatal)** — per-push wall-clock of the
//!    incremental pipeline vs the naive baseline: a *stateless* per-push
//!    batch recompute, the way a batch-API client would serve push-mode
//!    answers — fresh z-norm and envelope allocations, a cold `DpScratch`,
//!    and (carrying no state between pushes) no pruning certificate, so
//!    the full banded DTW runs at threshold ∞ on every push. The pipeline
//!    must be ≥ 5× faster at window 512. An untimed pass checks the two
//!    agree: every incremental certified bound is admissible against the
//!    naive exact distance, bitwise equal on computed epochs.
//! 3. **Replay byte-stability (fatal)** — two replays of one recording on
//!    the virtual clock must render byte-identical outcomes.
//!
//! Writes `results/BENCH_streaming.json`. `--quick` shrinks the workload
//! for CI; all three gates stay fatal in both modes.

use std::time::Instant;

use mda_bench::Table;
use mda_distance::lower_bounds::{cascading_dtw_with, envelope, PruneDecision};
use mda_distance::{znorm, DpScratch};
use mda_streaming::{
    certified_bound, check_series, replay, PruneFrameStats, ReplayConfig, ReplayOutcome,
    ReplaySpeed, StreamConfig, StreamPipeline, Value,
};

/// The speedup the incremental pipeline must hold over the naive
/// baseline at window [`GATE_WINDOW`].
const GATE_SPEEDUP: f64 = 5.0;
/// The window the speedup gate is judged at.
const GATE_WINDOW: usize = 512;

fn wave(i: usize, k: f64, amp: f64) -> f64 {
    (i as f64 * k).sin() * amp + (i as f64 * 0.013).cos() * 0.6
}

/// Random-walk-flavoured stream whose *opening window* is a distinctive
/// pattern, with the query cut from that opening — the steady-state
/// streaming motif-search regime: the very first warm push computes the
/// tight near-match, after which the carried pruning certificate settles
/// nearly every push in the O(1)/O(w) bound layers and the DP re-runs
/// only when a window genuinely threatens the record. The stateless
/// naive baseline, carrying no certificate, pays the full banded DTW on
/// every one of those same pushes.
fn workload(len: usize, window: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(len >= 3 * window, "stream too short to plant the query");
    let mut points: Vec<f64> = Vec::with_capacity(len);
    let mut level = 0.0f64;
    for i in 0..len {
        level += wave(i, 0.83, 0.35);
        points.push(level * 0.05 + wave(i, 0.19, 1.2));
    }
    // The planted pattern: a high-frequency burst with an amplitude the
    // ambient walk never reaches, anchored at an extreme first point so
    // non-overlapping windows die in the O(1) LB_Kim layer.
    for (j, slot) in points[..window].iter_mut().enumerate() {
        *slot = 4.0 * (j as f64 * 1.3).cos() + wave(j, 0.47, 0.3);
    }
    // The query is the plant under tiny jitter, so the folded-in
    // best-so-far is tight from the first warm push.
    let query: Vec<f64> = points[..window]
        .iter()
        .enumerate()
        .map(|(i, &v)| v + 0.002 * (i as f64 * 1.7).sin())
        .collect();
    (query, points)
}

/// Best-of-3 wall-clock of `f`, which must return a checksum-ish value so
/// the work cannot be optimized away.
fn best_of_3(mut f: impl FnMut() -> f64) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut out = 0.0;
    for _ in 0..3 {
        let start = Instant::now();
        out = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, out)
}

fn stream_config(window: usize, query: Vec<f64>) -> StreamConfig {
    StreamConfig {
        window,
        band: (window / 20).max(1), // the paper's 5% band, floor 1
        query,
        threshold: None,
    }
}

/// Gate 1: the differential identity sweep. Returns total gated pushes,
/// or the first mismatch rendered as a string.
fn identity_gate(quick: bool) -> Result<(usize, u64), String> {
    let windows: &[usize] = if quick {
        &[8, 64, GATE_WINDOW]
    } else {
        &[1, 2, 8, 64, 128, GATE_WINDOW]
    };
    let mut configs = 0usize;
    let mut pushes = 0u64;
    for &w in windows {
        let (query, points) = workload(3 * w + w / 2 + 7, w);
        for band in [0usize, (w / 20).max(1).min(w), w] {
            let config = StreamConfig {
                window: w,
                band,
                query: query.clone(),
                threshold: Some(25.0),
            };
            let report = check_series(&config, &points)
                .map_err(|e| format!("window {w} band {band}: {e}"))?;
            configs += 1;
            pushes += report.pushes;
        }
    }
    Ok((configs, pushes))
}

struct SpeedRow {
    window: usize,
    band: usize,
    points: usize,
    naive_seconds: f64,
    incremental_seconds: f64,
    cascade: PruneFrameStats,
    /// Untimed cross-check: every incremental certified bound admissible
    /// against the naive exact distance, bitwise equal on computed epochs.
    admissible: bool,
}

impl SpeedRow {
    fn speedup(&self) -> f64 {
        self.naive_seconds / self.incremental_seconds
    }
}

/// One push of the naive baseline: the batch paths over the current
/// window, the way a stateless batch-API client would serve a push-mode
/// answer — fresh allocations, a cold scratch, and (no carried state) no
/// pruning certificate, so the full banded DTW runs at threshold ∞.
fn naive_push(query: &[f64], win: &[f64], band: usize) -> f64 {
    let z = znorm::z_normalized(win);
    std::hint::black_box(&z);
    let env = envelope(win, band).expect("band <= window");
    std::hint::black_box(&env);
    match cascading_dtw_with(query, win, band, f64::INFINITY, &mut DpScratch::new())
        .expect("equal lengths")
    {
        PruneDecision::Computed(d) => d,
        other => unreachable!("threshold ∞ cannot prune: {other:?}"),
    }
}

/// Gate 2 measurement at one window: the incremental pipeline vs the
/// stateless per-push batch recompute.
fn speed_row(window: usize, len: usize) -> SpeedRow {
    let (query, points) = workload(len, window);
    let config = stream_config(window, query);
    let band = config.band;

    let mut cascade = PruneFrameStats::default();
    let (t_incr, _) = best_of_3(|| {
        let mut pipeline = StreamPipeline::new(config.clone()).expect("valid config");
        cascade = PruneFrameStats::default();
        let mut acc = 0.0;
        for &x in &points {
            let r = pipeline.push(x).expect("finite point");
            if let Some(Value::Match(mf)) = r.matcher.value() {
                cascade.record(mf.decision);
                acc += certified_bound(mf.decision, mf.threshold);
            }
        }
        acc
    });

    let (t_naive, _) = best_of_3(|| {
        let mut acc = 0.0;
        for end in window..=points.len() {
            acc += naive_push(&config.query, &points[end - window..end], band);
        }
        acc
    });

    // Untimed agreement pass: the incremental certified bound must never
    // exceed the naive exact distance, and computed epochs must agree
    // bitwise (both run the identical DP kernel to completion there).
    let mut admissible = true;
    let mut pipeline = StreamPipeline::new(config.clone()).expect("valid config");
    for (i, &x) in points.iter().enumerate() {
        let r = pipeline.push(x).expect("finite point");
        let Some(Value::Match(mf)) = r.matcher.value() else {
            continue;
        };
        let exact = naive_push(&config.query, &points[i + 1 - window..=i], band);
        let bound = certified_bound(mf.decision, mf.threshold);
        let ok = match mf.decision {
            PruneDecision::Computed(d) => d.to_bits() == exact.to_bits(),
            _ => bound <= exact,
        };
        if !ok {
            eprintln!(
                "ADMISSIBILITY VIOLATION at epoch {}: certified {bound} vs exact {exact} ({:?})",
                i + 1,
                mf.decision
            );
            admissible = false;
        }
    }

    SpeedRow {
        window,
        band,
        points: len,
        naive_seconds: t_naive,
        incremental_seconds: t_incr,
        cascade,
        admissible,
    }
}

/// Gate 3: two replays of one recording must render byte-identically.
fn replay_gate(quick: bool) -> (ReplayOutcome, bool) {
    let window = 128;
    let (query, points) = workload(if quick { 2048 } else { 8192 }, window);
    let config = stream_config(window, query);
    let rc = ReplayConfig {
        period_ns: 1_000_000,
        speed: ReplaySpeed::times(8).expect("nonzero"),
    };
    let first = replay(&config, &points, &rc).expect("finite recording");
    let second = replay(&config, &points, &rc).expect("finite recording");
    let stable = first == second && first.to_text() == second.to_text();
    (first, stable)
}

fn json(
    rows: &[SpeedRow],
    identity: &(usize, u64),
    replayed: &ReplayOutcome,
    replay_stable: bool,
    quick: bool,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!(
        concat!(
            "  \"identity\": {{\n",
            "    \"configs\": {},\n",
            "    \"pushes\": {},\n",
            "    \"mismatches\": 0\n",
            "  }},\n",
        ),
        identity.0, identity.1,
    ));
    s.push_str("  \"pipelines\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let warm = (r.points - r.window + 1) as f64;
        s.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"window\": {},\n",
                "      \"band\": {},\n",
                "      \"points\": {},\n",
                "      \"naive_seconds\": {:.6},\n",
                "      \"incremental_seconds\": {:.6},\n",
                "      \"naive_us_per_push\": {:.3},\n",
                "      \"incremental_us_per_push\": {:.3},\n",
                "      \"speedup\": {:.3},\n",
                "      \"admissible\": {},\n",
                "      \"cascade\": {{\n",
                "        \"computed\": {},\n",
                "        \"pruned_kim\": {},\n",
                "        \"pruned_keogh\": {},\n",
                "        \"abandoned\": {}\n",
                "      }}\n",
                "    }}{}\n",
            ),
            r.window,
            r.band,
            r.points,
            r.naive_seconds,
            r.incremental_seconds,
            r.naive_seconds * 1e6 / warm,
            r.incremental_seconds * 1e6 / warm,
            r.speedup(),
            r.admissible,
            r.cascade.computed,
            r.cascade.pruned_kim,
            r.cascade.pruned_keogh,
            r.cascade.abandoned,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        concat!(
            "  \"replay\": {{\n",
            "    \"pushes\": {},\n",
            "    \"warming\": {},\n",
            "    \"virtual_elapsed_ns\": {},\n",
            "    \"fingerprint\": \"{:016x}\",\n",
            "    \"byte_stable\": {}\n",
            "  }}\n",
        ),
        replayed.pushes,
        replayed.warming,
        replayed.virtual_elapsed_ns,
        replayed.fingerprint,
        replay_stable,
    ));
    s.push_str("}\n");
    s
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "streaming push-mode bench (serial){}\n",
        if quick { " — quick" } else { "" }
    );

    // Gate 1: differential identity.
    let identity = match identity_gate(quick) {
        Ok(counts) => {
            println!(
                "differential identity gate: {} configs, {} gated pushes, all bitwise",
                counts.0, counts.1
            );
            counts
        }
        Err(e) => {
            eprintln!("DIFFERENTIAL IDENTITY MISMATCH: {e}");
            std::process::exit(1);
        }
    };

    // Gate 2: incremental vs naive per-push recompute.
    let sweep: &[(usize, usize)] = if quick {
        &[(128, 2048), (GATE_WINDOW, 4096)]
    } else {
        &[(64, 8192), (128, 8192), (256, 8192), (GATE_WINDOW, 8192)]
    };
    let rows: Vec<SpeedRow> = sweep.iter().map(|&(w, n)| speed_row(w, n)).collect();

    let mut table = Table::new([
        "window",
        "band",
        "points",
        "naive us/push",
        "incr us/push",
        "speedup",
        "cascade (c/k/g/a)",
    ]);
    for r in &rows {
        let warm = (r.points - r.window + 1) as f64;
        table.row([
            r.window.to_string(),
            r.band.to_string(),
            r.points.to_string(),
            format!("{:.2}", r.naive_seconds * 1e6 / warm),
            format!("{:.2}", r.incremental_seconds * 1e6 / warm),
            format!("{:.2}x", r.speedup()),
            format!(
                "{}/{}/{}/{}",
                r.cascade.computed,
                r.cascade.pruned_kim,
                r.cascade.pruned_keogh,
                r.cascade.abandoned
            ),
        ]);
    }
    println!("\n{}", table.render());

    // Gate 3: replay byte-stability.
    let (replayed, replay_stable) = replay_gate(quick);
    println!(
        "replay: {} pushes, virtual {} ms, fingerprint {:016x}, byte-stable: {}",
        replayed.pushes,
        replayed.virtual_elapsed_ns / 1_000_000,
        replayed.fingerprint,
        replay_stable,
    );

    let payload = json(&rows, &identity, &replayed, replay_stable, quick);
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/BENCH_streaming.json";
    std::fs::write(path, payload).expect("write bench json");
    println!("wrote {path}");

    let mut failed = false;
    for r in &rows {
        if !r.admissible {
            eprintln!(
                "ADMISSIBILITY FAILURE at window {}: incremental bounds disagree with exact distances",
                r.window
            );
            failed = true;
        }
    }
    let gate_row = rows
        .iter()
        .find(|r| r.window == GATE_WINDOW)
        .expect("sweep includes the gate window");
    if gate_row.speedup() < GATE_SPEEDUP {
        eprintln!(
            "\nspeedup gate FAILED: {:.2}x < {GATE_SPEEDUP}x over naive per-push recompute at window {GATE_WINDOW}",
            gate_row.speedup()
        );
        failed = true;
    }
    if !replay_stable {
        eprintln!("\nreplay gate FAILED: two replays of one recording rendered differently");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "\nidentity gate passed; speedup gate passed ({:.2}x at window {GATE_WINDOW}); replay gate passed",
        gate_row.speedup()
    );
}
