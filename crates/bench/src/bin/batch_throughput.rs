//! Serial-vs-parallel throughput of the mining hot path on the
//! [`BatchEngine`]: the host-level counterpart of the paper's data-center
//! framing, where one simulated accelerator runs per core.
//!
//! Runs three representative workloads — 1-NN classification, motif
//! discovery and a streamed accelerator batch — once on a serial engine and
//! once per candidate thread count, verifies the results are **bitwise
//! identical** (the engine's core guarantee), and reports wall-clock
//! speedups. Exits non-zero on any result mismatch.
//!
//! On a multi-core host expect roughly linear speedup until the core count
//! is reached; on a single-core container the speedup column stays ~1.0x
//! while the identity checks still exercise the multi-threaded paths.
//!
//! With `--json`, additionally writes the measurements to
//! `results/BENCH_batch_throughput.json` (same pattern as
//! `spice_solver.rs`).

use std::time::Instant;

use mda_bench::Table;
use mda_core::{AcceleratorConfig, DistanceAccelerator};
use mda_distance::mining::{KnnClassifier, MotifDiscovery};
use mda_distance::{BatchEngine, DistanceKind, Dtw};

fn series(len: usize, seed: usize) -> Vec<f64> {
    (0..len)
        .map(|i| ((i + 7 * seed) as f64 * 0.31).sin() * 2.0 + (seed as f64 * 0.618).cos())
        .collect()
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

fn knn_labels(engine: BatchEngine, queries: &[Vec<f64>]) -> Vec<(usize, u64)> {
    let mut knn = KnnClassifier::new(Box::new(Dtw::new()), 1).with_engine(engine);
    for i in 0..60 {
        knn.fit(i % 3, series(96, i));
    }
    queries
        .iter()
        .map(|q| {
            let c = knn.classify(q).expect("well-formed inputs");
            (c.label, c.score.to_bits())
        })
        .collect()
}

fn motif_result(engine: BatchEngine, xs: &[f64]) -> (usize, usize, u64) {
    let m = MotifDiscovery::new(48, 4)
        .with_engine(engine)
        .find(xs)
        .expect("well-formed inputs");
    (m.first, m.second, m.distance.to_bits())
}

fn stream_report(engine: &BatchEngine, pairs: &[(Vec<f64>, Vec<f64>)]) -> (usize, u64, u64) {
    let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
    acc.configure(DistanceKind::Manhattan).expect("valid kind");
    let r = acc
        .run_stream_with(pairs, engine)
        .expect("well-formed pairs");
    (
        r.computations,
        r.analog_time_s.to_bits(),
        r.mean_relative_error.to_bits(),
    )
}

struct Measurement {
    workload: &'static str,
    threads: usize,
    serial_seconds: f64,
    parallel_seconds: f64,
    identical: bool,
}

fn json(cores: usize, measurements: &[Measurement]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"cores\": {cores},\n"));
    s.push_str("  \"measurements\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"workload\": \"{}\",\n",
                "      \"threads\": {},\n",
                "      \"serial_seconds\": {:.6},\n",
                "      \"parallel_seconds\": {:.6},\n",
                "      \"speedup\": {:.3},\n",
                "      \"identical\": {}\n",
                "    }}{}\n",
            ),
            m.workload,
            m.threads,
            m.serial_seconds,
            m.parallel_seconds,
            m.serial_seconds / m.parallel_seconds,
            m.identical,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let emit_json = std::env::args().any(|a| a == "--json");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let thread_counts: Vec<usize> = [2usize, 4, cores]
        .into_iter()
        .filter(|&t| t > 1)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();

    let queries: Vec<Vec<f64>> = (100..116).map(|s| series(96, s)).collect();
    let haystack: Vec<f64> = (0..700).flat_map(|s| series(2, s)).collect();
    let pairs: Vec<(Vec<f64>, Vec<f64>)> = (0..48)
        .map(|k| (series(24, k), series(24, k + 500)))
        .collect();

    println!("batch engine throughput — host has {cores} core(s)\n");
    let mut table = Table::new(["workload", "threads", "serial", "parallel", "speedup"]);
    let mut mismatches = 0usize;
    let mut measurements: Vec<Measurement> = Vec::new();

    let (knn_serial, t_knn_serial) = time(|| knn_labels(BatchEngine::serial(), &queries));
    let (motif_serial, t_motif_serial) = time(|| motif_result(BatchEngine::serial(), &haystack));
    let (stream_serial, t_stream_serial) = time(|| stream_report(&BatchEngine::serial(), &pairs));

    for &threads in &thread_counts {
        let engine = BatchEngine::serial().with_threads(threads);

        let (knn_par, t_knn) = time(|| knn_labels(engine.clone(), &queries));
        if knn_par != knn_serial {
            eprintln!("MISMATCH: kNN results differ at {threads} threads");
            mismatches += 1;
        }
        measurements.push(Measurement {
            workload: "knn_classify",
            threads,
            serial_seconds: t_knn_serial,
            parallel_seconds: t_knn,
            identical: knn_par == knn_serial,
        });
        table.row([
            "knn classify".into(),
            threads.to_string(),
            format!("{t_knn_serial:.3}s"),
            format!("{t_knn:.3}s"),
            format!("{:.2}x", t_knn_serial / t_knn),
        ]);

        let (motif_par, t_motif) = time(|| motif_result(engine.clone(), &haystack));
        if motif_par != motif_serial {
            eprintln!("MISMATCH: motif results differ at {threads} threads");
            mismatches += 1;
        }
        measurements.push(Measurement {
            workload: "motif_discovery",
            threads,
            serial_seconds: t_motif_serial,
            parallel_seconds: t_motif,
            identical: motif_par == motif_serial,
        });
        table.row([
            "motif discovery".into(),
            threads.to_string(),
            format!("{t_motif_serial:.3}s"),
            format!("{t_motif:.3}s"),
            format!("{:.2}x", t_motif_serial / t_motif),
        ]);

        let (stream_par, t_stream) = time(|| stream_report(&engine, &pairs));
        if stream_par != stream_serial {
            eprintln!("MISMATCH: stream reports differ at {threads} threads");
            mismatches += 1;
        }
        measurements.push(Measurement {
            workload: "accelerator_stream",
            threads,
            serial_seconds: t_stream_serial,
            parallel_seconds: t_stream,
            identical: stream_par == stream_serial,
        });
        table.row([
            "accelerator stream".into(),
            threads.to_string(),
            format!("{t_stream_serial:.3}s"),
            format!("{t_stream:.3}s"),
            format!("{:.2}x", t_stream_serial / t_stream),
        ]);
    }

    println!("{}", table.render());

    if emit_json {
        let payload = json(cores, &measurements);
        std::fs::create_dir_all("results").expect("create results dir");
        let path = "results/BENCH_batch_throughput.json";
        std::fs::write(path, payload).expect("write bench json");
        println!("\nwrote {path}");
    }

    if mismatches > 0 {
        eprintln!("\n{mismatches} result mismatch(es) across thread counts");
        std::process::exit(1);
    }
    println!("\nall parallel results bitwise-identical to serial");
}
