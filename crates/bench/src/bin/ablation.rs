//! Ablation: calibrates the behavioural analog engine against device-level
//! MNA simulation.
//!
//! For small circuits both fidelity levels are run on identical inputs:
//! the device level solves the full nonlinear MNA transient of the Fig. 2
//! netlists; the behavioural engine integrates first-order lags. The final
//! values must agree closely; the convergence-time ratio quantifies how
//! faithfully the lag model tracks true circuit dynamics.

use mda_bench::Table;
use mda_core::analog::graph::builders;
use mda_core::analog::{AnalogEngine, ErrorModel};
use mda_core::pe;
use mda_core::AcceleratorConfig;
use mda_distance::dtw::Band;
use mda_distance::{Distance, Dtw, Manhattan};

fn main() {
    let config = AcceleratorConfig::paper_defaults();
    let engine = AnalogEngine::new();
    let volts =
        |xs: &[f64]| -> Vec<f64> { xs.iter().map(|&x| config.value_to_voltage(x)).collect() };

    println!("Ablation: behavioural engine vs device-level MNA\n");
    let mut t = Table::new([
        "circuit",
        "digital ref",
        "device-level value",
        "behavioural value",
        "behavioural tconv",
    ]);

    // DTW 2x2.
    let p = [0.0, 2.0];
    let q = [1.0, 2.0];
    let reference = Dtw::new().evaluate(&p, &q).expect("valid");
    let device = pe::dtw::evaluate_dc(&config, &p, &q, 1.0).expect("device sim");
    let graph = builders::dtw(
        &config,
        &volts(&p),
        &volts(&q),
        1.0,
        Band::Full,
        &mut ErrorModel::new(config.noise_seed),
    );
    let sim = engine.simulate(&graph);
    t.row([
        "DTW 2x2".to_string(),
        format!("{reference:.3}"),
        format!("{device:.3}"),
        format!("{:.3}", config.voltage_to_value(sim.final_voltage)),
        format!("{:.2} ns", sim.convergence_time_s * 1.0e9),
    ]);

    // MD length 6.
    let p = [0.0, 2.0, -1.0, 0.5, 1.5, -0.5];
    let q = [1.0, 0.5, -0.5, 0.5, 0.0, 0.5];
    let reference = Manhattan::new().evaluate(&p, &q).expect("valid");
    let device = pe::manhattan::evaluate_dc(&config, &p, &q, &[1.0; 6]).expect("device sim");
    let graph = builders::manhattan(
        &config,
        &volts(&p),
        &volts(&q),
        &[1.0; 6],
        &mut ErrorModel::new(config.noise_seed),
    );
    let sim = engine.simulate(&graph);
    t.row([
        "MD n=6".to_string(),
        format!("{reference:.3}"),
        format!("{device:.3}"),
        format!("{:.3}", config.voltage_to_value(sim.final_voltage)),
        format!("{:.2} ns", sim.convergence_time_s * 1.0e9),
    ]);

    // HauD 2x3.
    let p = [0.0, 4.0];
    let q = [1.0, 3.5, 6.0];
    let reference = mda_distance::Hausdorff::new()
        .distance(&p, &q)
        .expect("valid");
    let device = pe::hausdorff::evaluate_dc(&config, &p, &q, 1.0).expect("device sim");
    let graph = builders::hausdorff(
        &config,
        &volts(&p),
        &volts(&q),
        1.0,
        &mut ErrorModel::new(config.noise_seed),
    );
    let sim = engine.simulate(&graph);
    t.row([
        "HauD 2x3".to_string(),
        format!("{reference:.3}"),
        format!("{device:.3}"),
        format!("{:.3}", config.voltage_to_value(sim.final_voltage)),
        format!("{:.2} ns", sim.convergence_time_s * 1.0e9),
    ]);

    println!("{t}");
    println!(
        "Both fidelity levels agree with the digital reference; the behavioural\n\
         engine additionally reports convergence dynamics at array scale where\n\
         full MNA (the paper's 20-hour SPICE runs) is impractical.\n"
    );

    // Device-level energy: run an MD row transient and integrate the energy
    // delivered by every source (rails + inputs). This is the memristor-
    // network share of the Section 4.3 power budget, measured rather than
    // estimated.
    use mda_spice::{TransientSpec, Waveform};
    let p = [1.0, 2.0, 0.5, 1.5];
    let q = [0.0, 0.0, 0.0, 0.0];
    let mut net = mda_spice::Netlist::new();
    let rails = mda_core::pe::Rails::install(
        &mut net,
        config.vcc,
        config.v_step,
        config.v_thre,
        config.nominal_resistance,
    );
    let mut sources = Vec::new();
    let mut pe_outputs = Vec::new();
    for (i, (&pv, &qv)) in p.iter().zip(&q).enumerate() {
        let pn = net.node(&format!("p{i}"));
        let ps = net.voltage_source(
            pn,
            mda_spice::Netlist::GROUND,
            Waveform::step(config.value_to_voltage(pv)),
        );
        let qn = net.node(&format!("q{i}"));
        let qs = net.voltage_source(
            qn,
            mda_spice::Netlist::GROUND,
            Waveform::step(config.value_to_voltage(qv)),
        );
        sources.push((ps, pn));
        sources.push((qs, qn));
        pe_outputs.push(mda_core::pe::manhattan::build_pe(
            &mut net, &rails, pn, qn, 1.0,
        ));
    }
    let out = mda_core::pe::common::analog_adder(&mut net, &rails, &pe_outputs, &[1.0; 4]);
    let duration = 5.0e-9;
    let result = net
        .transient(&TransientSpec::new(duration, 2.0e-12))
        .expect("device transient");
    let input_energy: f64 = sources
        .iter()
        .filter_map(|&(s, n)| result.source_energy(s, n, mda_spice::Netlist::GROUND))
        .sum();
    let final_md = config.voltage_to_value(result.voltage(out).last());
    println!(
        "Device-level MD row (n = 4) transient over {:.0} ns:",
        duration * 1e9
    );
    println!("  settled value: {final_md:.3} (digital 5.0)");
    println!(
        "  input-source energy: {:.3} fJ -> average {:.3} uW across the row's memristor network",
        input_energy * 1e15,
        input_energy / duration * 1e6
    );
    println!(
        "  (the Section 4.3 budget charges 10 uW per HRS memristor path at Vcc/2;\n\
         the measured draw at millivolt signal levels is far below that static\n\
         worst case, as expected)"
    );
}
