//! Ablation: accuracy vs analog component quality.
//!
//! Sweeps the error-model scale (0 = ideal components, 1 = nominal
//! sub-millivolt offsets, up to 4x) and reports the mean relative error of
//! each distance function at length 20 — quantifying how much zero-drift /
//! diode-drop budget the architecture tolerates before rankings degrade.

use mda_bench::Table;
use mda_core::analog::graph::builders;
use mda_core::analog::{AnalogEngine, ErrorModel};
use mda_core::AcceleratorConfig;
use mda_distance::dtw::Band;
use mda_distance::{Distance, DistanceKind, Dtw, Hamming, Hausdorff, Lcs, Manhattan};

fn main() {
    let config = AcceleratorConfig::paper_defaults();
    let engine = AnalogEngine::new();
    let n = 20;
    let p: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.4).sin() * 2.0).collect();
    let q: Vec<f64> = p
        .iter()
        .enumerate()
        .map(|(i, &v)| if i % 3 == 0 { v + 2.5 } else { v + 0.04 })
        .collect();
    let volts =
        |xs: &[f64]| -> Vec<f64> { xs.iter().map(|&x| config.value_to_voltage(x)).collect() };
    let thr = 0.5;
    let thr_v = config.value_to_voltage(thr);

    println!("Noise ablation: relative error vs analog offset scale (length {n})\n");
    let mut t = Table::new(["offset scale", "DTW", "LCS", "HauD", "HamD", "MD"]);
    for scale in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let mut errors = ErrorModel::new(config.noise_seed).with_scale(scale);
        let rel = |got: f64, want: f64| -> f64 {
            if want.abs() > 1e-9 {
                ((got - want) / want).abs()
            } else {
                got.abs()
            }
        };

        let g = builders::dtw(
            &config,
            &volts(&p),
            &volts(&q),
            1.0,
            Band::Full,
            &mut errors,
        );
        let dtw = rel(
            config.voltage_to_value(engine.simulate(&g).final_voltage),
            Dtw::new().evaluate(&p, &q).expect("valid"),
        );
        let g = builders::lcs(&config, &volts(&p), &volts(&q), thr_v, 1.0, &mut errors);
        let lcs = rel(
            engine.simulate(&g).final_voltage / config.v_step,
            Lcs::new(thr).similarity(&p, &q).expect("valid"),
        );
        let g = builders::hausdorff(&config, &volts(&p), &volts(&q), 1.0, &mut errors);
        let haud = rel(
            config.voltage_to_value(engine.simulate(&g).final_voltage),
            Hausdorff::new().distance(&p, &q).expect("valid"),
        );
        let w = vec![1.0; n];
        let g = builders::hamming(&config, &volts(&p), &volts(&q), thr_v, &w, &mut errors);
        let hamd = rel(
            engine.simulate(&g).final_voltage / config.v_step,
            Hamming::new(thr).distance(&p, &q).expect("valid"),
        );
        let g = builders::manhattan(&config, &volts(&p), &volts(&q), &w, &mut errors);
        let md = rel(
            config.voltage_to_value(engine.simulate(&g).final_voltage),
            Manhattan::new().evaluate(&p, &q).expect("valid"),
        );

        t.row([
            format!("{scale:.1}x"),
            format!("{:.2}%", dtw * 100.0),
            format!("{:.2}%", lcs * 100.0),
            format!("{:.2}%", haud * 100.0),
            format!("{:.2}%", hamd * 100.0),
            format!("{:.2}%", md * 100.0),
        ]);
        let _ = DistanceKind::Edit; // EdD tracks DTW (same min modules); omitted for brevity
    }
    println!("{t}");
    println!(
        "At scale 0 the residual error is pure converter quantization; growth\n\
         with scale shows each function's sensitivity to op-amp zero drift and\n\
         diode drops (largest for the DTW/EdD minimum modules, as in the paper)."
    );
}
