//! Data-center throughput analysis: the paper's motivating scenario of
//! serving continuous IoT distance workloads.
//!
//! Streams batches of comparisons through each accelerator configuration
//! and reports served element throughput, energy per computation (power
//! budget × analog busy time) and the CPU equivalent.

use mda_bench::cpu::measure_cpu_time;
use mda_bench::Table;
use mda_core::accelerator::FunctionParams;
use mda_core::{AcceleratorConfig, DistanceAccelerator};
use mda_distance::DistanceKind;
use mda_power::baselines::cpu_reference;
use mda_power::budget::PowerBudget;

fn main() {
    let n = 32;
    let stream: Vec<(Vec<f64>, Vec<f64>)> = (0..16)
        .map(|k| {
            let p: Vec<f64> = (0..n)
                .map(|i| ((i + k) as f64 * 0.37).sin() * 2.0)
                .collect();
            let q: Vec<f64> = p
                .iter()
                .enumerate()
                .map(|(i, &v)| if i % 3 == 0 { v + 2.0 } else { v + 0.05 })
                .collect();
            (p, q)
        })
        .collect();

    let cpu = cpu_reference();
    println!(
        "Streaming throughput, {} comparisons of length {n} per configuration\n",
        stream.len()
    );
    let mut t = Table::new([
        "function",
        "analog busy time",
        "elements/s",
        "energy/comparison",
        "CPU time (host)",
        "CPU energy/comparison",
    ]);
    for kind in DistanceKind::ALL {
        let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
        acc.configure_with(
            kind,
            FunctionParams {
                threshold: 0.5,
                ..FunctionParams::default()
            },
        )
        .expect("valid configuration");
        let report = acc.run_stream(&stream).expect("valid stream");
        let power_w = PowerBudget::paper_operating_point(kind).total_w();
        let energy_per_comp = power_w * report.analog_time_s / report.computations as f64;

        let cpu_time = measure_cpu_time(kind, &stream[0].0, &stream[0].1, 15);
        let cpu_energy = cpu.power_w * cpu_time;

        t.row([
            kind.to_string(),
            format!("{:.1} ns", report.analog_time_s * 1.0e9),
            format!("{:.2e}", report.elements_per_second()),
            format!("{:.2} pJ", energy_per_comp * 1.0e12),
            format!("{:.2} us", cpu_time * 1.0e6),
            format!("{:.2} uJ", cpu_energy * 1.0e6),
        ]);
    }
    println!("{t}");
    println!(
        "Analog energy per comparison sits in picojoules against the CPU's\n\
         microjoules — the 4-6 orders of magnitude that make the paper's\n\
         data-center pitch (continuous IoT mining) viable."
    );
}
