//! Section 4.3: per-configuration power budgets and energy-efficiency
//! comparison (paper headline: 1-3 orders of magnitude, 26.7x-8767x).
//!
//! Usage: `power_table [n]` (array size for the per-element timing; default
//! 128).

use mda_bench::runners::run_power_table;
use mda_bench::Table;
use mda_core::AcceleratorConfig;
use mda_distance::DistanceKind;
use mda_power::budget::{PowerBudget, PAPER_ELEMENT_RATE};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(128);
    eprintln!("running power analysis at array size {n} ...");

    println!("Power breakdown per configuration (128-PE array, 6.5 GS/s interface)\n");
    let budget = PowerBudget::new(AcceleratorConfig::paper_defaults());
    let mut t = Table::new([
        "function",
        "op-amps",
        "memristors",
        "DAC",
        "ADC",
        "total",
        "paper",
    ]);
    for kind in DistanceKind::ALL {
        let b = budget.breakdown(kind, 128, PAPER_ELEMENT_RATE);
        t.row([
            kind.to_string(),
            format!("{:.2} W", b.opamps_w),
            format!("{:.2} W", b.memristors_w),
            format!("{:.2} W", b.dac_w),
            format!("{:.3} W", b.adc_w),
            format!("{:.2} W", b.total_w()),
            format!("{:.2} W", mda_power::budget::paper_reported_power(kind)),
        ]);
    }
    println!("{t}");

    println!("Energy-efficiency comparison\n");
    let rows = run_power_table(n);
    let mut t = Table::new([
        "function",
        "baseline",
        "baseline power",
        "ours power",
        "speedup",
        "efficiency gain",
    ]);
    let mut min_gain = f64::INFINITY;
    let mut max_gain = 0.0f64;
    for row in &rows {
        t.row([
            row.kind.to_string(),
            row.platform.to_string(),
            format!("{:.1} W", row.baseline_w),
            format!("{:.2} W", row.ours_w),
            format!("{:.1}x", row.speedup),
            format!("{:.0}x", row.efficiency_gain),
        ]);
        min_gain = min_gain.min(row.efficiency_gain);
        max_gain = max_gain.max(row.efficiency_gain);
    }
    println!("{t}");
    println!("Efficiency gain range: {min_gain:.0}x - {max_gain:.0}x  (paper: 26.7x - 8767x)");
}
