//! aCAM one-shot matching bench: drives the match plane's three promises
//! over a seeded sweep and gates all of them fatally:
//!
//! 1. **zero false rejects** — every window the aCAM pre-filter rejects is
//!    recomputed with the full banded DTW and must sit strictly above the
//!    programmed threshold, for the tuned, variation-widened and
//!    fault-seeded arrays alike (faults may only widen acceptance);
//! 2. **bitwise identity** — subsequence search and kNN classification
//!    with the pre-filter installed reproduce the unfiltered runs bit for
//!    bit (offsets, distances, labels, scores), and the one-shot
//!    evaluation of the thresholded kinds (HamD, thresholded EdD/LCS)
//!    equals the digital kernels bitwise;
//! 3. **the filter earns its keep** — the tuned array rejects a real
//!    fraction of hostile windows in one match-line cycle each, and the
//!    match plane's modeled draw undercuts both the DP fabric and the
//!    digital host on the kinds it serves.
//!
//! ```text
//! acam [--quick] [--seed N]
//! ```
//!
//! Writes `results/BENCH_acam.json`.

use std::sync::Arc;

use mda_acam::{AcamPrefilter, FaultPlan, MarginPolicy, OneShotMatcher};
use mda_distance::dtw::Band;
use mda_distance::mining::prefilter::CandidateFilter;
use mda_distance::mining::{KnnClassifier, SubsequenceSearch};
use mda_distance::{Distance, DistanceKind, Dtw, EditDistance, Hamming, Lcs};
use mda_routing::{default_backends, BackendId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn policies() -> Vec<(&'static str, Arc<dyn CandidateFilter>)> {
    vec![
        ("tuned", Arc::new(AcamPrefilter::tuned())),
        (
            "variation",
            Arc::new(AcamPrefilter::new(MarginPolicy::paper_defaults(17))),
        ),
        (
            "faulty",
            Arc::new(
                AcamPrefilter::tuned().with_fault_plan(FaultPlan::Seeded { seed: 5, rate: 0.2 }),
            ),
        ),
    ]
}

/// A hostile haystack: far-field level with a few planted near-copies of
/// the query, so the match line has something real to reject.
fn hostile_haystack(query: &[f64], len: usize, rng: &mut StdRng) -> Vec<f64> {
    let mut hay: Vec<f64> = (0..len).map(|_| 7.0 + rng.gen_range(-0.5..0.5)).collect();
    for _ in 0..3 {
        let at = rng.gen_range(0..len - query.len());
        for (i, &v) in query.iter().enumerate() {
            hay[at + i] = v + rng.gen_range(-0.05..0.05);
        }
    }
    hay
}

fn walk_query(len: usize, rng: &mut StdRng) -> Vec<f64> {
    let mut level = rng.gen_range(-1.0..1.0);
    (0..len)
        .map(|_| {
            level += rng.gen_range(-0.4..0.4);
            level
        })
        .collect()
}

fn main() {
    let mut quick = false;
    let mut seed: u64 = 0xAC4A;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = it
                    .next()
                    .expect("--seed needs N")
                    .parse()
                    .expect("--seed must be a number");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let (sweeps, hay_len, window) = if quick { (4, 512, 24) } else { (12, 2048, 48) };
    let radius = 4usize;
    println!("acam bench: {sweeps} sweeps, haystack {hay_len}, window {window} (seed {seed})");

    let mut failed = false;
    let mut false_rejects = 0u64;
    let mut rejected_total = 0u64;
    let mut search_mismatches = 0u64;
    let mut tuned_windows = 0u64;
    let mut tuned_prefilter_pruned = 0u64;

    // ---- Gate 1 + 2a: admissibility and search identity over the sweep.
    for s in 0..sweeps {
        let mut rng = StdRng::seed_from_u64(seed ^ (s as u64).wrapping_mul(0x9E37_79B9));
        let query = walk_query(window, &mut rng);
        let hay = hostile_haystack(&query, hay_len, &mut rng);

        let baseline = SubsequenceSearch::new(window, radius);
        let (best, _) = baseline.run(&query, &hay).expect("baseline search");

        for (name, filter) in policies() {
            // Admissibility, checked against the brute instrument: program
            // the filter at the final best distance (the tightest threshold
            // the cascade ever holds) and recompute every rejected window's
            // banded DTW in full.
            if let Some(predicate) =
                filter.program(DistanceKind::Dtw, &query, radius, best.distance)
            {
                let dtw = Dtw::new().with_band(Band::SakoeChiba(radius));
                for offset in 0..=(hay.len() - window) {
                    let w = &hay[offset..offset + window];
                    if predicate.admit(w) {
                        continue;
                    }
                    rejected_total += 1;
                    let exact = dtw.evaluate(&query, w).expect("banded DTW");
                    if exact <= best.distance {
                        false_rejects += 1;
                        eprintln!(
                            "FALSE REJECT [{name}] sweep {s} offset {offset}: \
                             DTW {exact} <= threshold {}",
                            best.distance
                        );
                    }
                }
            }

            // End-to-end identity under the same policy.
            let filtered = SubsequenceSearch::new(window, radius).with_prefilter(filter);
            let (fbest, fstats) = filtered.run(&query, &hay).expect("filtered search");
            if fbest.offset != best.offset || fbest.distance.to_bits() != best.distance.to_bits() {
                search_mismatches += 1;
                eprintln!(
                    "SEARCH MISMATCH [{name}] sweep {s}: {}@{} vs {}@{}",
                    fbest.distance, fbest.offset, best.distance, best.offset
                );
            }
            if name == "tuned" {
                tuned_windows += fstats.windows as u64;
                tuned_prefilter_pruned += fstats.pruned_by_prefilter as u64;
            }
        }
    }
    let prune_rate = tuned_prefilter_pruned as f64 / tuned_windows.max(1) as f64;

    // ---- Gate 2b: kNN identity.
    let mut knn_mismatches = 0u64;
    {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD15C);
        let train_n = if quick { 18 } else { 36 };
        let series_len = if quick { 16 } else { 24 };
        let train: Vec<(usize, Vec<f64>)> = (0..train_n)
            .map(|t| (t % 3, walk_query(series_len, &mut rng)))
            .collect();
        let queries: Vec<Vec<f64>> = (0..6).map(|_| walk_query(series_len, &mut rng)).collect();
        for k in [1usize, 3, 5] {
            let mut plain = KnnClassifier::new(Box::new(Dtw::new()), k);
            plain.fit_all(train.clone());
            for (name, _) in policies() {
                let filter: Box<dyn CandidateFilter> = match name {
                    "tuned" => Box::new(AcamPrefilter::tuned()),
                    "variation" => Box::new(AcamPrefilter::new(MarginPolicy::paper_defaults(17))),
                    _ => Box::new(
                        AcamPrefilter::tuned()
                            .with_fault_plan(FaultPlan::Seeded { seed: 5, rate: 0.2 }),
                    ),
                };
                let mut filtered =
                    KnnClassifier::new(Box::new(Dtw::new()), k).with_candidate_filter(filter);
                filtered.fit_all(train.clone());
                for q in &queries {
                    let a = plain.classify(q).expect("plain classify");
                    let b = filtered.classify(q).expect("filtered classify");
                    if a.label != b.label
                        || a.nearest_index != b.nearest_index
                        || a.score.to_bits() != b.score.to_bits()
                    {
                        knn_mismatches += 1;
                        eprintln!("KNN MISMATCH [{name}] k={k}");
                    }
                }
            }
        }
    }

    // ---- Gate 2c: one-shot identity on the thresholded kinds.
    let mut one_shot_mismatches = 0u64;
    let mut one_shot_checks = 0u64;
    {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0415);
        let pairs = if quick { 40 } else { 160 };
        for _ in 0..pairs {
            let len = rng.gen_range(1..20u64) as usize;
            let p = walk_query(len, &mut rng);
            let q = walk_query(len, &mut rng);
            for threshold in [0.1, 0.5] {
                let matcher = OneShotMatcher::new(threshold);
                for kind in [DistanceKind::Hamming, DistanceKind::Edit, DistanceKind::Lcs] {
                    let kernel: Box<dyn Distance> = match kind {
                        DistanceKind::Hamming => Box::new(Hamming::new(threshold)),
                        DistanceKind::Edit => Box::new(EditDistance::new(threshold)),
                        _ => Box::new(Lcs::new(threshold)),
                    };
                    let digital = kernel.evaluate(&p, &q).expect("digital kernel");
                    let one_shot = matcher.evaluate(kind, &p, &q).expect("one-shot");
                    one_shot_checks += 1;
                    if one_shot.to_bits() != digital.to_bits() {
                        one_shot_mismatches += 1;
                        eprintln!(
                            "ONE-SHOT MISMATCH {kind} t={threshold}: {one_shot} vs {digital}"
                        );
                    }
                }
            }
        }
    }

    // ---- Gate 3: modeled power deltas on the kinds the plane serves.
    let backends = default_backends();
    let power_len = 128usize;
    let mut acam_w_sum = 0.0;
    let mut analog_w_sum = 0.0;
    for kind in [DistanceKind::Hamming, DistanceKind::Edit, DistanceKind::Lcs] {
        acam_w_sum += backends.get(BackendId::Acam).power_w(kind, power_len);
        analog_w_sum += backends.get(BackendId::Analog).power_w(kind, power_len);
    }
    let digital_w = backends
        .get(BackendId::DigitalExact)
        .power_w(DistanceKind::Hamming, power_len);
    let acam_w = acam_w_sum / 3.0;
    let analog_w = analog_w_sum / 3.0;

    println!("  rejected windows: {rejected_total} | false rejects: {false_rejects}");
    println!(
        "  tuned prune rate: {:.1}% of {tuned_windows} windows",
        prune_rate * 100.0
    );
    println!(
        "  identity: search mismatches {search_mismatches}, knn mismatches {knn_mismatches}, \
         one-shot mismatches {one_shot_mismatches}/{one_shot_checks}"
    );
    println!(
        "  modeled power (thresholded kinds, n={power_len}): acam {acam_w:.3} W vs analog \
         {analog_w:.3} W vs digital {digital_w:.1} W"
    );

    let payload = format!(
        concat!(
            "{{\n",
            "  \"quick\": {},\n",
            "  \"seed\": {},\n",
            "  \"sweeps\": {},\n",
            "  \"haystack_len\": {},\n",
            "  \"window\": {},\n",
            "  \"rejected_windows\": {},\n",
            "  \"false_rejects\": {},\n",
            "  \"tuned_windows\": {},\n",
            "  \"tuned_prefilter_pruned\": {},\n",
            "  \"tuned_prune_rate\": {:.4},\n",
            "  \"search_mismatches\": {},\n",
            "  \"knn_mismatches\": {},\n",
            "  \"one_shot_checks\": {},\n",
            "  \"one_shot_mismatches\": {},\n",
            "  \"acam_watts\": {:.4},\n",
            "  \"analog_watts\": {:.4},\n",
            "  \"digital_watts\": {:.4},\n",
            "  \"acam_vs_analog_power_ratio\": {:.4}\n",
            "}}\n",
        ),
        quick,
        seed,
        sweeps,
        hay_len,
        window,
        rejected_total,
        false_rejects,
        tuned_windows,
        tuned_prefilter_pruned,
        prune_rate,
        search_mismatches,
        knn_mismatches,
        one_shot_checks,
        one_shot_mismatches,
        acam_w,
        analog_w,
        digital_w,
        acam_w / analog_w,
    );
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/BENCH_acam.json";
    std::fs::write(path, payload).expect("write bench json");
    println!("wrote {path}");

    // Gates — all fatal: admissibility and identity are contracts, not
    // aspirations.
    if false_rejects > 0 {
        eprintln!("GATE: {false_rejects} false reject(s) — the match line broke admissibility");
        failed = true;
    }
    if search_mismatches > 0 || knn_mismatches > 0 {
        eprintln!(
            "GATE: filtered mining diverged from baseline ({search_mismatches} search, \
             {knn_mismatches} knn)"
        );
        failed = true;
    }
    if one_shot_mismatches > 0 {
        eprintln!(
            "GATE: {one_shot_mismatches} one-shot value(s) diverged from the digital kernels"
        );
        failed = true;
    }
    if rejected_total == 0 || prune_rate <= 0.0 {
        eprintln!("GATE: the match line never rejected a window — the filter proved nothing");
        failed = true;
    }
    if acam_w >= analog_w || acam_w >= digital_w {
        eprintln!(
            "GATE: match plane modeled at {acam_w:.3} W — not below analog {analog_w:.3} W \
             and digital {digital_w:.1} W"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "acam gates: zero false rejects, bitwise identity, real pruning, power saving — all pass"
    );
}
