//! Ablation: impact of process variation on solution quality and the two
//! mitigations of Section 3.3(3) — tolerance-control layout and
//! post-fabrication resistance tuning.
//!
//! A weighted Manhattan distance is computed with its adder ratios
//! (`M0/Mk = w_k`) perturbed three ways: raw ±25 % fabrication spread,
//! matched-pair layout (<1 % ratio mismatch), and the full tuning loop.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mda_bench::Table;
use mda_core::analog::graph::builders;
use mda_core::analog::{AnalogEngine, ErrorModel};
use mda_core::{AcceleratorConfig, ConfigurationLib};
use mda_distance::{Distance, DistanceKind, Manhattan, Weights};
use mda_memristor::{pair_with_tolerance_control, ProcessVariation};

fn weighted_md_error(config: &AcceleratorConfig, weights: &[f64], intended: &[f64]) -> f64 {
    // Fixed probe pair; the weights carry the perturbation under test.
    let p: Vec<f64> = (0..weights.len())
        .map(|i| (i as f64 * 0.7).sin() * 2.0)
        .collect();
    let q: Vec<f64> = (0..weights.len())
        .map(|i| (i as f64 * 0.7 + 1.0).sin() * 2.0)
        .collect();
    let reference = Manhattan::new()
        .with_weights(Weights::per_element(intended.to_vec()).expect("valid"))
        .evaluate(&p, &q)
        .expect("valid");
    let volts =
        |xs: &[f64]| -> Vec<f64> { xs.iter().map(|&x| config.value_to_voltage(x)).collect() };
    let graph = builders::manhattan(
        config,
        &volts(&p),
        &volts(&q),
        weights,
        &mut ErrorModel::ideal(), // isolate the ratio error from other noise
    );
    let got = config.voltage_to_value(AnalogEngine::new().simulate(&graph).final_voltage);
    ((got - reference) / reference).abs()
}

fn main() {
    let config = AcceleratorConfig::paper_defaults();
    let variation = ProcessVariation::paper_defaults();
    let lib = ConfigurationLib::paper_library();
    let mut rng = StdRng::seed_from_u64(2017);
    let n = 16;
    let intended: Vec<f64> = (0..n).map(|i| 0.6 + 0.05 * i as f64).collect();

    // 1. Raw fabrication spread: each ratio is two independent ±25 % draws.
    let untuned: Vec<f64> = intended
        .iter()
        .map(|&w| {
            use rand::Rng;
            let a = variation.sample(30.0e3, &mut rng);
            let b = variation.sample(30.0e3 / w, &mut rng);
            let _ = rng.gen::<bool>();
            a / b // realised M0/Mk ratio
        })
        .collect();

    // 2. Tolerance-control layout: matched pairs, ratio mismatch < 1 %.
    let matched: Vec<f64> = intended
        .iter()
        .map(|&w| {
            let (a, b, _) = pair_with_tolerance_control(&variation, 30.0e3, 30.0e3 / w, &mut rng);
            a / b
        })
        .collect();

    // 3. Full resistance tuning via the configuration library.
    let cfg = lib.configuration(DistanceKind::Manhattan);
    let tuned: Vec<f64> = intended
        .iter()
        .map(|&w| cfg.program_weight(w, &mut rng).expect("programmable ratio")[0].achieved)
        .collect();

    let ratio_err = |ws: &[f64]| -> f64 {
        ws.iter()
            .zip(&intended)
            .map(|(got, want)| (got / want - 1.0).abs())
            .fold(0.0f64, f64::max)
    };

    println!("Process-variation ablation (weighted MD, n = {n})\n");
    let mut t = Table::new(["configuration", "worst ratio error", "distance error"]);
    for (label, ws) in [
        ("as-fabricated (±25%)", &untuned),
        ("tolerance control", &matched),
        ("resistance tuning", &tuned),
    ] {
        t.row([
            label.to_string(),
            format!("{:.2}%", ratio_err(ws) * 100.0),
            format!("{:.2}%", weighted_md_error(&config, ws, &intended) * 100.0),
        ]);
    }
    println!("{t}");
    println!(
        "Section 3.3(3): \"the solution quality is only the ratio of memristors\" —\n\
         tolerance control and tuning both push the ratio (and hence distance)\n\
         error to the ~1% level despite the ±25% fabrication spread."
    );
}
