//! Wall-clock benchmark of the structure-caching SPICE solver core against
//! the frozen legacy path (`mda_spice::legacy`), with an identity gate.
//!
//! Three netlists spanning the solver's regimes:
//!
//! * **pe_cell** — a single DTW processing element (Fig. 2(a)), the dense
//!   backend's everyday workload;
//! * **diode_chain** — a 40-stage diode maximum-selection chain, dense and
//!   heavily nonlinear (Newton does real work every step);
//! * **array_40x40** — a 40 × 40 memristive array with drivers and
//!   per-node parasitics (~1700 unknowns), the sparse backend at the
//!   array scale the paper's accelerator actually runs at.
//!
//! Each netlist is run once through the legacy solver and once through the
//! new core on an identical transient spec. Traces must agree to ≤ 1e-12
//! relative; any deviation beyond that exits non-zero. Wall-clock times,
//! speedups and the new core's [`SolveStats`] land in
//! `results/BENCH_spice_solver.json`.
//!
//! Pass `--quick` (CI smoke mode) to shorten the transients; the identity
//! gate is identical in both modes.

use std::time::Instant;

use mda_core::{pe, AcceleratorConfig};
use mda_spice::{legacy, Netlist, SolveStats, TransientResult, TransientSpec, Waveform};

const TOL: f64 = 1.0e-12;

struct Case {
    name: &'static str,
    net: Netlist,
    spec: TransientSpec,
}

struct Outcome {
    name: &'static str,
    steps: usize,
    legacy_seconds: f64,
    new_seconds: f64,
    max_rel_dev: f64,
    stats: SolveStats,
}

fn pe_cell(quick: bool) -> Case {
    let config = AcceleratorConfig::paper_defaults();
    let (net, _) = pe::dtw::build_matrix(&config, &[1.5], &[0.5], 1.0).expect("in-range inputs");
    let stop = if quick { 0.2e-9 } else { 1.0e-9 };
    Case {
        name: "pe_cell",
        net,
        spec: TransientSpec::new(stop, 2.0e-12).from_dc(),
    }
}

fn diode_chain(quick: bool) -> Case {
    let mut net = Netlist::new();
    let mut stage_out = Netlist::GROUND;
    for s in 0..40 {
        let src = net.node(&format!("src{s}"));
        let out = net.node(&format!("out{s}"));
        let level = 0.05 + 0.01 * s as f64;
        net.voltage_source(src, Netlist::GROUND, Waveform::step_at(level, 1.0e-9));
        net.diode(src, out);
        if s > 0 {
            net.diode(stage_out, out);
        }
        net.resistor(out, Netlist::GROUND, 100.0e3);
        net.capacitor(out, Netlist::GROUND, 10.0e-15);
        stage_out = out;
    }
    let stop = if quick { 8.0e-9 } else { 40.0e-9 };
    Case {
        name: "diode_chain",
        net,
        spec: TransientSpec::new(stop, 20.0e-12),
    }
}

fn array_40x40(quick: bool) -> Case {
    let mut net = Netlist::new();
    let n = 40usize;
    let mut nodes = Vec::with_capacity(n * n);
    for r in 0..n {
        for c in 0..n {
            nodes.push(net.node(&format!("a{r}_{c}")));
        }
    }
    let at = |r: usize, c: usize| nodes[r * n + c];
    for r in 0..n {
        let drv = net.node(&format!("drv{r}"));
        net.voltage_source(drv, Netlist::GROUND, Waveform::step(0.2 + 0.002 * r as f64));
        net.resistor(drv, at(r, 0), 1.0e3);
        net.resistor(at(r, n - 1), Netlist::GROUND, 10.0e3);
    }
    // Deterministic resistance spread in the paper's 1 kΩ–100 kΩ tuning
    // range; well-conditioned so legacy and new traces agree to 1e-12.
    for r in 0..n {
        for c in 0..n {
            let ohms = 1.0e3 + 99.0e3 * ((r * 31 + c * 17) % 97) as f64 / 96.0;
            if c + 1 < n {
                net.memristor(at(r, c), at(r, c + 1), ohms);
            }
            if r + 1 < n {
                net.memristor(at(r, c), at(r + 1, c), ohms + 500.0);
            }
            net.capacitor(at(r, c), Netlist::GROUND, 20.0e-15);
        }
    }
    let stop = if quick { 0.2e-9 } else { 1.0e-9 };
    Case {
        name: "array_40x40",
        net,
        spec: TransientSpec::new(stop, 10.0e-12),
    }
}

/// Largest relative deviation between two runs across all samples.
fn max_rel_dev(a: &TransientResult, b: &TransientResult) -> f64 {
    let mut worst = 0.0f64;
    let pairs = [
        (a.voltages_flat(), b.voltages_flat()),
        (a.currents_flat(), b.currents_flat()),
    ];
    for (xs, ys) in pairs {
        assert_eq!(xs.len(), ys.len(), "runs recorded different shapes");
        for (&x, &y) in xs.iter().zip(ys) {
            worst = worst.max((x - y).abs() / x.abs().max(1.0));
        }
    }
    worst
}

fn run_case(case: &Case) -> Outcome {
    let start = Instant::now();
    let reference = legacy::run_transient(&case.net, &case.spec).expect("legacy run");
    let legacy_seconds = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let new = case.net.transient(&case.spec).expect("new-core run");
    let new_seconds = start.elapsed().as_secs_f64();

    Outcome {
        name: case.name,
        steps: new.len() - 1,
        legacy_seconds,
        new_seconds,
        max_rel_dev: max_rel_dev(&reference, &new),
        stats: new.stats().clone(),
    }
}

fn json(outcomes: &[Outcome], quick: bool) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"tolerance\": {TOL:e},\n"));
    s.push_str("  \"cases\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let st = &o.stats;
        s.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"steps\": {},\n",
                "      \"legacy_seconds\": {:.6},\n",
                "      \"new_seconds\": {:.6},\n",
                "      \"speedup\": {:.2},\n",
                "      \"max_rel_dev\": {:e},\n",
                "      \"stats\": {{\n",
                "        \"n_unknowns\": {},\n",
                "        \"base_nnz\": {},\n",
                "        \"factor_nnz\": {},\n",
                "        \"fill_ratio\": {:.3},\n",
                "        \"solve_points\": {},\n",
                "        \"newton_iterations\": {},\n",
                "        \"full_factorizations\": {},\n",
                "        \"refactorizations\": {},\n",
                "        \"factor_reuses\": {},\n",
                "        \"residual_fallbacks\": {},\n",
                "        \"assembly_seconds\": {:.6},\n",
                "        \"factor_seconds\": {:.6},\n",
                "        \"solve_seconds\": {:.6}\n",
                "      }}\n",
                "    }}{}\n",
            ),
            o.name,
            o.steps,
            o.legacy_seconds,
            o.new_seconds,
            o.legacy_seconds / o.new_seconds,
            o.max_rel_dev,
            st.n_unknowns,
            st.base_nnz,
            st.factor_nnz,
            st.fill_ratio(),
            st.solve_points,
            st.newton_iterations,
            st.full_factorizations,
            st.refactorizations,
            st.factor_reuses,
            st.residual_fallbacks,
            st.assembly_seconds,
            st.factor_seconds,
            st.solve_seconds,
            if i + 1 < outcomes.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cases = [pe_cell(quick), diode_chain(quick), array_40x40(quick)];

    println!(
        "spice solver core vs legacy baseline{}\n",
        if quick { " (quick mode)" } else { "" }
    );
    let mut table = mda_bench::Table::new([
        "netlist", "unknowns", "steps", "legacy", "new", "speedup", "max dev",
    ]);
    let mut outcomes = Vec::with_capacity(cases.len());
    let mut gate_failures = 0usize;
    for case in &cases {
        let o = run_case(case);
        if o.max_rel_dev > TOL {
            eprintln!(
                "IDENTITY GATE: {} deviates {:.3e} > {TOL:e} from the legacy path",
                o.name, o.max_rel_dev
            );
            gate_failures += 1;
        }
        table.row([
            o.name.into(),
            o.stats.n_unknowns.to_string(),
            o.steps.to_string(),
            format!("{:.3}s", o.legacy_seconds),
            format!("{:.3}s", o.new_seconds),
            format!("{:.1}x", o.legacy_seconds / o.new_seconds),
            format!("{:.1e}", o.max_rel_dev),
        ]);
        outcomes.push(o);
    }
    println!("{}", table.render());

    let payload = json(&outcomes, quick);
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/BENCH_spice_solver.json";
    std::fs::write(path, payload).expect("write bench json");
    println!("\nwrote {path}");

    if gate_failures > 0 {
        eprintln!("\n{gate_failures} identity-gate failure(s)");
        std::process::exit(1);
    }
    println!("all traces within {TOL:e} of the legacy solver");
}
