//! Fig. 3: early determination in analog circuits.
//!
//! Three candidate sequences are compared against one query with the MD
//! configuration; the output voltages' *ordering* at one tenth of the
//! convergence time already matches the converged ordering.

use mda_bench::Table;
use mda_core::accelerator::FunctionParams;
use mda_core::early::early_determination;
use mda_core::{AcceleratorConfig, DistanceAccelerator};
use mda_distance::DistanceKind;

fn main() {
    let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
    acc.configure_with(DistanceKind::Manhattan, FunctionParams::default())
        .expect("valid configuration");

    let query: Vec<f64> = (0..16).map(|i| (i as f64 * 0.4).sin() * 2.0).collect();
    let candidates: Vec<Vec<f64>> = vec![
        query.iter().map(|v| v + 3.0).collect(), // MD3: far
        query.iter().map(|v| v + 0.3).collect(), // MD1: near
        query.iter().map(|v| v + 1.2).collect(), // MD2: middle
    ];

    // Waveform snapshots (the Fig. 3 curves).
    println!("Fig. 3: output voltage |V(MDi)| over time (MD, 3 candidates)\n");
    let outcomes: Vec<_> = candidates
        .iter()
        .map(|c| acc.compute(&query, c).expect("valid inputs"))
        .collect();
    let t_end = outcomes
        .iter()
        .map(|o| o.convergence_time_s)
        .fold(0.0f64, f64::max);
    let mut t = Table::new(["time", "V(MD3 far)", "V(MD1 near)", "V(MD2 mid)"]);
    for frac in [0.02, 0.05, 0.1, 0.25, 0.5, 1.0] {
        let at = t_end * frac;
        t.row([
            format!("{:.0}% tconv", frac * 100.0),
            format!("{:.1} mV", outcomes[0].output_trace.at_time(at) * 1.0e3),
            format!("{:.1} mV", outcomes[1].output_trace.at_time(at) * 1.0e3),
            format!("{:.1} mV", outcomes[2].output_trace.at_time(at) * 1.0e3),
        ]);
    }
    println!("{t}");

    // The early decision itself.
    let decision =
        early_determination(&acc, &query, &candidates, 0.1).expect("row-structure function");
    println!(
        "Early point (10% of convergence = {:.2} ns): winner = candidate {}",
        decision.early_time_s * 1.0e9,
        decision.early_winner
    );
    println!(
        "Convergence ({:.2} ns): winner = candidate {}",
        decision.convergence_time_s * 1.0e9,
        decision.converged_winner
    );
    println!(
        "Ordering preserved: {} (read-out speedup {:.0}x)",
        decision.consistent(),
        decision.speedup
    );
}
