//! Accuracy-SLA routing bench: drives a live `mda-server` with a mixed
//! exact/tolerance workload, reads back every reply's routing report, and
//! gates the router's three promises:
//!
//! 1. **zero SLA violations** (always fatal) — every exact answer is
//!    bitwise identical to the direct library call, and every
//!    tolerance-tagged answer lands within its ε of the digital reference;
//! 2. **tolerance bulk goes analog** — the majority of tolerance-tagged
//!    pair queries on encodable inputs are served by the analog fabric,
//!    not silently left on the digital path;
//! 3. **routing saves power** — the workload's modeled average watts per
//!    answer (each backend billed at its own operating point) is lower
//!    than billing everything at the digital host's draw.
//!
//! ```text
//! routing [--addr HOST:PORT] [--queries N] [--fleet-watts W]
//! ```
//!
//! Writes `results/BENCH_routing.json`.

use std::collections::BTreeMap;

use mda_distance::{boxed_distance, DistanceKind};
use mda_routing::{default_backends, BackendId, Sla, DIGITAL_HOST_WATTS};
use mda_server::{Client, QueryOptions, Server, ServerConfig};

/// Series inside the DAC's ±6.25-unit encodable range, so tolerance
/// queries genuinely exercise the analog path.
fn series(len: usize, seed: usize) -> Vec<f64> {
    (0..len)
        .map(|i| ((i + 31 * seed) as f64 * 0.27).sin() * 2.1 + (seed as f64 * 0.43).cos() * 0.9)
        .collect()
}

struct Tally {
    selected: BTreeMap<&'static str, u64>,
    sla_violations: u64,
    missing_reports: u64,
    fallback_like: u64,
    routed_watt_answers: f64,
    answers: u64,
}

impl Tally {
    fn new() -> Tally {
        let mut selected = BTreeMap::new();
        for id in BackendId::ALL {
            selected.insert(id.as_str(), 0);
        }
        Tally {
            selected,
            sla_violations: 0,
            missing_reports: 0,
            fallback_like: 0,
            routed_watt_answers: 0.0,
            answers: 0,
        }
    }
}

fn main() {
    let mut addr_arg: Option<String> = None;
    let mut queries: usize = 240;
    let mut fleet_watts: f64 = 50.0;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr_arg = Some(it.next().expect("--addr needs HOST:PORT")),
            "--queries" => {
                queries = it
                    .next()
                    .expect("--queries needs N")
                    .parse()
                    .expect("--queries must be a number");
            }
            "--fleet-watts" => {
                fleet_watts = it
                    .next()
                    .expect("--fleet-watts needs W")
                    .parse()
                    .expect("--fleet-watts must be a number");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let in_process = addr_arg.is_none();
    let server = if in_process {
        Some(
            Server::start(ServerConfig {
                fleet_power_w: fleet_watts,
                ..ServerConfig::default()
            })
            .expect("start in-process server"),
        )
    } else {
        None
    };
    let addr: std::net::SocketAddr = match (&server, &addr_arg) {
        (Some(s), _) => s.local_addr(),
        (None, Some(a)) => a.parse().expect("--addr must be HOST:PORT"),
        (None, None) => unreachable!(),
    };
    println!("routing bench -> {addr} ({queries} queries, {fleet_watts} W fleet)");

    let mut client = Client::connect(addr).expect("connect");
    let backends = default_backends();
    let ceiling = backends.analog().ceiling();
    let mut tally = Tally::new();
    let mut tolerance_pair_queries = 0u64;
    let mut tolerance_analog = 0u64;

    // Mixed workload: every kind, half exact, half tolerance-tagged with
    // the loosest ε the analog path can provably satisfy at this length.
    let len = 96usize;
    for i in 0..queries {
        let kind = DistanceKind::ALL[i % DistanceKind::ALL.len()];
        let p = series(len, 2 * i + 1);
        let q = series(len, 2 * i + 2);
        let reference = boxed_distance(kind)
            .evaluate(&p, &q)
            .expect("well-shaped pair");

        let exact = i % 2 == 0;
        let (opts, epsilon) = if exact {
            (QueryOptions::new().accuracy(Sla::Exact), 0.0)
        } else {
            let eps = backends
                .get(BackendId::Analog)
                .bound(kind, len)
                .margin(ceiling);
            (
                QueryOptions::new().accuracy(Sla::tolerance(eps).expect("finite margin")),
                eps,
            )
        };

        let routed = client
            .query_distance(kind, &p, &q, &opts)
            .expect("served distance");
        tally.answers += 1;

        let Some(route) = routed.route else {
            tally.missing_reports += 1;
            continue;
        };
        *tally.selected.entry(route.backend.as_str()).or_insert(0) += 1;
        tally.routed_watt_answers += backends.get(route.backend).power_w(kind, len);

        if exact {
            if routed.value.to_bits() != reference.to_bits() {
                tally.sla_violations += 1;
                eprintln!(
                    "SLA VIOLATION: exact {kind} answered {:e} vs reference {reference:e}",
                    routed.value
                );
            }
        } else {
            tolerance_pair_queries += 1;
            // Both analog planes count: the DP fabric and the aCAM one-shot
            // match plane (which undercuts it on the thresholded kinds).
            if matches!(route.backend, BackendId::Analog | BackendId::Acam) {
                tolerance_analog += 1;
            } else {
                tally.fallback_like += 1;
            }
            let err = (routed.value - reference).abs();
            if err > epsilon || err.is_nan() {
                tally.sla_violations += 1;
                eprintln!(
                    "SLA VIOLATION: {kind} ε={epsilon} answered {} vs reference {reference} \
                     via {}",
                    routed.value, route.backend
                );
            }
        }
    }

    let mean_routed_w = tally.routed_watt_answers / tally.answers as f64;
    let all_digital_w = DIGITAL_HOST_WATTS;
    let analog_fraction = if tolerance_pair_queries > 0 {
        tolerance_analog as f64 / tolerance_pair_queries as f64
    } else {
        0.0
    };
    println!("  answers: {}", tally.answers);
    for (backend, count) in &tally.selected {
        println!("    {backend}: {count}");
    }
    println!(
        "  tolerance queries: {tolerance_pair_queries} ({tolerance_analog} analog, \
         {:.0}% of bulk)",
        analog_fraction * 100.0
    );
    println!(
        "  modeled power: {mean_routed_w:.2} W/answer routed vs {all_digital_w:.2} W/answer \
         all-digital ({:.1}x less)",
        all_digital_w / mean_routed_w
    );
    println!(
        "  sla violations: {} | missing route reports: {}",
        tally.sla_violations, tally.missing_reports
    );

    let selected_json: String = tally
        .selected
        .iter()
        .map(|(backend, count)| format!("    \"{backend}\": {count}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let payload = format!(
        concat!(
            "{{\n",
            "  \"queries\": {},\n",
            "  \"fleet_watts\": {},\n",
            "  \"in_process\": {},\n",
            "  \"backend_selected\": {{\n{}\n  }},\n",
            "  \"tolerance_queries\": {},\n",
            "  \"tolerance_analog\": {},\n",
            "  \"tolerance_analog_fraction\": {:.4},\n",
            "  \"mean_routed_watts\": {:.4},\n",
            "  \"all_digital_watts\": {:.4},\n",
            "  \"power_saving_ratio\": {:.4},\n",
            "  \"sla_violations\": {},\n",
            "  \"missing_route_reports\": {}\n",
            "}}\n",
        ),
        tally.answers,
        fleet_watts,
        in_process,
        selected_json,
        tolerance_pair_queries,
        tolerance_analog,
        analog_fraction,
        mean_routed_w,
        all_digital_w,
        all_digital_w / mean_routed_w,
        tally.sla_violations,
        tally.missing_reports,
    );
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/BENCH_routing.json";
    std::fs::write(path, payload).expect("write bench json");
    println!("wrote {path}");

    if let Some(server) = server {
        server.shutdown_and_join();
    }

    // Gates — all fatal: the routing contract is not advisory.
    let mut failed = false;
    if tally.sla_violations > 0 {
        eprintln!("GATE: {} SLA violation(s)", tally.sla_violations);
        failed = true;
    }
    if tally.missing_reports > 0 {
        eprintln!(
            "GATE: {} accuracy-tagged replies carried no routing report",
            tally.missing_reports
        );
        failed = true;
    }
    if analog_fraction <= 0.5 {
        eprintln!(
            "GATE: only {:.0}% of tolerance-tagged queries reached the analog fabric",
            analog_fraction * 100.0
        );
        failed = true;
    }
    if mean_routed_w >= all_digital_w {
        eprintln!(
            "GATE: routed workload modeled at {mean_routed_w:.2} W/answer — not below the \
             {all_digital_w:.2} W all-digital baseline"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("routing gates: zero SLA violations, analog bulk, power saving — all pass");
}
