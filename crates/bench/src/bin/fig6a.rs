//! Fig. 6(a): per-element performance of the accelerator against the
//! published FPGA/GPU accelerators (paper headline: 3.5x-376x).
//!
//! Usage: `fig6a [n]` (array size; default 128, the paper's configuration).

use mda_bench::runners::run_fig6a;
use mda_bench::Table;
use mda_power::baselines::baseline_for;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(128);
    eprintln!("running fig6a at array size {n} ...");
    let rows = run_fig6a(n);

    println!("Fig. 6(a): performance comparison with existing works (n = {n})\n");
    let mut t = Table::new([
        "function",
        "baseline",
        "baseline t/elem",
        "ours t/elem",
        "speedup",
    ]);
    let mut min_speedup = f64::INFINITY;
    let mut max_speedup = 0.0f64;
    for row in &rows {
        let b = baseline_for(row.kind);
        t.row([
            row.kind.to_string(),
            format!("{} {}", row.platform, b.citation),
            format!("{:.2} ns", row.baseline_per_element_s * 1.0e9),
            format!("{:.3} ns", row.ours_per_element_s * 1.0e9),
            format!("{:.1}x", row.speedup),
        ]);
        min_speedup = min_speedup.min(row.speedup);
        max_speedup = max_speedup.max(row.speedup);
    }
    println!("{t}");
    println!("Speedup range: {min_speedup:.1}x - {max_speedup:.1}x  (paper: 3.5x - 376x)");
}
