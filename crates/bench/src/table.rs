//! Plain-text table rendering for the harness binaries.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width doesn't match the header.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for c in 0..cols {
                line.push(' ');
                line.push_str(&cells[c]);
                line.push_str(&" ".repeat(widths[c] - cells[c].len() + 1));
                line.push('|');
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a time in engineering notation (ns/µs/ms).
pub fn fmt_time(seconds: f64) -> String {
    if seconds < 1.0e-6 {
        format!("{:.2} ns", seconds * 1.0e9)
    } else if seconds < 1.0e-3 {
        format!("{:.2} us", seconds * 1.0e6)
    } else {
        format!("{:.2} ms", seconds * 1.0e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(["a", "header"]);
        t.row(["1", "2"]);
        t.row(["long cell", "x"]);
        let s = t.render();
        assert!(s.contains("| a "));
        assert!(s.contains("| long cell | x"));
        assert_eq!(s.lines().count(), 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(5.0e-9), "5.00 ns");
        assert_eq!(fmt_time(2.5e-6), "2.50 us");
        assert_eq!(fmt_time(1.0e-3), "1.00 ms");
    }
}
