//! Experiment runners shared by the harness binaries and integration tests.

use mda_core::accelerator::FunctionParams;
use mda_core::{AcceleratorConfig, DistanceAccelerator};
use mda_datasets::pairs::{ExperimentPairs, PairKind};
use mda_datasets::synthetic::{paper_datasets, SyntheticSpec};
use mda_distance::dtw::Band;
use mda_distance::DistanceKind;
use mda_power::baselines::{baseline_for, published_baselines};
use mda_power::budget::{paper_reported_power, PowerBudget};
use mda_power::efficiency::EfficiencyComparison;

use crate::cpu::measure_cpu_time;

/// The sequence lengths of Fig. 5 / Fig. 6(b).
pub const PAPER_LENGTHS: [usize; 4] = [10, 20, 30, 40];

/// The match threshold used for the thresholded functions in all
/// experiments (in sequence units; decisive relative to the 8-bit DAC LSB).
pub const EXPERIMENT_THRESHOLD: f64 = 0.5;

/// Amplitude applied to z-normalized series before encoding, in sequence
/// units. Unity keeps length-40 outputs inside the `Vcc/2` representable
/// range for most pairs (the constraint that made the paper pick
/// `Vstep = 10 mV` "in case the output voltage overflows"); the residual
/// saturation on far-apart pairs is part of the measured error, as it is in
/// the paper's Fig. 5.
pub const EXPERIMENT_AMPLITUDE: f64 = 1.0;

fn configured(kind: DistanceKind) -> DistanceAccelerator {
    let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
    acc.configure_with(
        kind,
        FunctionParams {
            threshold: EXPERIMENT_THRESHOLD,
            ..FunctionParams::default()
        },
    )
    .expect("valid experiment parameters");
    acc
}

/// One aggregated Fig. 5 measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Dataset name.
    pub dataset: String,
    /// Distance function.
    pub kind: DistanceKind,
    /// Same-class or different-class pairs.
    pub pair_kind: PairKind,
    /// Sequence length.
    pub length: usize,
    /// Mean convergence time over the pairs, s.
    pub mean_convergence_s: f64,
    /// Mean relative error over the pairs.
    pub mean_relative_error: f64,
    /// Number of pairs aggregated.
    pub pairs: usize,
}

/// Runs the Fig. 5 experiment: convergence time and relative error for all
/// six functions across the three datasets at the given lengths, with
/// `pairs_per_kind` same-class plus `pairs_per_kind` different-class pairs
/// per dataset/length (the paper uses 5 + 5).
pub fn run_fig5(lengths: &[usize], pairs_per_kind: usize) -> Vec<Fig5Row> {
    let mut rows = Vec::new();
    let datasets = paper_datasets(&SyntheticSpec::new(64, 5, 2017));
    for dataset in &datasets {
        let pairs = ExperimentPairs::new(dataset.z_normalized(), 0xf165);
        for kind in DistanceKind::ALL {
            let acc = configured(kind);
            for &length in lengths {
                let drawn = pairs.draw(length, pairs_per_kind);
                for pair_kind in [PairKind::SameClass, PairKind::DifferentClass] {
                    let mut conv = 0.0;
                    let mut err = 0.0;
                    let mut count = 0usize;
                    for pair in drawn.iter().filter(|p| p.kind == pair_kind) {
                        let p: Vec<f64> = pair.p.iter().map(|v| v * EXPERIMENT_AMPLITUDE).collect();
                        let q: Vec<f64> = pair.q.iter().map(|v| v * EXPERIMENT_AMPLITUDE).collect();
                        let outcome = acc.compute(&p, &q).expect("experiment inputs are valid");
                        conv += outcome.convergence_time_s;
                        err += outcome.relative_error;
                        count += 1;
                    }
                    rows.push(Fig5Row {
                        dataset: dataset.name().to_string(),
                        kind,
                        pair_kind,
                        length,
                        mean_convergence_s: conv / count as f64,
                        mean_relative_error: err / count as f64,
                        pairs: count,
                    });
                }
            }
        }
    }
    rows
}

/// One Fig. 6(a) comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6aRow {
    /// Distance function.
    pub kind: DistanceKind,
    /// Baseline platform label.
    pub platform: &'static str,
    /// Our per-element processing time, s.
    pub ours_per_element_s: f64,
    /// Baseline per-element processing time, s.
    pub baseline_per_element_s: f64,
    /// Performance speedup.
    pub speedup: f64,
}

/// Runs the Fig. 6(a) experiment at array size `n`: per-element processing
/// time of the accelerator (banded DTW; early-point read-out for HamD/MD,
/// per Section 4.3) against the published baselines.
pub fn run_fig6a(n: usize) -> Vec<Fig6aRow> {
    let phase = |i: usize, shift: f64| ((i as f64) * 0.37 + shift).sin() * 2.0;
    let p: Vec<f64> = (0..n).map(|i| phase(i, 0.0)).collect();
    let q: Vec<f64> = (0..n).map(|i| phase(i, 0.8)).collect();
    published_baselines()
        .into_iter()
        .map(|baseline| {
            let kind = baseline.kind;
            let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
            let params = FunctionParams {
                threshold: EXPERIMENT_THRESHOLD,
                band: if kind == DistanceKind::Dtw {
                    Band::five_percent(n)
                } else {
                    Band::Full
                },
                ..FunctionParams::default()
            };
            acc.configure_with(kind, params).expect("valid parameters");
            let outcome = acc.compute(&p, &q).expect("valid inputs");
            let mut runtime = outcome.convergence_time_s;
            // Early determination: HamD/MD read at one tenth of convergence.
            if !kind.uses_matrix_structure() {
                runtime /= 10.0;
            }
            let ours_per_element = runtime / n as f64;
            Fig6aRow {
                kind,
                platform: baseline.platform,
                ours_per_element_s: ours_per_element,
                baseline_per_element_s: baseline.per_element_time_s,
                speedup: baseline.per_element_time_s / ours_per_element,
            }
        })
        .collect()
}

/// One Fig. 6(b) comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6bRow {
    /// Distance function.
    pub kind: DistanceKind,
    /// Sequence length.
    pub length: usize,
    /// Measured CPU time on this host, s.
    pub cpu_s: f64,
    /// Accelerator runtime (convergence; early point for HamD/MD), s.
    pub analog_s: f64,
    /// Speedup over the CPU.
    pub speedup: f64,
}

/// Runs the Fig. 6(b) experiment: measured CPU runtime of the optimized
/// digital implementation against the accelerator at the paper's lengths.
pub fn run_fig6b(lengths: &[usize]) -> Vec<Fig6bRow> {
    let mut rows = Vec::new();
    for kind in DistanceKind::ALL {
        let acc = configured(kind);
        for &length in lengths {
            let p: Vec<f64> = (0..length).map(|i| (i as f64 * 0.31).sin() * 2.0).collect();
            let q: Vec<f64> = (0..length)
                .map(|i| (i as f64 * 0.31 + 0.9).sin() * 2.0)
                .collect();
            let cpu = measure_cpu_time(kind, &p, &q, 21);
            let outcome = acc.compute(&p, &q).expect("valid inputs");
            let mut analog = outcome.convergence_time_s;
            if !kind.uses_matrix_structure() {
                analog /= 10.0;
            }
            rows.push(Fig6bRow {
                kind,
                length,
                cpu_s: cpu,
                analog_s: analog,
                speedup: cpu / analog,
            });
        }
    }
    rows
}

/// One power-table row (Section 4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerRow {
    /// Distance function.
    pub kind: DistanceKind,
    /// Computed accelerator power, W.
    pub ours_w: f64,
    /// The paper's reported accelerator power, W.
    pub paper_w: f64,
    /// Baseline platform.
    pub platform: &'static str,
    /// Baseline power, W.
    pub baseline_w: f64,
    /// Performance speedup vs the baseline (from Fig. 6(a) data).
    pub speedup: f64,
    /// Energy-efficiency gain vs the baseline.
    pub efficiency_gain: f64,
}

/// Runs the Section 4.3 analysis: power budgets plus energy-efficiency
/// gains, using the Fig. 6(a) per-element times at array size `n`.
pub fn run_power_table(n: usize) -> Vec<PowerRow> {
    let fig6a = run_fig6a(n);
    fig6a
        .into_iter()
        .map(|row| {
            let baseline = baseline_for(row.kind);
            let ours_w = PowerBudget::paper_operating_point(row.kind).total_w();
            let cmp = EfficiencyComparison::new(&baseline, row.ours_per_element_s, ours_w);
            PowerRow {
                kind: row.kind,
                ours_w,
                paper_w: paper_reported_power(row.kind),
                platform: baseline.platform,
                baseline_w: baseline.power_w,
                speedup: cmp.speedup(),
                efficiency_gain: cmp.energy_efficiency_gain(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shapes_hold_on_reduced_sweep() {
        // A reduced sweep (2 lengths, 1 pair per kind) still shows the key
        // Fig. 5 property: convergence grows with length for DTW but not
        // for HauD.
        let rows = run_fig5(&[10, 40], 1);
        let mean_conv = |kind: DistanceKind, len: usize| {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r.kind == kind && r.length == len)
                .map(|r| r.mean_convergence_s)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(mean_conv(DistanceKind::Dtw, 40) > mean_conv(DistanceKind::Dtw, 10) * 2.0);
        assert!(
            mean_conv(DistanceKind::Hausdorff, 40) < mean_conv(DistanceKind::Hausdorff, 10) * 2.0
        );
    }

    #[test]
    fn fig6a_speedups_in_paper_range() {
        // At a reduced array size the per-element time is already
        // length-stable; speedups must land in (or near) the paper's
        // 3.5x-376x envelope.
        let rows = run_fig6a(32);
        for row in &rows {
            assert!(
                row.speedup > 3.0 && row.speedup < 1000.0,
                "{}: speedup {:.1}",
                row.kind,
                row.speedup
            );
        }
    }

    #[test]
    fn power_table_efficiency_range_matches_paper_magnitude() {
        let rows = run_power_table(32);
        for row in &rows {
            assert!(
                row.efficiency_gain > 10.0,
                "{}: gain {:.1}",
                row.kind,
                row.efficiency_gain
            );
            assert!(
                row.efficiency_gain < 20_000.0,
                "{}: gain {:.1}",
                row.kind,
                row.efficiency_gain
            );
        }
    }
}
