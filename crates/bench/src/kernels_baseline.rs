//! Frozen pre-rework DP kernels and pruning cascade, kept verbatim as the
//! comparison baseline for the `kernels` bench bin.
//!
//! These are the row-major, per-cell-band-tested kernels and the O(n·r)
//! fold-based envelope exactly as they stood before the wavefront/UCR
//! rework, **deliberately self-contained** (no calls into `mda-distance`
//! internals) so later library changes cannot silently drift the baseline.
//! The bench holds the reworked kernels to bitwise identity against these
//! functions and reports the wall-clock ratio; an identity mismatch is a
//! correctness regression and fails the run.
//!
//! Everything here is uniform-weight, matching the subsequence-search hot
//! path the bench times.

/// Sakoe–Chiba admissibility exactly as the old kernels tested it per cell:
/// `|j·m − i·n| ≤ r·m` in `i128`. `r = None` means no band.
#[inline]
fn admissible(r: Option<usize>, i: usize, j: usize, m: usize, n: usize) -> bool {
    match r {
        None => true,
        Some(r) => {
            let jm = j as i128 * m as i128;
            let i_n = i as i128 * n as i128;
            (jm - i_n).abs() <= r as i128 * m as i128
        }
    }
}

/// Pre-rework row-major banded DTW (two rows, per-cell admissibility test).
/// Returns `None` when the band admits no warping path.
pub fn dtw(p: &[f64], q: &[f64], r: Option<usize>) -> Option<f64> {
    let (m, n) = (p.len(), q.len());
    let mut prev = vec![f64::INFINITY; n + 1];
    let mut curr = vec![f64::INFINITY; n + 1];
    prev[0] = 0.0;
    for i in 1..=m {
        curr.fill(f64::INFINITY);
        for j in 1..=n {
            if !admissible(r, i, j, m, n) {
                continue;
            }
            let cost = (p[i - 1] - q[j - 1]).abs();
            let best = curr[j - 1].min(prev[j]).min(prev[j - 1]);
            if best.is_finite() {
                curr[j] = cost + best;
            }
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[n].is_finite().then_some(prev[n])
}

/// Pre-rework row-major LCS similarity (threshold + value step).
pub fn lcs(p: &[f64], q: &[f64], threshold: f64, v_step: f64) -> f64 {
    let (m, n) = (p.len(), q.len());
    let mut prev = vec![0.0f64; n + 1];
    let mut curr = vec![0.0f64; n + 1];
    for i in 1..=m {
        curr[0] = 0.0;
        for j in 1..=n {
            curr[j] = if (p[i - 1] - q[j - 1]).abs() <= threshold {
                prev[j - 1] + v_step
            } else {
                curr[j - 1].max(prev[j])
            };
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[n]
}

/// Pre-rework row-major thresholded edit distance.
pub fn edit(p: &[f64], q: &[f64], threshold: f64, v_step: f64) -> f64 {
    let (m, n) = (p.len(), q.len());
    let mut prev: Vec<f64> = (0..=n).map(|j| j as f64 * v_step).collect();
    let mut curr = vec![0.0f64; n + 1];
    for i in 1..=m {
        curr[0] = i as f64 * v_step;
        for j in 1..=n {
            let w = v_step;
            let del = prev[j] + w;
            let ins = curr[j - 1] + w;
            let diag = if (p[i - 1] - q[j - 1]).abs() <= threshold {
                prev[j - 1]
            } else {
                prev[j - 1] + w
            };
            curr[j] = del.min(ins).min(diag);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[n]
}

/// Pre-rework O(n·r) fold-based Sakoe–Chiba envelope.
pub fn envelope(q: &[f64], r: usize) -> (Vec<f64>, Vec<f64>) {
    let n = q.len();
    let mut upper = vec![0.0; n];
    let mut lower = vec![0.0; n];
    for i in 0..n {
        let lo = i.saturating_sub(r);
        let hi = (i + r).min(n - 1);
        let window = &q[lo..=hi];
        upper[i] = window.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        lower[i] = window.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    }
    (upper, lower)
}

/// LB_Kim as both the old and new cascades use it.
pub fn lb_kim(p: &[f64], q: &[f64]) -> f64 {
    let first = (p[0] - q[0]).abs();
    if p.len() == 1 && q.len() == 1 {
        return first;
    }
    first + (p[p.len() - 1] - q[q.len() - 1]).abs()
}

/// Pre-rework LB_Keogh: re-derives the candidate envelope with the O(n·r)
/// fold on every call.
pub fn lb_keogh(p: &[f64], q: &[f64], r: usize) -> f64 {
    let (upper, lower) = envelope(q, r);
    p.iter()
        .zip(upper.iter().zip(&lower))
        .map(|(&x, (&u, &l))| {
            if x > u {
                x - u
            } else if x < l {
                l - x
            } else {
                0.0
            }
        })
        .sum()
}

/// Pre-rework early-abandoning banded DTW: full-row scan with a per-cell
/// admissibility test, abandoning once a whole row exceeds `best_so_far`.
/// `Ok(None)` = abandoned, `Err(())` = band admits no path.
#[allow(clippy::result_unit_err)]
pub fn dtw_early_abandon(
    p: &[f64],
    q: &[f64],
    r: usize,
    best_so_far: f64,
) -> Result<Option<f64>, ()> {
    let (m, n) = (p.len(), q.len());
    let mut prev = vec![f64::INFINITY; n + 1];
    let mut curr = vec![f64::INFINITY; n + 1];
    prev[0] = 0.0;
    for i in 1..=m {
        curr.fill(f64::INFINITY);
        let mut row_min = f64::INFINITY;
        for j in 1..=n {
            if !admissible(Some(r), i, j, m, n) {
                continue;
            }
            let cost = (p[i - 1] - q[j - 1]).abs();
            let best = curr[j - 1].min(prev[j]).min(prev[j - 1]);
            if best.is_finite() {
                curr[j] = cost + best;
                row_min = row_min.min(curr[j]);
            }
        }
        if row_min > best_so_far {
            return Ok(None);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let v = prev[n];
    if !v.is_finite() {
        return Err(());
    }
    Ok((v <= best_so_far).then_some(v))
}

/// One pre-rework cascade decision: Kim → fold-based Keogh → early abandon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    PrunedByKim,
    PrunedByKeogh,
    AbandonedEarly,
    Computed(f64),
}

/// The pre-rework cascade for one equal-length candidate.
pub fn cascade(p: &[f64], q: &[f64], r: usize, best_so_far: f64) -> Decision {
    let kim = lb_kim(p, q);
    if kim > best_so_far {
        return Decision::PrunedByKim;
    }
    let keogh = lb_keogh(p, q, r);
    if keogh > best_so_far {
        return Decision::PrunedByKeogh;
    }
    match dtw_early_abandon(p, q, r, best_so_far).expect("feasible band") {
        Some(d) => Decision::Computed(d),
        None => Decision::AbandonedEarly,
    }
}

/// Result of the baseline search replica.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    pub offset: usize,
    pub distance: f64,
    pub windows: usize,
    pub pruned: usize,
    pub full_computations: usize,
}

impl SearchResult {
    pub fn prune_rate(&self) -> f64 {
        self.pruned as f64 / self.windows as f64
    }
}

/// Serial replica of the pre-rework three-stage subsequence search: LB_Kim
/// scout, chunked cascade with the chunk-64 local-threshold reset the
/// `BatchEngine` used, ordered strict-< reduction.
pub fn search(query: &[f64], haystack: &[f64], window: usize, r: usize) -> SearchResult {
    const CHUNK: usize = 64;
    let offsets: Vec<usize> = (0..=(haystack.len() - window)).collect();

    // Stage 1: scout.
    let scout = offsets
        .iter()
        .map(|&off| lb_kim(query, &haystack[off..off + window]))
        .enumerate()
        .min_by(|x, y| x.1.total_cmp(&y.1))
        .map(|(i, _)| i)
        .expect("at least one window");
    let best_ub = dtw(
        query,
        &haystack[offsets[scout]..offsets[scout] + window],
        Some(r),
    )
    .expect("feasible band");

    // Stage 2: chunked cascade.
    let mut decisions = Vec::with_capacity(offsets.len());
    for chunk in offsets.chunks(CHUNK) {
        let mut local_best = best_ub;
        for &off in chunk {
            let decision = cascade(query, &haystack[off..off + window], r, local_best);
            if let Decision::Computed(d) = decision {
                if d < local_best {
                    local_best = d;
                }
            }
            decisions.push(decision);
        }
    }

    // Stage 3: ordered reduction.
    let mut result = SearchResult {
        offset: 0,
        distance: f64::INFINITY,
        windows: offsets.len(),
        pruned: 0,
        full_computations: 0,
    };
    for (&offset, decision) in offsets.iter().zip(&decisions) {
        match decision {
            Decision::Computed(d) => {
                result.full_computations += 1;
                if *d < result.distance {
                    result.offset = offset;
                    result.distance = *d;
                }
            }
            _ => result.pruned += 1,
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_distance::lower_bounds;
    use mda_distance::{Band, Dtw, EditDistance, Lcs};

    fn wave(i: usize, k: f64) -> f64 {
        (i as f64 * k).sin() * 2.0 + (i as f64 * 0.05).cos()
    }

    #[test]
    fn baseline_kernels_match_library_bitwise() {
        let p: Vec<f64> = (0..33).map(|i| wave(i, 0.31)).collect();
        let q: Vec<f64> = (0..28).map(|i| wave(i, 0.42)).collect();
        for r in [None, Some(5), Some(12)] {
            let lib = Dtw::new()
                .with_band(r.map_or(Band::Full, Band::SakoeChiba))
                .distance(&p, &q);
            match (dtw(&p, &q, r), lib) {
                (Some(b), Ok(l)) => assert_eq!(b.to_bits(), l.to_bits(), "r={r:?}"),
                (None, Err(_)) => {}
                (b, l) => panic!("feasibility disagreement at r={r:?}: {b:?} vs {l:?}"),
            }
        }
        assert_eq!(
            lcs(&p, &q, 0.3, 1.0).to_bits(),
            Lcs::new(0.3).similarity(&p, &q).unwrap().to_bits()
        );
        assert_eq!(
            edit(&p, &q, 0.3, 1.0).to_bits(),
            EditDistance::new(0.3).distance(&p, &q).unwrap().to_bits()
        );
    }

    #[test]
    fn baseline_envelope_matches_library() {
        let q: Vec<f64> = (0..40).map(|i| wave(i, 0.7)).collect();
        for r in [0, 1, 3, 9] {
            let (bu, bl) = envelope(&q, r);
            let (lu, ll) = lower_bounds::envelope(&q, r).unwrap();
            assert_eq!(bu, lu, "upper r={r}");
            assert_eq!(bl, ll, "lower r={r}");
        }
    }

    #[test]
    fn baseline_search_agrees_with_library_search() {
        use mda_distance::mining::SubsequenceSearch;
        use mda_distance::BatchEngine;
        let haystack: Vec<f64> = (0..300).map(|i| wave(i, 0.23)).collect();
        let query: Vec<f64> = (0..32).map(|i| wave(i + 140, 0.23) + 0.01).collect();
        let base = search(&query, &haystack, 32, 3);
        let (lib, stats) = SubsequenceSearch::new(32, 3)
            .with_engine(BatchEngine::serial())
            .run(&query, &haystack)
            .unwrap();
        assert_eq!(base.offset, lib.offset);
        assert_eq!(base.distance.to_bits(), lib.distance.to_bits());
        assert_eq!(base.windows, stats.windows);
    }
}
