//! Criterion benches of the behavioural analog engine — the wall-clock cost
//! of regenerating one Fig. 5 data point at each fidelity-relevant length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mda_core::analog::graph::builders;
use mda_core::analog::{AnalogEngine, ErrorModel};
use mda_core::AcceleratorConfig;
use mda_distance::dtw::Band;

fn series_volts(config: &AcceleratorConfig, len: usize, phase: f64) -> Vec<f64> {
    (0..len)
        .map(|i| config.value_to_voltage(((i as f64) * 0.31 + phase).sin() * 2.0))
        .collect()
}

fn bench_engine(c: &mut Criterion) {
    let config = AcceleratorConfig::paper_defaults();
    let engine = AnalogEngine::new();
    let mut group = c.benchmark_group("analog_engine");
    group.sample_size(10);
    for len in [10usize, 20, 40] {
        let p = series_volts(&config, len, 0.0);
        let q = series_volts(&config, len, 0.9);
        group.bench_with_input(BenchmarkId::new("DTW", len), &len, |b, _| {
            b.iter(|| {
                let g = builders::dtw(
                    &config,
                    black_box(&p),
                    black_box(&q),
                    1.0,
                    Band::Full,
                    &mut ErrorModel::new(1),
                );
                engine.simulate(&g).final_voltage
            })
        });
        group.bench_with_input(BenchmarkId::new("MD", len), &len, |b, _| {
            let w = vec![1.0; len];
            b.iter(|| {
                let g = builders::manhattan(
                    &config,
                    black_box(&p),
                    black_box(&q),
                    &w,
                    &mut ErrorModel::new(1),
                );
                engine.simulate(&g).final_voltage
            })
        });
        group.bench_with_input(BenchmarkId::new("HauD", len), &len, |b, _| {
            b.iter(|| {
                let g = builders::hausdorff(
                    &config,
                    black_box(&p),
                    black_box(&q),
                    1.0,
                    &mut ErrorModel::new(1),
                );
                engine.simulate(&g).final_voltage
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
