//! Criterion benches of memristor resistance tuning (Section 3.3) — the
//! programming-time cost of configuring weighted distance functions.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use mda_memristor::tuning::{tune_ratio, PulseSchedule};
use mda_memristor::{AdderTuner, BiolekParams, Memristor, ProcessVariation};

fn bench_tuning(c: &mut Criterion) {
    let mut group = c.benchmark_group("resistance_tuning");

    group.bench_function("tune_single_ratio", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(11);
            let variation = ProcessVariation::paper_defaults();
            let mut device = Memristor::at_resistance(
                BiolekParams::paper_defaults(),
                variation.sample(60.0e3, &mut rng),
            );
            tune_ratio(
                black_box(&mut device),
                50.0e3,
                1.0,
                0.01,
                PulseSchedule::default(),
                500,
                1.0e-3,
                &mut rng,
            )
        })
    });

    group.bench_function("tune_adder_weights_8", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(12);
            let variation = ProcessVariation::paper_defaults();
            let reference = Memristor::at_resistance(BiolekParams::paper_defaults(), 50.0e3);
            let mut inputs: Vec<Memristor> = (0..8)
                .map(|_| {
                    Memristor::at_resistance(
                        BiolekParams::paper_defaults(),
                        variation.sample(50.0e3, &mut rng),
                    )
                })
                .collect();
            let tuner = AdderTuner::new(vec![1.0; 8]);
            tuner.tune(black_box(&mut inputs), &reference, &mut rng)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_tuning);
criterion_main!(benches);
