//! Criterion benches of DTW lower-bound pruning — the software optimization
//! (Rakthanmanon et al.) that the paper's related work deploys on CPUs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mda_distance::mining::SubsequenceSearch;

fn haystack(len: usize) -> Vec<f64> {
    (0..len)
        .map(|i| (i as f64 * 0.23).sin() * (1.0 + (i as f64 / len as f64)))
        .collect()
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("subsequence_search");
    group.sample_size(20);
    for hay_len in [512usize, 2048] {
        let hay = haystack(hay_len);
        let query: Vec<f64> = hay[hay_len / 3..hay_len / 3 + 32].to_vec();
        let search = SubsequenceSearch::new(32, 3);
        group.bench_with_input(BenchmarkId::new("cascading", hay_len), &hay_len, |b, _| {
            b.iter(|| search.run(black_box(&query), black_box(&hay)).expect("ok"))
        });
        group.bench_with_input(
            BenchmarkId::new("brute_force", hay_len),
            &hay_len,
            |b, _| {
                b.iter(|| {
                    search
                        .run_brute_force(black_box(&query), black_box(&hay))
                        .expect("ok")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
