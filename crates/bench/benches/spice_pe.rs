//! Criterion benches of device-level PE circuit solves — what one "SPICE"
//! validation run costs at each circuit size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mda_core::{pe, AcceleratorConfig};

fn bench_pe_dc(c: &mut Criterion) {
    let config = AcceleratorConfig::paper_defaults();
    let mut group = c.benchmark_group("spice_pe_dc");
    group.sample_size(10);

    group.bench_function("dtw_1x1", |b| {
        b.iter(|| pe::dtw::evaluate_dc(&config, black_box(&[1.5]), black_box(&[0.5]), 1.0))
    });
    group.bench_function("dtw_3x3", |b| {
        let p = [0.0, 1.0, 3.0];
        let q = [0.5, 1.5, 2.5];
        b.iter(|| pe::dtw::evaluate_dc(&config, black_box(&p), black_box(&q), 1.0))
    });
    group.bench_function("lcs_2x2", |b| {
        let p = [0.0, 1.0];
        let q = [0.0, 1.1];
        b.iter(|| pe::lcs::evaluate_dc(&config, black_box(&p), black_box(&q), 0.2, 1.0))
    });
    group.bench_function("edit_2x2", |b| {
        let p = [0.0, 2.0];
        let q = [0.0, -2.0];
        b.iter(|| pe::edit::evaluate_dc(&config, black_box(&p), black_box(&q), 0.2))
    });
    group.bench_function("hausdorff_2x3", |b| {
        let p = [0.0, 4.0];
        let q = [1.0, 3.5, 6.0];
        b.iter(|| pe::hausdorff::evaluate_dc(&config, black_box(&p), black_box(&q), 1.0))
    });
    for n in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("manhattan_row", n), &n, |b, &n| {
            let p: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
            let q = vec![0.0; n];
            let w = vec![1.0; n];
            b.iter(|| pe::manhattan::evaluate_dc(&config, black_box(&p), black_box(&q), &w))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pe_dc);
criterion_main!(benches);
