//! Criterion benches of the digital CPU implementations — the measured
//! baseline behind Fig. 6(b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mda_distance::{boxed_distance, DistanceKind};

fn series(len: usize, phase: f64) -> Vec<f64> {
    (0..len)
        .map(|i| (i as f64 * 0.31 + phase).sin() * 2.0)
        .collect()
}

fn bench_cpu_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_distance");
    for kind in DistanceKind::ALL {
        let d = boxed_distance(kind);
        for len in [10usize, 20, 30, 40] {
            let p = series(len, 0.0);
            let q = series(len, 0.9);
            group.bench_with_input(BenchmarkId::new(kind.abbrev(), len), &len, |b, _| {
                b.iter(|| d.evaluate(black_box(&p), black_box(&q)).expect("valid"))
            });
        }
    }
    group.finish();
}

fn bench_cpu_scaling(c: &mut Criterion) {
    // Longer sweeps establishing the O(n) vs O(n²) scaling split.
    let mut group = c.benchmark_group("cpu_scaling");
    for len in [64usize, 256, 1024] {
        let p = series(len, 0.0);
        let q = series(len, 0.9);
        let dtw = boxed_distance(DistanceKind::Dtw);
        let md = boxed_distance(DistanceKind::Manhattan);
        group.bench_with_input(BenchmarkId::new("DTW", len), &len, |b, _| {
            b.iter(|| dtw.evaluate(black_box(&p), black_box(&q)).expect("valid"))
        });
        group.bench_with_input(BenchmarkId::new("MD", len), &len, |b, _| {
            b.iter(|| md.evaluate(black_box(&p), black_box(&q)).expect("valid"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cpu_distances, bench_cpu_scaling);
criterion_main!(benches);
