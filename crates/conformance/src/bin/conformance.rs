//! The `conformance` CLI: run the cross-layer differential harness, or
//! replay a shrunk reproducer downloaded from a CI artifact.
//!
//! ```text
//! conformance [--quick] [--seed N] [--cases N] [--out DIR] [--report FILE]
//!             [--no-server] [--no-spice] [--no-faults] [--no-streaming]
//! conformance --replay FILE
//! ```
//!
//! Exit code 0 means every case agreed within bounds and the fault suite
//! passed; 1 means at least one check failed (shrunk reproducers are then
//! under the `--out` directory); 2 means bad usage.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mda_conformance::harness::{replay, run, HarnessConfig};
use mda_conformance::report::load_case;

/// Default differential case count for a full run.
const DEFAULT_CASES: u64 = 600;
/// Case count under `--quick` (CI): still covers every kind × class cell.
const QUICK_CASES: u64 = 240;

struct Args {
    config: HarnessConfig,
    report_path: PathBuf,
    replay_path: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut config = HarnessConfig::full(0xC0FFEE, DEFAULT_CASES);
    let mut report_path = PathBuf::from("results/BENCH_conformance.json");
    let mut replay_path = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--quick" => config.cases = QUICK_CASES,
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--cases" => {
                config.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?;
            }
            "--out" => config.out_dir = PathBuf::from(value("--out")?),
            "--report" => report_path = PathBuf::from(value("--report")?),
            "--no-server" => config.with_server = false,
            "--no-spice" => config.with_spice = false,
            "--no-faults" => config.with_faults = false,
            "--no-streaming" => config.with_streaming = false,
            "--replay" => replay_path = Some(PathBuf::from(value("--replay")?)),
            "--help" | "-h" => {
                return Err(
                    "usage: conformance [--quick] [--seed N] [--cases N] [--out DIR] \
                            [--report FILE] [--no-server] [--no-spice] [--no-faults] \
                            [--no-streaming] | --replay FILE"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(Args {
        config,
        report_path,
        replay_path,
    })
}

fn replay_main(path: &Path) -> ExitCode {
    let case = match load_case(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("conformance: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying seed {} case {} ({} {} {}, |p|={}, |q|={})",
        case.seed,
        case.id,
        case.kind.abbrev(),
        case.structure(),
        case.class.label(),
        case.p.len(),
        case.q.len()
    );
    let failures = replay(&case, true);
    if failures.is_empty() {
        println!("all layers agree within bounds — the disagreement did not reproduce");
        return ExitCode::SUCCESS;
    }
    for f in &failures {
        match &f.error {
            Some(e) => println!(
                "layer `{}` errored (reference {}): {e}",
                f.layer, f.reference
            ),
            None => println!(
                "layer `{}` value {} vs reference {} (allowed margin {})",
                f.layer, f.value, f.reference, f.margin
            ),
        }
    }
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("conformance: {msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.replay_path {
        return replay_main(path);
    }

    let outcome = run(&args.config);
    if let Some(dir) = args.report_path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("conformance: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
    }
    if let Err(e) = std::fs::write(&args.report_path, format!("{}\n", outcome.report)) {
        eprintln!(
            "conformance: cannot write {}: {e}",
            args.report_path.display()
        );
        return ExitCode::from(2);
    }
    println!(
        "conformance: seed {} over {} cases — report at {}",
        args.config.seed,
        args.config.cases,
        args.report_path.display()
    );
    if outcome.failures.is_empty() {
        println!("conformance: PASS (all layers within bounds, fault suite clean)");
        ExitCode::SUCCESS
    } else {
        for f in &outcome.failures {
            eprintln!("conformance: FAIL {f}");
        }
        for r in &outcome.reproducers {
            eprintln!("conformance: reproducer {}", r.display());
        }
        ExitCode::FAILURE
    }
}
