//! Layer adapters: run one [`CaseSpec`] through each of the four stacked
//! implementations and report what came back.
//!
//! * **reference** — the digital DP library, constructed exactly the way
//!   `mda-server`'s executor builds it, so the reference here *is* the
//!   served semantics (threshold defaulting, banding, similarity signs);
//! * **behavioural** — `DistanceAccelerator` with the paper-default fabric
//!   and the case's own noise seed;
//! * **spice** — the device-level PE netlists solved by the PR-2 MNA core
//!   (size-gated: matrix PEs grow O(m·n) nodes, so only tiny cases run);
//! * **server** — a loopback `mda-server` round-trip through the real TCP
//!   wire protocol;
//! * **server_resident** — the same loopback server queried through the
//!   resident-dataset path (upload → kNN by dataset id → drop), recovering
//!   the raw distance from a k=1 neighbour score;
//! * **server_routed** — the same loopback server queried with an explicit
//!   tolerance SLA wide enough to admit the analog fabric: whatever
//!   backend the router picks, the reply must report it, the reported
//!   bound must fit the SLA, and the served value must land within the
//!   tolerance of the digital reference;
//! * **acam** — the one-shot aCAM match plane for the thresholded kinds
//!   (HamD, thresholded EdD/LCS): a tuned array's interval comparators
//!   must reproduce the digital comparator on every cell, including the
//!   boundary-stratum cases that sit exactly on `|a − b| = threshold`.

use mda_acam::OneShotMatcher;
use mda_core::accelerator::FunctionParams;
use mda_core::{pe, AcceleratorConfig, AcceleratorError, DistanceAccelerator};
use mda_distance::dtw::Band;
use mda_distance::{
    Distance, DistanceError, DistanceKind, Dtw, EditDistance, Hamming, Hausdorff, Lcs, Manhattan,
};
use mda_server::client::{Client, QueryOptions};
use mda_server::{ClientError, DatasetEntry, DatasetRef, RouteInfo, Sla};

use crate::case::CaseSpec;

/// The analog fabric's *output* ceiling in value units: the readout ADC
/// clamps at ±half its full scale, so distances above this saturate
/// (25 units at paper defaults: 1 V full scale, 20 mV/unit). The analog
/// layers are therefore judged against the reference clamped to this
/// ceiling — saturating there is correct accelerator behaviour, not a
/// disagreement. The server layer always compares against the raw digital
/// value. (This is distinct from `max_encodable_value`, which caps the
/// *input* DAC at ±6.25 units.)
pub fn encodable_ceiling() -> f64 {
    let config = AcceleratorConfig::paper_defaults();
    config.adc.full_scale / 2.0 / config.voltage_resolution
}

/// Largest per-side length for which the matrix-structure SPICE netlists
/// (DTW/LCS/EdD/HauD) are solved.
pub const SPICE_MATRIX_CAP: usize = 3;
/// Largest length for which the row-structure SPICE netlists (HamD/MD) are
/// solved.
pub const SPICE_ROW_CAP: usize = 8;

/// The digital reference value, mirroring `mda-server`'s executor: the
/// same `Distance` constructors, the same threshold default, the same
/// band handling.
///
/// # Errors
///
/// Shape errors from the distance library (the generator never produces
/// them; the shrinker is constrained not to either).
pub fn reference(case: &CaseSpec) -> Result<f64, DistanceError> {
    match case.kind {
        DistanceKind::Dtw => {
            let mut dtw = Dtw::new();
            if let Some(r) = case.band {
                dtw = dtw.with_band(Band::SakoeChiba(r));
            }
            dtw.evaluate(&case.p, &case.q)
        }
        DistanceKind::Lcs => Lcs::new(case.threshold).evaluate(&case.p, &case.q),
        DistanceKind::Edit => EditDistance::new(case.threshold).evaluate(&case.p, &case.q),
        DistanceKind::Hausdorff => Hausdorff::new().evaluate(&case.p, &case.q),
        DistanceKind::Hamming => Hamming::new(case.threshold).evaluate(&case.p, &case.q),
        DistanceKind::Manhattan => Manhattan::new().evaluate(&case.p, &case.q),
    }
}

/// The behavioural accelerator value for a case, using the case's noise
/// seed so the analog error model is reproducible per case.
///
/// # Errors
///
/// Configuration or computation errors from the accelerator.
pub fn behavioural(case: &CaseSpec) -> Result<f64, AcceleratorError> {
    let mut config = AcceleratorConfig::paper_defaults();
    config.noise_seed = case.noise_seed;
    let mut acc = DistanceAccelerator::new(config);
    let band = match case.band {
        Some(r) => Band::SakoeChiba(r),
        None => Band::Full,
    };
    acc.configure_with(
        case.kind,
        FunctionParams {
            threshold: case.threshold,
            weight: 1.0,
            band,
        },
    )?;
    Ok(acc.compute(&case.p, &case.q)?.value)
}

/// Whether the SPICE layer runs this case, and if not, why not.
pub fn spice_eligibility(case: &CaseSpec) -> Result<(), &'static str> {
    if case.band.is_some() {
        // The device netlists hard-wire the full recurrence fabric.
        return Err("banded DTW has no SPICE netlist");
    }
    if case.knife_edge() {
        // A boundary-stratum pair flips an analog comparator on sub-LSB
        // noise; no device-level bound is meaningful there.
        return Err("knife-edge case has no meaningful analog bound");
    }
    let (m, n) = (case.p.len(), case.q.len());
    if case.kind.uses_matrix_structure() {
        if m.max(n) > SPICE_MATRIX_CAP {
            return Err("matrix netlist above size cap");
        }
    } else if m.max(n) > SPICE_ROW_CAP {
        return Err("row netlist above size cap");
    }
    Ok(())
}

/// The device-level SPICE value for an eligible case.
///
/// # Errors
///
/// Encoding-range or solver errors from the PE netlists.
pub fn spice(case: &CaseSpec) -> Result<f64, AcceleratorError> {
    let config = AcceleratorConfig::paper_defaults();
    let (p, q) = (case.p.as_slice(), case.q.as_slice());
    match case.kind {
        DistanceKind::Dtw => pe::dtw::evaluate_dc(&config, p, q, 1.0),
        DistanceKind::Lcs => pe::lcs::evaluate_dc(&config, p, q, case.threshold, 1.0),
        DistanceKind::Edit => pe::edit::evaluate_dc(&config, p, q, case.threshold),
        DistanceKind::Hausdorff => pe::hausdorff::evaluate_dc(&config, p, q, 1.0),
        DistanceKind::Hamming => {
            pe::hamming::evaluate_dc(&config, p, q, case.threshold, &vec![1.0; p.len()])
        }
        DistanceKind::Manhattan => pe::manhattan::evaluate_dc(&config, p, q, &vec![1.0; p.len()]),
    }
}

/// The value served by a live `mda-server` for this case.
///
/// # Errors
///
/// Transport or server errors from the round-trip.
pub fn server(client: &mut Client, case: &CaseSpec) -> Result<f64, ClientError> {
    Ok(client
        .query_distance(case.kind, &case.p, &case.q, &case_opts(case))?
        .value)
}

/// The tolerance the routed layer requests for a case: the analog fabric's
/// calibrated margin at its output ceiling — exactly the loosest SLA the
/// router can provably satisfy on the analog path, so eligible cases
/// exercise analog routing rather than trivially staying digital.
pub fn routed_tolerance(case: &CaseSpec) -> f64 {
    let len = case.p.len().max(case.q.len());
    mda_core::bounds::behavioural(case.kind, len).margin(encodable_ceiling())
}

/// The value served under an explicit tolerance SLA, plus the routing
/// report the reply carried (`None` would itself be a finding: replies to
/// accuracy-tagged requests must report their route).
///
/// # Errors
///
/// Transport or server errors from the round-trip.
pub fn server_routed(
    client: &mut Client,
    case: &CaseSpec,
) -> Result<(f64, Option<RouteInfo>), ClientError> {
    let sla = Sla::tolerance(routed_tolerance(case)).expect("calibrated margins are finite");
    let opts = case_opts(case).accuracy(sla);
    let routed = client.query_distance(case.kind, &case.p, &case.q, &opts)?;
    Ok((routed.value, routed.route))
}

/// The value served through the **resident-dataset** path: the case's `q`
/// is uploaded as a one-entry dataset, a k=1 kNN query with `p` references
/// it by content-addressed id, and the raw distance is recovered from the
/// single neighbour's score (the queue negates scores for similarity
/// kinds, so LCS is negated back). The dataset is dropped afterwards.
///
/// # Errors
///
/// Transport or server errors from any of the three round-trips.
pub fn server_resident(client: &mut Client, case: &CaseSpec) -> Result<f64, ClientError> {
    let entries = vec![DatasetEntry {
        label: 0,
        series: case.q.clone(),
    }];
    let (dataset_id, _version) = client.upload_dataset("conformance-case", &entries)?;
    let outcome = client.query_knn(
        case.kind,
        1,
        &case.p,
        &[],
        &case_opts(case).dataset(DatasetRef::by_id(&dataset_id)),
    );
    let _ = client.drop_dataset(DatasetRef::by_id(&dataset_id));
    let outcome = outcome?.value;
    Ok(if case.kind.is_similarity() {
        -outcome.score
    } else {
        outcome.score
    })
}

/// Whether the one-shot aCAM layer runs this case, and if not, why not.
pub fn acam_eligibility(case: &CaseSpec) -> Result<(), &'static str> {
    if !case.thresholded() {
        return Err("no one-shot aCAM evaluation for non-thresholded kinds");
    }
    Ok(())
}

/// The one-shot aCAM match-plane value for an eligible case: a tuned
/// array (every comparator programmed exactly on the digital threshold, no
/// guard band), so the value is judged under [`mda_core::bounds::acam`]
/// but is in fact expected bitwise-identical to the reference — including
/// on knife-edge cases, where the inclusive comparator's equality arm is
/// exercised directly.
///
/// # Errors
///
/// Shape errors from the distance definitions.
pub fn acam(case: &CaseSpec) -> Result<f64, DistanceError> {
    OneShotMatcher::new(case.threshold).evaluate(case.kind, &case.p, &case.q)
}

/// Whether the streaming differential layer runs this case, and if not,
/// why not.
pub fn streaming_eligibility(case: &CaseSpec) -> Result<(), &'static str> {
    if case.p.is_empty() {
        return Err("empty query has no stream window");
    }
    if case.q.is_empty() {
        return Err("empty series yields no pushes");
    }
    if case.p.iter().chain(&case.q).any(|x| !x.is_finite()) {
        return Err("streams reject non-finite points by contract");
    }
    Ok(())
}

/// The **streaming differential** layer: the case's `p` becomes the
/// subsequence query of a push-mode stream, its `q` is cycled into a live
/// series about three-and-a-half windows long, and `mda-streaming`'s gate
/// recomputes every incremental operator output from scratch per push —
/// sliding z-norm, envelopes, the UCR cascade decision, and the
/// motif/discord records must all be **bitwise** equal to batch.
///
/// # Errors
///
/// The first push at which any operator diverged from its batch
/// recomputation (or a configuration rejection), as a display string.
pub fn streaming(case: &CaseSpec) -> Result<mda_streaming::DifferentialReport, String> {
    let window = case.p.len();
    let config = mda_streaming::StreamConfig {
        window,
        band: case.band.unwrap_or(0).min(window),
        query: case.p.clone(),
        threshold: None,
    };
    let target = 3 * window + window / 2 + 1;
    let mut stream = Vec::with_capacity(target + case.q.len());
    while stream.len() < target {
        stream.extend_from_slice(&case.q);
    }
    mda_streaming::check_series(&config, &stream).map_err(|e| e.to_string())
}

fn case_opts(case: &CaseSpec) -> QueryOptions {
    let mut opts = QueryOptions::new();
    if case.thresholded() {
        opts = opts.threshold(case.threshold);
    }
    if let Some(r) = case.band {
        opts = opts.band(r);
    }
    opts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::generate;

    #[test]
    fn reference_matches_direct_library_calls_bitwise() {
        for id in 0..60 {
            let case = generate(99, id);
            let via_adapter = reference(&case).unwrap();
            let direct = match case.kind {
                DistanceKind::Dtw if case.band.is_none() => {
                    Dtw::new().evaluate(&case.p, &case.q).unwrap()
                }
                _ => continue,
            };
            assert_eq!(via_adapter.to_bits(), direct.to_bits(), "case {id}");
        }
    }

    #[test]
    fn spice_eligibility_gates_by_structure() {
        for id in 0..120 {
            let case = generate(77, id);
            let (m, n) = (case.p.len(), case.q.len());
            match spice_eligibility(&case) {
                Ok(()) => {
                    if case.kind.uses_matrix_structure() {
                        assert!(m.max(n) <= SPICE_MATRIX_CAP);
                    } else {
                        assert!(m.max(n) <= SPICE_ROW_CAP);
                    }
                    assert!(case.band.is_none());
                }
                Err(reason) => assert!(!reason.is_empty()),
            }
        }
    }

    #[test]
    fn behavioural_layer_is_deterministic_per_case() {
        let case = generate(5, 17);
        let a = behavioural(&case).unwrap();
        let b = behavioural(&case).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn acam_layer_is_bitwise_identical_to_the_reference() {
        let mut eligible = 0;
        let mut knife_edges = 0;
        for id in 0..240 {
            let case = generate(31, id);
            if acam_eligibility(&case).is_err() {
                continue;
            }
            eligible += 1;
            if case.knife_edge() {
                knife_edges += 1;
            }
            let one_shot = acam(&case).unwrap();
            let reference = reference(&case).unwrap();
            assert_eq!(one_shot.to_bits(), reference.to_bits(), "case {id}");
        }
        assert!(eligible > 0);
        // The identity must have been exercised on boundary cases too.
        assert!(knife_edges > 0, "no knife-edge case in {eligible} eligible");
    }

    #[test]
    fn knife_edge_cases_are_excluded_from_the_spice_layer() {
        for id in 0..400 {
            let case = generate(23, id);
            if case.knife_edge() {
                assert!(spice_eligibility(&case).is_err(), "case {id}");
            }
        }
    }
}
