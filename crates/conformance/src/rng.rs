//! A splittable PRNG for deterministic case generation.
//!
//! Differential testing needs every case to be reproducible *in isolation*:
//! replaying case 173 must not require regenerating cases 0–172. A
//! splittable key — SplitMix64 finalization over (master seed, stream) —
//! gives each case an independent, high-quality seed derived purely from
//! its index, so the harness can regenerate any case from `(seed, id)`
//! alone and parallel or partial runs see identical inputs.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: a bijective avalanche over 64 bits.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A key in the split tree. Pure value type: splitting never mutates, so
/// the same `(seed, stream)` path always yields the same child.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitRng {
    key: u64,
}

impl SplitRng {
    /// Root of the tree for a master seed.
    pub fn new(seed: u64) -> Self {
        SplitRng { key: mix(seed) }
    }

    /// Derives the child key for a stream index.
    pub fn split(self, stream: u64) -> SplitRng {
        SplitRng {
            key: mix(self.key ^ mix(stream.wrapping_add(0xA5A5_A5A5_A5A5_A5A5))),
        }
    }

    /// The raw 64-bit key (used as a per-case noise seed).
    pub fn key(self) -> u64 {
        self.key
    }

    /// Materializes a generator seeded from this key.
    pub fn rng(self) -> StdRng {
        StdRng::seed_from_u64(self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn draws(seed: u64, stream: u64) -> Vec<u64> {
        let mut rng = SplitRng::new(seed).split(stream).rng();
        (0..8).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn same_path_same_stream() {
        assert_eq!(draws(7, 3), draws(7, 3));
    }

    #[test]
    fn sibling_streams_differ() {
        let root = SplitRng::new(7);
        let a = root.split(0).rng().next_u64();
        let b = root.split(1).rng().next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn split_is_pure() {
        let root = SplitRng::new(9);
        let first = root.split(5);
        let second = root.split(5);
        assert_eq!(first, second);
        assert_eq!(
            root,
            SplitRng::new(9),
            "splitting must not mutate the parent"
        );
    }

    #[test]
    fn keys_avalanche_across_adjacent_seeds() {
        let a = SplitRng::new(1).key();
        let b = SplitRng::new(2).key();
        assert!((a ^ b).count_ones() > 16, "{a:x} vs {b:x}");
    }

    #[test]
    fn rng_draws_are_in_range() {
        let mut rng = SplitRng::new(3).split(4).rng();
        for _ in 0..100 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }
}
