//! # mda-conformance
//!
//! Cross-layer differential conformance harness for the memristor distance
//! accelerator, with seeded fault injection.
//!
//! The repository implements the same six distance functions four times
//! over: a digital DP reference (`mda-distance`), a behavioural analog
//! model (`mda-core`), device-level SPICE netlists (`mda_core::pe`), and a
//! TCP service (`mda-server`). This crate is the subsystem that keeps the
//! four honest against each other:
//!
//! * [`case`] turns `(seed, id)` into a fully-specified query via a
//!   splittable PRNG ([`rng`]) — any case regenerates in isolation;
//! * [`layers`] runs one case through each implementation;
//! * [`bounds`] says how far each analog layer may stray from the digital
//!   reference, per function;
//! * [`shrink`] minimizes a disagreeing case to a small reproducer;
//! * [`report`] serializes reproducers (and parses them back for replay);
//! * [`faults`] injects seeded memristor faults under the tuning loop and
//!   checks graceful degradation: recovery within bounds for in-range
//!   variation, typed errors — never silent wrong answers — for stuck
//!   cells;
//! * [`harness`] orchestrates a whole run and emits one deterministic JSON
//!   report.
//!
//! The `conformance` binary fronts all of it for CI (`--quick`) and for
//! replaying a reproducer artifact (`--replay FILE`).

pub mod bounds;
pub mod case;
pub mod faults;
pub mod harness;
pub mod layers;
pub mod report;
pub mod rng;
pub mod shrink;

pub use bounds::Bound;
pub use case::{generate, CaseSpec, Family, LengthClass};
pub use faults::{run_fault_suite, FaultSuiteOutcome};
pub use harness::{replay, run, HarnessConfig, RunOutcome};
pub use report::{load_case, write_reproducer, Failure};
pub use rng::SplitRng;
pub use shrink::shrink;
