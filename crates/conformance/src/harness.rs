//! The differential harness: generate N seeded cases, run each through
//! every layer, compare against the digital reference under per-function
//! bounds, shrink whatever disagrees, and emit one deterministic JSON
//! report.
//!
//! Determinism contract: with the same seed and case count, the report is
//! byte-identical across runs — object keys keep insertion order, floats
//! print through Rust's shortest-roundtrip `Display`, reproducer entries
//! list stable filenames (never absolute paths), and nothing derived from
//! wall-clock time or environment enters the tree.

use std::collections::BTreeMap;
use std::path::PathBuf;

use mda_server::client::Client;
use mda_server::json::Json;
use mda_server::{Server, ServerConfig};

use crate::bounds;
use crate::case::{generate, CaseSpec};
use crate::faults::run_fault_suite;
use crate::layers;
use crate::report::{write_reproducer, Failure};
use crate::shrink::shrink;

/// Everything a harness run is parameterized by.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Master seed; every case stream splits off it.
    pub seed: u64,
    /// Number of differential cases to run.
    pub cases: u64,
    /// Round-trip every case through a loopback `mda-server`.
    pub with_server: bool,
    /// Solve the device-level SPICE netlists for eligible cases.
    pub with_spice: bool,
    /// Run the memristor fault-injection suite.
    pub with_faults: bool,
    /// Run the streaming differential gate (incremental operators must be
    /// bitwise-equal to from-scratch batch recomputation) on every case.
    pub with_streaming: bool,
    /// Directory shrunk reproducers are written to.
    pub out_dir: PathBuf,
    /// Max predicate evaluations the shrinker spends per disagreement.
    pub shrink_budget: usize,
    /// Multiplier on every layer bound (1.0 = the calibrated contract).
    /// Tests set 0.0 to force disagreements through the shrink/reproducer
    /// path.
    pub bound_scale: f64,
}

impl HarnessConfig {
    /// The full configuration at a given seed and case count: all four
    /// layers plus the fault plane.
    pub fn full(seed: u64, cases: u64) -> HarnessConfig {
        HarnessConfig {
            seed,
            cases,
            with_server: true,
            with_spice: true,
            with_faults: true,
            with_streaming: true,
            out_dir: PathBuf::from("results/conformance"),
            shrink_budget: 400,
            bound_scale: 1.0,
        }
    }
}

/// The result of one harness run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The deterministic JSON report.
    pub report: Json,
    /// Human-readable description of every failed check (empty = pass).
    pub failures: Vec<String>,
    /// Paths of the reproducers written for shrunk disagreements.
    pub reproducers: Vec<PathBuf>,
}

/// Relative error is only meaningful away from zero; below this reference
/// magnitude only the absolute term of a bound applies.
const REL_STAT_FLOOR: f64 = 1e-9;

#[derive(Debug, Default, Clone, Copy)]
struct LayerStats {
    cases: u64,
    max_abs: f64,
    max_rel: f64,
}

impl LayerStats {
    fn record(&mut self, value: f64, reference: f64) {
        self.cases += 1;
        let abs = (value - reference).abs();
        self.max_abs = self.max_abs.max(abs);
        if reference.abs() > REL_STAT_FLOOR {
            self.max_rel = self.max_rel.max(abs / reference.abs());
        }
    }

    fn json(&self) -> Json {
        Json::Obj(vec![
            ("cases".into(), Json::Num(self.cases as f64)),
            ("max_abs_err".into(), Json::Num(self.max_abs)),
            ("max_rel_err".into(), Json::Num(self.max_rel)),
        ])
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct KindStats {
    cases: u64,
    behavioural: LayerStats,
    spice: LayerStats,
    acam: LayerStats,
    server: LayerStats,
    server_resident: LayerStats,
    server_routed: LayerStats,
    /// Streaming differential gate runs (each one a bitwise pass).
    streaming_checks: u64,
    /// Points pushed across those runs.
    streaming_pushes: u64,
}

/// Runs one case through every enabled layer and returns the out-of-bound
/// (or errored) layers. An empty vector means all layers agreed.
fn check_case(
    case: &CaseSpec,
    with_spice: bool,
    with_streaming: bool,
    bound_scale: f64,
    client: Option<&mut Client>,
    stats: Option<&mut KindStats>,
) -> Vec<Failure> {
    let mut failures = Vec::new();
    let reference = match layers::reference(case) {
        Ok(v) if v.is_finite() => v,
        Ok(v) => {
            failures.push(Failure {
                layer: "reference",
                value: v,
                reference: v,
                margin: 0.0,
                error: Some("non-finite reference".into()),
            });
            return failures;
        }
        Err(e) => {
            failures.push(Failure {
                layer: "reference",
                value: f64::NAN,
                reference: f64::NAN,
                margin: 0.0,
                error: Some(e.to_string()),
            });
            return failures;
        }
    };
    let mut stats = stats;

    // Analog layers saturate at the fabric's encodable ceiling; they are
    // judged against the saturated reference (see `layers::encodable_ceiling`).
    let ceiling = layers::encodable_ceiling();
    let analog_reference = reference.clamp(-ceiling, ceiling);

    // Knife-edge (boundary-stratum) cases sit exactly on a thresholded
    // comparator's boundary: an analog comparator flips there on sub-LSB
    // noise, so the analog layers are exempt. Every digital layer — and
    // the tuned aCAM match plane below — still must agree bitwise.
    let knife_edge = case.knife_edge();

    let behavioural_bound =
        bounds::behavioural(case.kind, case.p.len().max(case.q.len())).scaled(bound_scale);
    if !knife_edge {
        match layers::behavioural(case) {
            Ok(v) => {
                if let Some(s) = stats.as_deref_mut() {
                    s.behavioural.record(v, analog_reference);
                }
                if !behavioural_bound.allows(v, analog_reference) {
                    failures.push(Failure {
                        layer: "behavioural",
                        value: v,
                        reference: analog_reference,
                        margin: behavioural_bound.margin(analog_reference),
                        error: None,
                    });
                }
            }
            Err(e) => failures.push(Failure {
                layer: "behavioural",
                value: f64::NAN,
                reference: analog_reference,
                margin: behavioural_bound.margin(analog_reference),
                error: Some(e.to_string()),
            }),
        }
    }

    if with_spice && layers::spice_eligibility(case).is_ok() {
        let bound = bounds::spice(case.kind).scaled(bound_scale);
        match layers::spice(case) {
            Ok(v) => {
                if let Some(s) = stats.as_deref_mut() {
                    s.spice.record(v, analog_reference);
                }
                if !bound.allows(v, analog_reference) {
                    failures.push(Failure {
                        layer: "spice",
                        value: v,
                        reference: analog_reference,
                        margin: bound.margin(analog_reference),
                        error: None,
                    });
                }
            }
            Err(e) => failures.push(Failure {
                layer: "spice",
                value: f64::NAN,
                reference: analog_reference,
                margin: bound.margin(analog_reference),
                error: Some(e.to_string()),
            }),
        }
    }

    // The one-shot aCAM match plane, judged under its calibrated bound
    // against the *raw* reference (the match plane counts comparator
    // outcomes; it has no output-ceiling saturation). A tuned array is in
    // fact expected bitwise-identical, so this layer runs on knife-edge
    // cases too — that's where the inclusive comparator's equality arm is
    // exercised.
    if layers::acam_eligibility(case).is_ok() {
        let bound = bounds::acam(case.kind, case.p.len().max(case.q.len())).scaled(bound_scale);
        match layers::acam(case) {
            Ok(v) => {
                if let Some(s) = stats.as_deref_mut() {
                    s.acam.record(v, reference);
                }
                if !bound.allows(v, reference) {
                    failures.push(Failure {
                        layer: "acam",
                        value: v,
                        reference,
                        margin: bound.margin(reference),
                        error: None,
                    });
                }
            }
            Err(e) => failures.push(Failure {
                layer: "acam",
                value: f64::NAN,
                reference,
                margin: bound.margin(reference),
                error: Some(e.to_string()),
            }),
        }
    }

    // The streaming gate is bitwise: the incremental operator DAG either
    // reproduces the from-scratch batch recomputation exactly at every
    // push, or the first diverging push is a finding. No margin applies.
    if with_streaming && layers::streaming_eligibility(case).is_ok() {
        match layers::streaming(case) {
            Ok(report) => {
                if let Some(s) = stats.as_deref_mut() {
                    s.streaming_checks += 1;
                    s.streaming_pushes += report.pushes;
                }
            }
            Err(e) => failures.push(Failure {
                layer: "streaming_differential",
                value: f64::NAN,
                reference,
                margin: 0.0,
                error: Some(e),
            }),
        }
    }

    if let Some(client) = client {
        // The server runs the same digital engine, so the bound here is
        // exact bit equality — any drift is a wire/codec finding.
        match layers::server(client, case) {
            Ok(v) => {
                if let Some(s) = stats.as_deref_mut() {
                    s.server.record(v, reference);
                }
                if v.to_bits() != reference.to_bits() {
                    failures.push(Failure {
                        layer: "server",
                        value: v,
                        reference,
                        margin: 0.0,
                        error: None,
                    });
                }
            }
            Err(e) => failures.push(Failure {
                layer: "server",
                value: f64::NAN,
                reference,
                margin: 0.0,
                error: Some(e.to_string()),
            }),
        }
        // The resident-dataset path must agree bitwise too: uploading the
        // corpus cannot perturb a single bit of any series.
        match layers::server_resident(client, case) {
            Ok(v) => {
                if let Some(s) = stats.as_deref_mut() {
                    s.server_resident.record(v, reference);
                }
                if v.to_bits() != reference.to_bits() {
                    failures.push(Failure {
                        layer: "server_resident",
                        value: v,
                        reference,
                        margin: 0.0,
                        error: None,
                    });
                }
            }
            Err(e) => failures.push(Failure {
                layer: "server_resident",
                value: f64::NAN,
                reference,
                margin: 0.0,
                error: Some(e.to_string()),
            }),
        }
        // The routed path carries an explicit tolerance SLA: the reply
        // must report its route, the reported bound must fit the SLA, and
        // the value must land within the tolerance of the raw reference —
        // whichever backend answered.
        let epsilon =
            (layers::routed_tolerance(case) * bound_scale.max(1.0)).max(f64::MIN_POSITIVE);
        match layers::server_routed(client, case) {
            Ok((v, route)) => {
                if let Some(s) = stats {
                    s.server_routed.record(v, reference);
                }
                let err = (v - reference).abs();
                let sla_violated = err > epsilon || err.is_nan();
                let report_missing = route.is_none();
                let bound_too_wide = route
                    .map(|r| r.bound.margin(layers::encodable_ceiling()) > epsilon)
                    .unwrap_or(false);
                if sla_violated || report_missing || bound_too_wide {
                    failures.push(Failure {
                        layer: "server_routed",
                        value: v,
                        reference,
                        margin: epsilon,
                        error: if report_missing {
                            Some("reply carried no routing report".into())
                        } else if bound_too_wide {
                            Some("reported bound exceeds the requested tolerance".into())
                        } else {
                            None
                        },
                    });
                }
            }
            Err(e) => failures.push(Failure {
                layer: "server_routed",
                value: f64::NAN,
                reference,
                margin: epsilon,
                error: Some(e.to_string()),
            }),
        }
    }

    failures
}

/// Shrink predicate: a candidate still fails if any layer reproduces a
/// failure of the same class (same layer, same value-vs-error nature) as
/// the original. Candidates whose *reference* errors are never accepted —
/// the shrinker must not wander into invalid shapes.
fn still_fails(
    candidate: &CaseSpec,
    original: &Failure,
    with_spice: bool,
    with_streaming: bool,
    bound_scale: f64,
    client: Option<&mut Client>,
) -> bool {
    check_case(
        candidate,
        with_spice,
        with_streaming,
        bound_scale,
        client,
        None,
    )
    .iter()
    .any(|f| f.layer == original.layer && f.error.is_some() == original.error.is_some())
}

/// Runs the full harness: differential cases, shrinking, fault suite,
/// report assembly.
pub fn run(config: &HarnessConfig) -> RunOutcome {
    let mut failures: Vec<String> = Vec::new();
    let mut reproducers: Vec<PathBuf> = Vec::new();
    let mut reproducer_names: Vec<String> = Vec::new();

    let server = if config.with_server {
        match Server::start(ServerConfig::default()) {
            Ok(s) => Some(s),
            Err(e) => {
                failures.push(format!("cannot start loopback server: {e}"));
                None
            }
        }
    } else {
        None
    };
    let mut client = match &server {
        Some(s) => match Client::connect(s.local_addr()) {
            Ok(c) => Some(c),
            Err(e) => {
                failures.push(format!("cannot connect loopback client: {e}"));
                None
            }
        },
        None => None,
    };

    let mut per_kind: BTreeMap<&'static str, KindStats> = BTreeMap::new();
    let mut ledger: BTreeMap<(&'static str, &'static str, &'static str, &'static str), (u64, u64)> =
        BTreeMap::new();
    let mut disagreements = 0u64;

    for id in 0..config.cases {
        let case = generate(config.seed, id);
        let stats = per_kind.entry(case.kind.abbrev()).or_default();
        stats.cases += 1;
        let cell = ledger
            .entry((
                case.kind.abbrev(),
                case.structure(),
                case.class.label(),
                "none",
            ))
            .or_insert((0, 0));
        cell.0 += 1;
        if config.with_spice && layers::spice_eligibility(&case).is_ok() {
            cell.1 += 1;
        }

        let case_failures = check_case(
            &case,
            config.with_spice,
            config.with_streaming,
            config.bound_scale,
            client.as_mut(),
            Some(stats),
        );
        if case_failures.is_empty() {
            continue;
        }
        disagreements += case_failures.len() as u64;
        for failure in &case_failures {
            failures.push(format!(
                "seed {} case {id} [{} {} {}]: layer `{}` value {} vs reference {} (margin {}{})",
                config.seed,
                case.kind.abbrev(),
                case.structure(),
                case.class.label(),
                failure.layer,
                failure.value,
                failure.reference,
                failure.margin,
                failure
                    .error
                    .as_deref()
                    .map(|e| format!("; error: {e}"))
                    .unwrap_or_default(),
            ));
        }

        // Shrink against the first (most upstream) failure and pin it.
        let original = &case_failures[0];
        let shrunk = shrink(
            &case,
            |cand| {
                still_fails(
                    cand,
                    original,
                    config.with_spice,
                    config.with_streaming,
                    config.bound_scale,
                    client.as_mut(),
                )
            },
            config.shrink_budget,
        );
        let shrunk_failures = check_case(
            &shrunk,
            config.with_spice,
            config.with_streaming,
            config.bound_scale,
            client.as_mut(),
            None,
        );
        let pinned = shrunk_failures
            .iter()
            .find(|f| f.layer == original.layer)
            .cloned()
            .unwrap_or_else(|| original.clone());
        match write_reproducer(&config.out_dir, &shrunk, &pinned) {
            Ok(path) => {
                reproducer_names.push(
                    path.file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default(),
                );
                reproducers.push(path);
            }
            Err(e) => failures.push(format!("cannot write reproducer for case {id}: {e}")),
        }
    }

    let fault_suite = if config.with_faults {
        let outcome = run_fault_suite(config.seed, client.as_mut());
        // Device-level coverage rows: the fault plane exercises cells under
        // variation and each hard-fault class.
        for (fault, count) in [
            ("variation", 16u64),
            ("stuck_at_hrs", 1),
            ("stuck_at_lrs", 1),
            ("dead_programming", 1),
        ] {
            ledger.insert(("device", "cell", "short", fault), (count, 0));
        }
        // The weighted end-to-end check drives a row PE with tuned weights.
        ledger.insert(("MD", "row", "short", "variation"), (1, 1));
        // The aCAM degradation sweep covers each thresholded kind under
        // variation (8 seeds) and every hard-fault class (4 plans).
        for kind in ["HamD", "EdD", "LCS"] {
            let structure = if kind == "HamD" { "row" } else { "matrix" };
            ledger.insert((kind, structure, "short", "acam_fault"), (12, 0));
        }
        failures.extend(outcome.failures);
        outcome.json
    } else {
        Json::Null
    };

    drop(client);
    if let Some(s) = server {
        s.shutdown_and_join();
    }

    let per_kind_json = Json::Obj(
        per_kind
            .iter()
            .map(|(kind, s)| {
                (
                    (*kind).to_string(),
                    Json::Obj(vec![
                        ("cases".into(), Json::Num(s.cases as f64)),
                        ("behavioural".into(), s.behavioural.json()),
                        ("spice".into(), s.spice.json()),
                        ("acam".into(), s.acam.json()),
                        ("server".into(), s.server.json()),
                        ("server_resident".into(), s.server_resident.json()),
                        ("server_routed".into(), s.server_routed.json()),
                        (
                            "streaming".into(),
                            Json::Obj(vec![
                                ("checks".into(), Json::Num(s.streaming_checks as f64)),
                                ("pushes".into(), Json::Num(s.streaming_pushes as f64)),
                            ]),
                        ),
                    ]),
                )
            })
            .collect(),
    );
    let ledger_json = Json::Arr(
        ledger
            .iter()
            .map(|((kind, structure, class, fault), (cases, spice))| {
                Json::Obj(vec![
                    ("kind".into(), Json::Str((*kind).into())),
                    ("structure".into(), Json::Str((*structure).into())),
                    ("class".into(), Json::Str((*class).into())),
                    ("fault".into(), Json::Str((*fault).into())),
                    ("cases".into(), Json::Num(*cases as f64)),
                    ("spice_cases".into(), Json::Num(*spice as f64)),
                ])
            })
            .collect(),
    );

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("conformance".into())),
        ("seed".into(), Json::Num(config.seed as f64)),
        ("cases".into(), Json::Num(config.cases as f64)),
        (
            "layers".into(),
            Json::Obj(vec![
                ("reference".into(), Json::Bool(true)),
                ("behavioural".into(), Json::Bool(true)),
                ("spice".into(), Json::Bool(config.with_spice)),
                ("acam".into(), Json::Bool(true)),
                ("server".into(), Json::Bool(config.with_server)),
                ("server_resident".into(), Json::Bool(config.with_server)),
                ("server_routed".into(), Json::Bool(config.with_server)),
                (
                    "streaming_differential".into(),
                    Json::Bool(config.with_streaming),
                ),
                ("faults".into(), Json::Bool(config.with_faults)),
            ]),
        ),
        ("disagreements".into(), Json::Num(disagreements as f64)),
        ("per_kind".into(), per_kind_json),
        ("ledger".into(), ledger_json),
        ("fault_suite".into(), fault_suite),
        (
            "reproducers".into(),
            Json::Arr(
                reproducer_names
                    .iter()
                    .map(|n| Json::Str(n.clone()))
                    .collect(),
            ),
        ),
        (
            "failures".into(),
            Json::Arr(failures.iter().map(|f| Json::Str(f.clone())).collect()),
        ),
        ("pass".into(), Json::Bool(failures.is_empty())),
    ]);

    RunOutcome {
        report,
        failures,
        reproducers,
    }
}

/// Replays a reproducer case through every layer, returning per-layer
/// failures exactly as the harness would judge them (server included when
/// `with_server`).
pub fn replay(case: &CaseSpec, with_server: bool) -> Vec<Failure> {
    let server = if with_server {
        Server::start(ServerConfig::default()).ok()
    } else {
        None
    };
    let mut client = server
        .as_ref()
        .and_then(|s| Client::connect(s.local_addr()).ok());
    let failures = check_case(case, true, true, 1.0, client.as_mut(), None);
    drop(client);
    if let Some(s) = server {
        s.shutdown_and_join();
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offline(seed: u64, cases: u64) -> HarnessConfig {
        HarnessConfig {
            seed,
            cases,
            with_server: false,
            with_spice: true,
            with_faults: false,
            with_streaming: true,
            out_dir: std::env::temp_dir().join("mda_conformance_harness_test"),
            shrink_budget: 100,
            bound_scale: 1.0,
        }
    }

    #[test]
    fn offline_run_is_clean_and_deterministic() {
        let a = run(&offline(42, 48));
        let b = run(&offline(42, 48));
        assert!(a.failures.is_empty(), "{:?}", a.failures);
        assert_eq!(format!("{}", a.report), format!("{}", b.report));
    }

    #[test]
    fn streaming_layer_runs_and_reports_checks() {
        let outcome = run(&offline(11, 48));
        assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
        let layers = outcome.report.get("layers").expect("layers");
        assert_eq!(
            layers.get("streaming_differential"),
            Some(&Json::Bool(true))
        );
        // Every eligible case ran the gate; pushed points accumulate.
        let per_kind = outcome.report.get("per_kind").expect("per_kind");
        let Json::Obj(kinds) = per_kind else {
            panic!("per_kind must be an object");
        };
        let total_checks: f64 = kinds
            .iter()
            .filter_map(|(_, v)| v.get("streaming").and_then(|s| s.get("checks")))
            .map(|c| match c {
                Json::Num(n) => *n,
                _ => 0.0,
            })
            .sum();
        assert!(total_checks > 0.0, "no streaming checks ran:\n{per_kind}");
    }

    #[test]
    fn report_carries_every_kind() {
        let outcome = run(&offline(7, 48));
        for abbrev in ["DTW", "LCS", "EdD", "HauD", "HamD", "MD"] {
            assert!(
                outcome
                    .report
                    .get("per_kind")
                    .and_then(|p| p.get(abbrev))
                    .is_some(),
                "missing {abbrev}"
            );
        }
    }

    #[test]
    fn a_rigged_bound_produces_a_shrunk_reproducer() {
        // Rig failure by replaying a case against an impossible bound via
        // the public pieces: force a fake failure and check the writer path
        // indirectly through `run` is exercised elsewhere; here assert the
        // shrink predicate plumbing judges a healthy case as passing.
        let case = crate::case::generate(3, 1);
        let fails = check_case(&case, true, true, 1.0, None, None);
        assert!(fails.is_empty(), "{fails:?}");
    }
}
