//! Seeded case generation: `(master seed, case id)` → one fully-specified
//! differential query, covering all six distance functions, both array
//! structures, four length classes and five trace families.
//!
//! Generation is *stratified*, not uniform: the kind round-robins with the
//! id and the length class cycles underneath it, so even a small `--quick`
//! run covers every kind × class combination. Everything else (family,
//! values, threshold, band) is drawn from the case's own split stream, so
//! any case regenerates in isolation.
//!
//! Value domains keep the analog fabric honest rather than comfortable:
//! magnitudes stay within the encodable window (±2.5 units against a
//! 25-unit ceiling), but thresholded comparisons are generated *decisive*
//! by default. The matrix DPs (LCS/EdD) compare every cross pair `(i, j)`,
//! not just aligned elements, so for the thresholded kinds all values are
//! snapped to a lattice of spacing `3·threshold`: any two values are then
//! either identical (decisive match) or at least three thresholds apart
//! (decisive mismatch). A difference right at the threshold is a
//! knife-edge where an *analog* comparator flips on sub-LSB noise and no
//! analog bound is meaningful.
//!
//! That snap used to be unconditional, which left a coverage hole: the
//! digital layers (reference, server, one-shot aCAM) resolve the inclusive
//! `|a − b| ≤ threshold` comparator deterministically even *exactly at*
//! the boundary, and nothing exercised that. A **boundary stratum** now
//! covers it: about a quarter of thresholded cases pin the threshold to an
//! exactly-representable 0.5, snap values to a lattice of spacing exactly
//! `threshold`, and force at least one aligned pair to sit precisely on
//! the boundary. Such cases are flagged by [`CaseSpec::knife_edge`] and
//! exempted from the analog layers (behavioural, SPICE), where a boundary
//! flip is physics rather than a finding — every digital layer still must
//! agree bitwise on them.

use mda_distance::DistanceKind;
use rand::Rng;

use crate::rng::SplitRng;

/// Length stratum of a generated pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LengthClass {
    /// 1–3 elements: degenerate corners, SPICE-eligible for matrix PEs.
    Tiny,
    /// 4–8 elements: SPICE-eligible for row PEs.
    Short,
    /// 9–16 elements: digital/behavioural/server only.
    Medium,
    /// Different lengths per side (2–6): warping/DP-specific corners.
    Mixed,
}

impl LengthClass {
    /// All classes, in ledger order.
    pub const ALL: [LengthClass; 4] = [
        LengthClass::Tiny,
        LengthClass::Short,
        LengthClass::Medium,
        LengthClass::Mixed,
    ];

    /// Stable lower-case label for reports and ledgers.
    pub fn label(self) -> &'static str {
        match self {
            LengthClass::Tiny => "tiny",
            LengthClass::Short => "short",
            LengthClass::Medium => "medium",
            LengthClass::Mixed => "mixed",
        }
    }
}

/// Shape family of the generated traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Bounded random walk.
    Walk,
    /// Sinusoid with random amplitude/frequency/phase.
    Sine,
    /// Constant level (exercises zero-variance and all-match paths).
    Constant,
    /// Flat trace with one spike.
    Spike,
    /// Linear ramp with an offset.
    Offset,
}

impl Family {
    /// Stable lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Family::Walk => "walk",
            Family::Sine => "sine",
            Family::Constant => "constant",
            Family::Spike => "spike",
            Family::Offset => "offset",
        }
    }
}

/// One fully-specified differential query.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    /// Master seed of the run that generated this case.
    pub seed: u64,
    /// Case index within the run.
    pub id: u64,
    /// Distance function under test.
    pub kind: DistanceKind,
    /// Length stratum.
    pub class: LengthClass,
    /// Trace shape family.
    pub family: Family,
    /// Match threshold (used by LCS/EdD/HamD; carried for all).
    pub threshold: f64,
    /// Sakoe–Chiba radius (DTW only).
    pub band: Option<usize>,
    /// First series.
    pub p: Vec<f64>,
    /// Second series.
    pub q: Vec<f64>,
    /// Seed for the behavioural accelerator's analog error model.
    pub noise_seed: u64,
}

impl CaseSpec {
    /// `true` for the functions whose comparator uses the threshold.
    pub fn thresholded(&self) -> bool {
        matches!(
            self.kind,
            DistanceKind::Lcs | DistanceKind::Edit | DistanceKind::Hamming
        )
    }

    /// Ledger structure label for this case's kind.
    pub fn structure(&self) -> &'static str {
        if self.kind.uses_matrix_structure() {
            "matrix"
        } else {
            "row"
        }
    }

    /// `true` when some cross pair of a thresholded case sits exactly on
    /// the match boundary (`|a − b| == threshold`, bitwise). The digital
    /// layers resolve the inclusive comparator deterministically there and
    /// must agree to the bit; an analog comparator legitimately flips on
    /// sub-LSB noise, so the harness exempts these cases from the
    /// behavioural and SPICE layers.
    pub fn knife_edge(&self) -> bool {
        if !self.thresholded() {
            return false;
        }
        let all = || self.p.iter().chain(&self.q);
        all().any(|&a| all().any(|&b| (a - b).abs() == self.threshold))
    }
}

/// Hard ceiling on generated values: well inside the 25-unit encodable
/// window, so an out-of-range error in any layer is a real finding.
pub const VALUE_CAP: f64 = 2.5;

fn clampv(x: f64) -> f64 {
    x.clamp(-VALUE_CAP, VALUE_CAP)
}

fn base_series<R: Rng + ?Sized>(family: Family, len: usize, rng: &mut R) -> Vec<f64> {
    match family {
        Family::Walk => {
            let mut level = rng.gen_range(-1.0..1.0);
            (0..len)
                .map(|_| {
                    level = clampv(level + rng.gen_range(-0.6..0.6));
                    level
                })
                .collect()
        }
        Family::Sine => {
            let amp = rng.gen_range(0.3..2.0);
            let freq = rng.gen_range(0.2..1.2);
            let phase = rng.gen_range(0.0..std::f64::consts::TAU);
            (0..len)
                .map(|i| clampv(amp * (freq * i as f64 + phase).sin()))
                .collect()
        }
        Family::Constant => {
            let level = rng.gen_range(-2.0..2.0);
            vec![level; len]
        }
        Family::Spike => {
            let at = rng.gen_range(0..len as u64) as usize;
            let height = rng.gen_range(1.0..2.5) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            (0..len)
                .map(|i| if i == at { height } else { 0.0 })
                .collect()
        }
        Family::Offset => {
            let offset = rng.gen_range(-1.5..1.5);
            let slope = rng.gen_range(-0.2..0.2);
            (0..len)
                .map(|i| clampv(offset + slope * i as f64))
                .collect()
        }
    }
}

/// Generates case `id` of the run seeded with `seed`.
///
/// The kind round-robins (`id % 6` over [`DistanceKind::ALL`]) and the
/// length class cycles underneath (`(id / 6) % 4`), with `Mixed` remapped
/// to `Short` for the equal-length row functions.
pub fn generate(seed: u64, id: u64) -> CaseSpec {
    let kind = DistanceKind::ALL[(id % DistanceKind::ALL.len() as u64) as usize];
    let mut class = LengthClass::ALL[((id / DistanceKind::ALL.len() as u64) % 4) as usize];
    if kind.requires_equal_length() && class == LengthClass::Mixed {
        class = LengthClass::Short;
    }

    let stream = SplitRng::new(seed).split(id);
    let mut rng = stream.rng();

    let family = match rng.gen_range(0..5u32) {
        0 => Family::Walk,
        1 => Family::Sine,
        2 => Family::Constant,
        3 => Family::Spike,
        _ => Family::Offset,
    };
    let mut threshold = [0.3, 0.5, 0.8][rng.gen_range(0..3u32) as usize];
    let is_thresholded = matches!(
        kind,
        DistanceKind::Lcs | DistanceKind::Edit | DistanceKind::Hamming
    );
    // Boundary stratum: pin the threshold to an exactly-representable 0.5
    // so lattice differences can land *precisely on* the match boundary
    // (see module docs).
    let boundary = is_thresholded && rng.gen_bool(0.25);
    if boundary {
        threshold = 0.5;
    }

    let (m, n) = match class {
        LengthClass::Tiny => {
            let l = rng.gen_range(1..=3u64) as usize;
            (l, l)
        }
        LengthClass::Short => {
            let l = rng.gen_range(4..=8u64) as usize;
            (l, l)
        }
        LengthClass::Medium => {
            let l = rng.gen_range(9..=16u64) as usize;
            (l, l)
        }
        LengthClass::Mixed => {
            let a = rng.gen_range(2..=6u64) as usize;
            let mut b = rng.gen_range(2..=6u64) as usize;
            if a == b {
                b = if b == 6 { 2 } else { b + 1 };
            }
            (a, b)
        }
    };

    let mut p = base_series(family, m, &mut rng);
    let mut q = if kind.requires_equal_length() || (m == n && rng.gen_bool(0.5)) {
        // Decisive perturbation of p: each element either matches well
        // inside the threshold or misses it by a wide margin.
        p.iter()
            .map(|&v| {
                if rng.gen_bool(0.5) {
                    clampv(v + rng.gen_range(0.0..0.2) * threshold)
                } else {
                    let delta = 2.5 * threshold + rng.gen_range(0.0..0.5);
                    // Step toward the interior so the cap cannot collapse
                    // the intended wide margin.
                    if v >= 0.0 {
                        v - delta
                    } else {
                        v + delta
                    }
                }
            })
            .collect()
    } else {
        base_series(family, n, &mut rng)
    };

    if is_thresholded {
        // Decisive mode snaps to a 3·threshold lattice so *every* cross
        // pair is either an exact match or ≥ 3 thresholds apart; boundary
        // mode snaps to a lattice of exactly `threshold`, where adjacent
        // lattice points differ by precisely the threshold (see module
        // docs).
        let lattice = if boundary { threshold } else { 3.0 * threshold };
        let snap = |v: f64| {
            let s = (v / lattice).round() * lattice;
            if s == 0.0 {
                0.0
            } else {
                s
            }
        };
        p.iter_mut().for_each(|v| *v = snap(*v));
        q.iter_mut().for_each(|v| *v = snap(*v));
        if boundary {
            // Guarantee at least one pair exactly on the boundary (toward
            // the interior so the step cannot leave the value window).
            q[0] = if p[0] >= 0.0 {
                p[0] - threshold
            } else {
                p[0] + threshold
            };
        }
    }

    // A band stresses the DTW configuration path; only meaningful for
    // equal lengths (a narrow band on mixed lengths can sever the path).
    let band = if kind == DistanceKind::Dtw && m == n && m >= 2 && rng.gen_bool(0.25) {
        Some(rng.gen_range(1..=3u64) as usize)
    } else {
        None
    };

    CaseSpec {
        seed,
        id,
        kind,
        class,
        family,
        threshold,
        band,
        p,
        q,
        // Masked to 53 bits so the seed survives the JSON number path of a
        // reproducer file exactly (f64 integers are exact below 2^53).
        noise_seed: stream.split(u64::MAX).key() >> 11,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for id in 0..48 {
            assert_eq!(generate(42, id), generate(42, id));
        }
    }

    #[test]
    fn all_kinds_and_classes_are_covered() {
        let mut seen = std::collections::BTreeSet::new();
        for id in 0..240 {
            let c = generate(7, id);
            seen.insert((c.kind.abbrev(), c.class.label()));
        }
        // 6 kinds x 4 classes, minus Mixed for the two row functions.
        assert_eq!(seen.len(), 6 * 4 - 2, "{seen:?}");
    }

    #[test]
    fn equal_length_kinds_always_get_equal_lengths() {
        for id in 0..300 {
            let c = generate(3, id);
            if c.kind.requires_equal_length() {
                assert_eq!(c.p.len(), c.q.len(), "case {id}");
            }
        }
    }

    #[test]
    fn values_stay_inside_the_encodable_cap() {
        for id in 0..300 {
            let c = generate(11, id);
            for &v in c.p.iter().chain(&c.q) {
                assert!(
                    v.abs() <= VALUE_CAP + 2.5 * 0.8 + 0.5 + 1e-9,
                    "case {id}: {v}"
                );
                assert!(v.is_finite());
            }
        }
    }

    #[test]
    fn bands_only_appear_on_equal_length_dtw() {
        for id in 0..400 {
            let c = generate(13, id);
            if c.band.is_some() {
                assert_eq!(c.kind, DistanceKind::Dtw);
                assert_eq!(c.p.len(), c.q.len());
            }
        }
    }

    #[test]
    fn thresholded_kinds_have_fully_decisive_cross_pairs() {
        for id in 0..300 {
            let c = generate(17, id);
            if !c.thresholded() || c.knife_edge() {
                // Boundary-stratum cases are deliberately indecisive; the
                // `boundary_stratum_*` tests cover them.
                continue;
            }
            for &a in c.p.iter().chain(&c.q) {
                for &b in c.p.iter().chain(&c.q) {
                    let d = (a - b).abs();
                    assert!(
                        d < 1e-9 || d > 2.0 * c.threshold,
                        "case {id}: knife-edge cross pair |{a} - {b}| vs threshold {}",
                        c.threshold
                    );
                }
            }
        }
    }

    #[test]
    fn boundary_stratum_emits_exact_threshold_pairs_for_every_thresholded_kind() {
        // Regression test for the coverage hole the stratum closes: the
        // 3·threshold snap alone can never produce a cross pair exactly on
        // the match boundary, so without the stratum no generated case
        // exercises the inclusive comparator's equality arm.
        let mut boundary_kinds = std::collections::BTreeSet::new();
        for id in 0..600 {
            let c = generate(23, id);
            if !c.knife_edge() {
                continue;
            }
            // Flagged cases really carry a bitwise-exact boundary pair...
            let exact = c.p.iter().chain(&c.q).any(|&a| {
                c.p.iter()
                    .chain(&c.q)
                    .any(|&b| (a - b).abs() == c.threshold)
            });
            assert!(exact, "case {id}");
            // ...at an exactly-representable threshold.
            assert_eq!(c.threshold, 0.5, "case {id}");
            boundary_kinds.insert(c.kind.abbrev());
        }
        assert_eq!(
            boundary_kinds.into_iter().collect::<Vec<_>>(),
            vec!["EdD", "HamD", "LCS"],
            "every thresholded kind must hit the boundary stratum"
        );
    }

    #[test]
    fn non_thresholded_kinds_are_never_knife_edge() {
        for id in 0..120 {
            let c = generate(29, id);
            if !c.thresholded() {
                assert!(!c.knife_edge(), "case {id}");
            }
        }
    }

    #[test]
    fn mixed_class_really_mixes_lengths() {
        let mut saw_mixed = false;
        for id in 0..240 {
            let c = generate(5, id);
            if c.class == LengthClass::Mixed {
                assert_ne!(c.p.len(), c.q.len(), "case {id}");
                saw_mixed = true;
            }
        }
        assert!(saw_mixed);
    }
}
