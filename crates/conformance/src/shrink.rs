//! Greedy case shrinker: minimize a disagreeing case while it keeps
//! disagreeing.
//!
//! The shrinker is generic over the failure predicate, so unit tests can
//! drive it with synthetic predicates and the harness plugs in the real
//! "any layer outside its bound" check. Candidate moves, in order of how
//! much they simplify:
//!
//! 1. truncate both series to their first halves;
//! 2. drop one aligned element (both sides for equal-length functions,
//!    one side at a time for the warping/DP functions);
//! 3. round every value to one decimal;
//! 4. zero out one element (both sides together).
//!
//! Each accepted move restarts the scan, so the result is a local fixpoint:
//! no single remaining move keeps the case failing. Candidates that would
//! make the case invalid (empty side, unequal lengths for row functions)
//! are never proposed, and a fixed evaluation budget bounds the total work
//! regardless of how pathological the predicate is.

use crate::case::CaseSpec;

fn truncate_halves(case: &CaseSpec) -> Option<CaseSpec> {
    if case.p.len() < 2 && case.q.len() < 2 {
        return None;
    }
    let mut c = case.clone();
    c.p.truncate(case.p.len().div_ceil(2).max(1));
    c.q.truncate(case.q.len().div_ceil(2).max(1));
    if c.kind.requires_equal_length() {
        let l = c.p.len().min(c.q.len());
        c.p.truncate(l);
        c.q.truncate(l);
    }
    Some(c)
}

fn drop_element(case: &CaseSpec, i: usize) -> Vec<CaseSpec> {
    let mut out = Vec::new();
    if case.kind.requires_equal_length() {
        if case.p.len() > 1 && i < case.p.len() {
            let mut c = case.clone();
            c.p.remove(i);
            c.q.remove(i);
            out.push(c);
        }
        return out;
    }
    if case.p.len() > 1 && i < case.p.len() {
        let mut c = case.clone();
        c.p.remove(i);
        out.push(c);
    }
    if case.q.len() > 1 && i < case.q.len() {
        let mut c = case.clone();
        c.q.remove(i);
        out.push(c);
    }
    out
}

fn round_values(case: &CaseSpec) -> Option<CaseSpec> {
    let round1 = |x: f64| (x * 10.0).round() / 10.0;
    let mut c = case.clone();
    c.p.iter_mut().for_each(|x| *x = round1(*x));
    c.q.iter_mut().for_each(|x| *x = round1(*x));
    (c != *case).then_some(c)
}

fn zero_element(case: &CaseSpec, i: usize) -> Option<CaseSpec> {
    let mut c = case.clone();
    let mut changed = false;
    if i < c.p.len() && c.p[i] != 0.0 {
        c.p[i] = 0.0;
        changed = true;
    }
    if i < c.q.len() && c.q[i] != 0.0 {
        c.q[i] = 0.0;
        changed = true;
    }
    changed.then_some(c)
}

/// Total size of a case: the quantity shrinking minimizes.
pub fn size(case: &CaseSpec) -> usize {
    case.p.len() + case.q.len() + case.p.iter().chain(&case.q).filter(|x| **x != 0.0).count()
}

/// Shrinks `case` while `still_fails` holds, spending at most `max_evals`
/// predicate evaluations. Returns the smallest failing case found (which
/// is `case` itself if no simplification preserves the failure).
pub fn shrink<F: FnMut(&CaseSpec) -> bool>(
    case: &CaseSpec,
    mut still_fails: F,
    max_evals: usize,
) -> CaseSpec {
    let mut best = case.clone();
    let mut evals = 0usize;
    let mut try_candidate = |cand: CaseSpec, best: &mut CaseSpec, evals: &mut usize| -> bool {
        if *evals >= max_evals || size(&cand) >= size(best) {
            return false;
        }
        *evals += 1;
        if still_fails(&cand) {
            *best = cand;
            true
        } else {
            false
        }
    };

    loop {
        let mut improved = false;

        if let Some(cand) = truncate_halves(&best) {
            improved |= try_candidate(cand, &mut best, &mut evals);
        }
        if !improved {
            let max_len = best.p.len().max(best.q.len());
            'drops: for i in (0..max_len).rev() {
                for cand in drop_element(&best, i) {
                    if try_candidate(cand, &mut best, &mut evals) {
                        improved = true;
                        break 'drops;
                    }
                }
            }
        }
        if !improved {
            if let Some(cand) = round_values(&best) {
                improved |= try_candidate(cand, &mut best, &mut evals);
            }
        }
        if !improved {
            for i in 0..best.p.len().max(best.q.len()) {
                if let Some(cand) = zero_element(&best, i) {
                    if try_candidate(cand, &mut best, &mut evals) {
                        improved = true;
                        break;
                    }
                }
            }
        }

        if !improved || evals >= max_evals {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::generate;

    #[test]
    fn shrink_minimizes_against_a_value_predicate() {
        // Failure: p still contains an element >= 2.0. The shrinker should
        // strip everything else down to (near) minimal series.
        let mut case = generate(1, 4); // HamD: equal-length row function
        case.p = vec![0.1, 2.5, 0.3, 0.4, 0.5, 0.6];
        case.q = vec![0.0; 6];
        let shrunk = shrink(&case, |c| c.p.iter().any(|x| *x >= 2.0), 500);
        assert!(shrunk.p.iter().any(|x| *x >= 2.0));
        assert_eq!(shrunk.p.len(), shrunk.q.len());
        assert!(shrunk.p.len() <= 2, "{:?}", shrunk.p);
    }

    #[test]
    fn shrink_preserves_equal_lengths_for_row_functions() {
        let mut case = generate(1, 4);
        assert!(case.kind.requires_equal_length());
        case.p = vec![1.0; 8];
        case.q = vec![0.5; 8];
        let shrunk = shrink(&case, |_| true, 200);
        assert_eq!(shrunk.p.len(), shrunk.q.len());
        assert!(!shrunk.p.is_empty());
    }

    #[test]
    fn shrink_returns_original_when_nothing_simpler_fails() {
        let case = generate(2, 0);
        let shrunk = shrink(&case, |c| *c == case, 200);
        assert_eq!(shrunk, case);
    }

    #[test]
    fn shrink_respects_the_evaluation_budget() {
        let mut case = generate(3, 4);
        case.p = (0..16).map(|i| i as f64 * 0.1 + 1.0).collect();
        case.q = vec![0.0; 16];
        let mut evals = 0usize;
        let _ = shrink(
            &case,
            |_| {
                evals += 1;
                true
            },
            10,
        );
        assert!(evals <= 10, "{evals}");
    }

    #[test]
    fn shrink_never_produces_empty_sides() {
        for id in 0..24 {
            let case = generate(9, id);
            let shrunk = shrink(&case, |_| true, 300);
            assert!(!shrunk.p.is_empty() && !shrunk.q.is_empty(), "case {id}");
        }
    }
}
