//! Per-layer, per-function error bounds.
//!
//! The calibrated bound tables moved to [`mda_core::bounds`] so the
//! routing layer can consult them without depending on this harness; this
//! module re-exports them under their historical path. See the source
//! module for the calibration story.

pub use mda_core::bounds::{acam, behavioural, spice, Bound};

#[cfg(test)]
mod tests {
    use super::*;
    use mda_distance::DistanceKind;

    /// The re-exported tables are the same objects the harness always used.
    #[test]
    fn historical_path_still_resolves_the_calibrated_tables() {
        let b = behavioural(DistanceKind::Edit, 16);
        assert_eq!(b, mda_core::bounds::behavioural(DistanceKind::Edit, 16));
        assert!(spice(DistanceKind::Dtw).allows(0.1, 0.0));
        assert_eq!(Bound::EXACT.margin(5.0), 0.0);
    }
}
