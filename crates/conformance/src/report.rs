//! Reproducer serialization and deterministic JSON helpers.
//!
//! A shrunk disagreement is written as a small self-contained JSON file
//! under `results/conformance/`: it carries the exact series (post-shrink,
//! so *not* regenerable from the seed), every parameter the layers need,
//! and the observed failure, plus the command line that replays it. The
//! format is parsed back by [`load_case`] using the same hand-rolled JSON
//! module the wire protocol uses, so a reproducer downloaded from a CI
//! artifact replays locally with no extra tooling.
//!
//! All JSON rendered here is deterministic: objects preserve insertion
//! order, numbers print through Rust's shortest-roundtrip `Display`, and
//! nothing derived from wall-clock time or environment ever enters the
//! tree — the same seed must produce byte-identical output on every run.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use mda_distance::DistanceKind;
use mda_server::json::Json;

use crate::case::{CaseSpec, Family, LengthClass};

/// One observed layer disagreement, as recorded in reports/reproducers.
#[derive(Debug, Clone, PartialEq)]
pub struct Failure {
    /// Which layer disagreed (`behavioural`, `spice`, `server`).
    pub layer: &'static str,
    /// The value that layer produced (`NaN` when it errored instead).
    pub value: f64,
    /// The digital reference value.
    pub reference: f64,
    /// The permitted deviation at that reference magnitude.
    pub margin: f64,
    /// Detail when the layer failed with an error rather than a value.
    pub error: Option<String>,
}

fn str_json(s: &str) -> Json {
    Json::Str(s.to_string())
}

fn series_json(xs: &[f64]) -> Json {
    Json::from_f64s(xs)
}

/// Serializes a case (plus its failure) into the reproducer document.
pub fn reproducer_json(case: &CaseSpec, failure: &Failure, path_hint: &str) -> Json {
    Json::Obj(vec![
        ("tool".into(), str_json("mda-conformance")),
        ("seed".into(), Json::Num(case.seed as f64)),
        ("case".into(), Json::Num(case.id as f64)),
        ("kind".into(), str_json(case.kind.abbrev())),
        ("class".into(), str_json(case.class.label())),
        ("family".into(), str_json(case.family.label())),
        ("threshold".into(), Json::Num(case.threshold)),
        (
            "band".into(),
            match case.band {
                Some(r) => Json::Num(r as f64),
                None => Json::Null,
            },
        ),
        ("noise_seed".into(), Json::Num(case.noise_seed as f64)),
        ("p".into(), series_json(&case.p)),
        ("q".into(), series_json(&case.q)),
        (
            "failure".into(),
            Json::Obj(vec![
                ("layer".into(), str_json(failure.layer)),
                ("value".into(), Json::Num(failure.value)),
                ("reference".into(), Json::Num(failure.reference)),
                ("margin".into(), Json::Num(failure.margin)),
                (
                    "error".into(),
                    match &failure.error {
                        Some(e) => str_json(e),
                        None => Json::Null,
                    },
                ),
            ]),
        ),
        (
            "replay".into(),
            str_json(&format!(
                "cargo run --release -p mda-conformance --bin conformance -- --replay {path_hint}"
            )),
        ),
    ])
}

/// The canonical reproducer filename for a case.
pub fn reproducer_filename(case: &CaseSpec) -> String {
    format!("repro_seed{}_case{}.json", case.seed, case.id)
}

/// Writes a shrunk reproducer under `dir`, returning its path.
///
/// # Errors
///
/// Filesystem errors creating the directory or writing the file.
pub fn write_reproducer(dir: &Path, case: &CaseSpec, failure: &Failure) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(reproducer_filename(case));
    let doc = reproducer_json(case, failure, &path.display().to_string());
    fs::write(&path, format!("{doc}\n"))?;
    Ok(path)
}

fn parse_class(label: &str) -> Result<LengthClass, String> {
    LengthClass::ALL
        .into_iter()
        .find(|c| c.label() == label)
        .ok_or_else(|| format!("unknown length class `{label}`"))
}

fn parse_family(label: &str) -> Result<Family, String> {
    [
        Family::Walk,
        Family::Sine,
        Family::Constant,
        Family::Spike,
        Family::Offset,
    ]
    .into_iter()
    .find(|f| f.label() == label)
    .ok_or_else(|| format!("unknown family `{label}`"))
}

/// Parses a reproducer document back into the case it pins.
///
/// # Errors
///
/// A description of the first malformed or missing field.
pub fn case_from_json(doc: &Json) -> Result<CaseSpec, String> {
    let num = |key: &str| {
        doc.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("`{key}` must be a number"))
    };
    let int = |key: &str| {
        doc.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer"))
    };
    let text = |key: &str| {
        doc.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("`{key}` must be a string"))
    };
    let series = |key: &str| {
        doc.get(key)
            .and_then(Json::as_f64_vec)
            .ok_or_else(|| format!("`{key}` must be an array of numbers"))
    };
    let band = match doc.get("band") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_usize()
                .ok_or_else(|| "`band` must be a non-negative integer".to_string())?,
        ),
    };
    Ok(CaseSpec {
        seed: int("seed")?,
        id: int("case")?,
        kind: text("kind")?
            .parse::<DistanceKind>()
            .map_err(|e| e.to_string())?,
        class: parse_class(text("class")?)?,
        family: parse_family(text("family")?)?,
        threshold: num("threshold")?,
        band,
        p: series("p")?,
        q: series("q")?,
        noise_seed: int("noise_seed")?,
    })
}

/// Loads a reproducer file from disk.
///
/// # Errors
///
/// IO or parse failures, as a human-readable description.
pub fn load_case(path: &Path) -> Result<CaseSpec, String> {
    let bytes = fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = Json::parse(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
    case_from_json(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::generate;

    fn failure() -> Failure {
        Failure {
            layer: "spice",
            value: 3.25,
            reference: 2.5,
            margin: 0.6,
            error: None,
        }
    }

    #[test]
    fn reproducer_roundtrips_the_case_bitwise() {
        for id in 0..36 {
            let case = generate(1234, id);
            let doc = reproducer_json(&case, &failure(), "x.json");
            let rendered = format!("{doc}");
            let parsed = Json::parse(rendered.as_bytes()).expect("self-rendered JSON");
            let back = case_from_json(&parsed).expect("roundtrip");
            assert_eq!(back, case, "case {id}");
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let case = generate(9, 3);
        let a = format!("{}", reproducer_json(&case, &failure(), "x.json"));
        let b = format!("{}", reproducer_json(&case, &failure(), "x.json"));
        assert_eq!(a, b);
    }

    #[test]
    fn write_and_load_roundtrip_via_disk() {
        let dir = std::env::temp_dir().join("mda_conformance_report_test");
        let case = generate(77, 5);
        let path = write_reproducer(&dir, &case, &failure()).expect("write");
        let back = load_case(&path).expect("load");
        assert_eq!(back, case);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_documents_fail_typed() {
        let doc = Json::parse(br#"{"seed": 1}"#).unwrap();
        let err = case_from_json(&doc).expect_err("missing fields");
        assert!(err.contains("`case`"), "{err}");
    }
}
