//! The fault-injection plane: seeded device faults under the tuning loop,
//! checked for the paper's graceful-degradation story.
//!
//! Two claims are exercised, mirroring Section 3.3:
//!
//! 1. **recovery** — for in-range process variation (σ sweeps up to the
//!    paper's ±25 %), the two-step tuning procedure pulls every device
//!    ratio back inside tolerance, and a distance computed with the
//!    *realized* (post-tuning) weights stays inside the SPICE layer's
//!    conformance bound against the *target*-weight reference;
//! 2. **typed failure** — stuck-at and dead-programming cells must surface
//!    as [`TuningError`] values at the device layer, be *refused* (no
//!    distance computed from a failed weight) at the harness layer, and
//!    come back as in-band `bad_request` errors over the server wire —
//!    never a panic, never a silently wrong value.
//!
//! The aCAM match plane adds a third, direction-only claim: a faulty or
//! variation-widened interval cell degrades to *always-match* (the
//! match-line AND loses one input), so under any fault or variation sweep
//! the one-shot values may only move in the false-accept direction —
//! mismatch counts (HamD, EdD) can only fall, match counts (LCS) can only
//! rise — never the reverse. A cell that could false-*reject* would break
//! the admissibility contract the search pre-filter is built on.

use mda_acam::{MarginPolicy, OneShotMatcher};
use mda_core::{pe, AcceleratorConfig};
use mda_distance::DistanceKind;
use mda_memristor::tuning::{try_tune_ratio, PulseSchedule, TuningError};
use mda_memristor::{BiolekParams, CellFault, FaultyMemristor, Memristor, ProcessVariation};
use mda_server::client::{Client, QueryOptions};
use mda_server::json::Json;
use mda_server::{ClientError, ErrorCode};

use crate::bounds;
use crate::rng::SplitRng;

/// Reference resistance all ratios are tuned against, Ω.
const REFERENCE_R: f64 = 50.0e3;
/// Target weight ratios per sweep (all reachable inside the HRS/LRS window
/// at ±25 % variation).
const TARGET_RATIOS: [f64; 4] = [0.5, 0.8, 1.0, 1.25];
/// Variation σ values swept for the recovery claim.
const SIGMAS: [f64; 3] = [0.05, 0.15, 0.25];
/// Post-tuning ratio error ceiling: 2× the 1 % tuning tolerance.
const POST_TUNING_CEILING: f64 = 0.02;

/// Outcome of the fault suite: a deterministic JSON section for the report
/// plus a flat list of failed checks (empty = suite passed).
#[derive(Debug)]
pub struct FaultSuiteOutcome {
    /// Report section under `"fault_suite"`.
    pub json: Json,
    /// Human-readable description of each failed check.
    pub failures: Vec<String>,
}

fn fab_device<R: rand::Rng + ?Sized>(
    variation: &ProcessVariation,
    nominal: f64,
    rng: &mut R,
) -> Memristor {
    Memristor::at_resistance(
        BiolekParams::paper_defaults(),
        variation.sample(nominal, rng),
    )
}

/// Recovery sweep: fabricate devices at each σ, tune, and assert the
/// post-tuning ratio error re-enters bounds.
fn recovery_sweep(seed: u64, failures: &mut Vec<String>) -> Json {
    let mut entries = Vec::new();
    for (i, &sigma) in SIGMAS.iter().enumerate() {
        let variation = ProcessVariation {
            absolute_tolerance: sigma,
            matched_tolerance: 0.01,
        };
        let mut rng = SplitRng::new(seed).split(1_000 + i as u64).rng();
        let mut converged = 0usize;
        let mut max_pre: f64 = 0.0;
        let mut max_post: f64 = 0.0;
        for (d, &ratio) in TARGET_RATIOS.iter().enumerate() {
            let mut device = fab_device(&variation, ratio * REFERENCE_R, &mut rng);
            let pre = (device.resistance() / REFERENCE_R / ratio - 1.0).abs();
            max_pre = max_pre.max(pre);
            match try_tune_ratio(
                &mut device,
                REFERENCE_R,
                ratio,
                0.01,
                PulseSchedule::default(),
                500,
                1.0e-3,
                &mut rng,
            ) {
                Ok(_) => {
                    let post = (device.resistance() / REFERENCE_R / ratio - 1.0).abs();
                    max_post = max_post.max(post);
                    if post <= POST_TUNING_CEILING {
                        converged += 1;
                    } else {
                        failures.push(format!(
                            "recovery sigma={sigma} device {d}: post-tuning error {post} above {POST_TUNING_CEILING}"
                        ));
                    }
                }
                Err(e) => failures.push(format!(
                    "recovery sigma={sigma} device {d}: tuning failed: {e}"
                )),
            }
        }
        entries.push(Json::Obj(vec![
            ("sigma".into(), Json::Num(sigma)),
            ("devices".into(), Json::Num(TARGET_RATIOS.len() as f64)),
            ("converged".into(), Json::Num(converged as f64)),
            ("max_pre_tuning_error".into(), Json::Num(max_pre)),
            ("max_post_tuning_error".into(), Json::Num(max_post)),
            (
                "recovered".into(),
                Json::Bool(converged == TARGET_RATIOS.len()),
            ),
        ]));
    }
    Json::Arr(entries)
}

/// End-to-end recovery: a weighted Manhattan distance computed by the
/// SPICE row PE with the *realized* post-tuning weights must stay inside
/// the MD conformance bound against the target-weight digital value.
fn weighted_end_to_end(seed: u64, failures: &mut Vec<String>) -> Json {
    let variation = ProcessVariation {
        absolute_tolerance: 0.25,
        matched_tolerance: 0.01,
    };
    let mut rng = SplitRng::new(seed).split(2_000).rng();
    let mut realized = Vec::new();
    let mut tuned_ok = true;
    for &ratio in &TARGET_RATIOS {
        let mut device = fab_device(&variation, ratio * REFERENCE_R, &mut rng);
        match try_tune_ratio(
            &mut device,
            REFERENCE_R,
            ratio,
            0.01,
            PulseSchedule::default(),
            500,
            1.0e-3,
            &mut rng,
        ) {
            Ok(_) => realized.push(device.resistance() / REFERENCE_R),
            Err(e) => {
                tuned_ok = false;
                failures.push(format!("weighted end-to-end: tuning failed: {e}"));
                realized.push(ratio);
            }
        }
    }
    let p: [f64; 4] = [0.0, 1.5, -1.0, 2.0];
    let q: [f64; 4] = [0.5, 0.0, -2.0, 0.5];
    let digital: f64 = p
        .iter()
        .zip(&q)
        .zip(&TARGET_RATIOS)
        .map(|((a, b), w)| w * (a - b).abs())
        .sum();
    let config = AcceleratorConfig::paper_defaults();
    let bound = bounds::spice(DistanceKind::Manhattan);
    let (value, within) = match pe::manhattan::evaluate_dc(&config, &p, &q, &realized) {
        Ok(v) => (v, bound.allows(v, digital)),
        Err(e) => {
            failures.push(format!("weighted end-to-end: SPICE failed: {e}"));
            (f64::NAN, false)
        }
    };
    if tuned_ok && !within {
        failures.push(format!(
            "weighted end-to-end: SPICE value {value} vs digital {digital} outside bound"
        ));
    }
    Json::Obj(vec![
        ("function".into(), Json::Str("MD".into())),
        ("target_weights".into(), Json::from_f64s(&TARGET_RATIOS)),
        ("realized_weights".into(), Json::from_f64s(&realized)),
        ("digital".into(), Json::Num(digital)),
        ("spice".into(), Json::Num(value)),
        ("within_bound".into(), Json::Bool(within)),
    ])
}

fn error_class(e: &TuningError) -> &'static str {
    match e {
        TuningError::InvalidParameter { .. } => "invalid_parameter",
        TuningError::TargetUnreachable { .. } => "target_unreachable",
        TuningError::DidNotConverge { .. } => "did_not_converge",
        _ => "other",
    }
}

/// Untunable-fault checks: every fault class must fail *typed* and the
/// harness must refuse to compute a distance from the failed weight.
fn untunable_suite(seed: u64, failures: &mut Vec<String>) -> Json {
    let cases: [(CellFault, &str); 3] = [
        (CellFault::StuckAtHrs, "target_unreachable"),
        (CellFault::StuckAtLrs, "target_unreachable"),
        (CellFault::DeadProgramming, "did_not_converge"),
    ];
    let mut entries = Vec::new();
    for (i, (fault, expected)) in cases.into_iter().enumerate() {
        let mut rng = SplitRng::new(seed).split(3_000 + i as u64).rng();
        let inner = Memristor::at_resistance(BiolekParams::paper_defaults(), 60.0e3);
        let mut cell = FaultyMemristor::new(inner, fault);
        let result = try_tune_ratio(
            &mut cell,
            REFERENCE_R,
            1.0,
            0.01,
            PulseSchedule::default(),
            200,
            1.0e-3,
            &mut rng,
        );
        // Graceful degradation: a failed weight never reaches a PE — the
        // distance for this lane is *refused*, not silently computed with
        // whatever resistance the stuck cell happens to read.
        let (class, refused) = match result {
            Ok(report) => {
                failures.push(format!(
                    "fault {}: tuning reported success ({} iterations) on an untunable cell",
                    fault.label(),
                    report.iterations
                ));
                ("converged", false)
            }
            Err(e) => (error_class(&e), true),
        };
        if refused && class != expected {
            failures.push(format!(
                "fault {}: expected `{expected}`, got `{class}`",
                fault.label()
            ));
        }
        entries.push(Json::Obj(vec![
            ("fault".into(), Json::Str(fault.label().into())),
            ("expected".into(), Json::Str(expected.into())),
            ("observed".into(), Json::Str(class.into())),
            ("value_refused".into(), Json::Bool(refused)),
        ]));
    }
    Json::Arr(entries)
}

/// aCAM degradation sweep: for each thresholded kind, the one-shot value
/// from variation-widened and hard-faulted arrays must only ever move in
/// the false-accept direction against the tuned (digital-exact) value.
fn acam_degradation(seed: u64, failures: &mut Vec<String>) -> Json {
    let p = [0.0, 0.5, -1.0, 1.5, -2.0, 0.5];
    let q = [0.5, 0.5, -2.5, 0.0, -2.0, -1.0];
    let threshold = 0.5;
    let kinds: [(DistanceKind, bool); 3] = [
        (DistanceKind::Hamming, false),
        (DistanceKind::Edit, false),
        (DistanceKind::Lcs, true), // similarity: faults can only raise it
    ];
    let faults = [
        CellFault::StuckAtHrs,
        CellFault::StuckAtLrs,
        CellFault::DeadProgramming,
        CellFault::Drift(1.4),
    ];
    let mut entries = Vec::new();
    for (kind, is_similarity) in kinds {
        let tuned = match OneShotMatcher::new(threshold).evaluate(kind, &p, &q) {
            Ok(v) => v,
            Err(e) => {
                failures.push(format!("acam {kind}: tuned evaluation failed: {e}"));
                continue;
            }
        };
        let mut sweeps = 0u64;
        let mut max_shift: f64 = 0.0;
        let mut check = |label: &str, matcher: &OneShotMatcher| match matcher.evaluate(kind, &p, &q)
        {
            Ok(v) => {
                sweeps += 1;
                let shift = if is_similarity { v - tuned } else { tuned - v };
                max_shift = max_shift.max(shift);
                if shift < 0.0 {
                    failures.push(format!(
                        "acam {kind} {label}: value {v} moved in the false-reject \
                         direction against tuned {tuned}"
                    ));
                }
            }
            Err(e) => failures.push(format!("acam {kind} {label}: evaluation failed: {e}")),
        };
        for s in 0..8u64 {
            let matcher =
                OneShotMatcher::new(threshold).with_policy(MarginPolicy::paper_defaults(seed ^ s));
            check("variation", &matcher);
        }
        for (i, fault) in faults.iter().enumerate() {
            let matcher = OneShotMatcher::new(threshold)
                .with_fault(i % p.len(), (2 * i + 1) % q.len(), *fault)
                .with_fault((i + 3) % p.len(), i % q.len(), *fault);
            check(fault.label(), &matcher);
        }
        entries.push(Json::Obj(vec![
            ("function".into(), Json::Str(kind.abbrev().into())),
            ("tuned".into(), Json::Num(tuned)),
            ("sweeps".into(), Json::Num(sweeps as f64)),
            ("max_false_accept_shift".into(), Json::Num(max_shift)),
        ]));
    }
    Json::Arr(entries)
}

/// Server round-trip: the degraded-query path (a stuck column excluded
/// from a row function's lanes leaves mismatched series lengths) must
/// come back as a typed in-band error, and the connection must remain
/// usable afterwards.
fn server_roundtrip(client: &mut Client, failures: &mut Vec<String>) -> Json {
    let p = [0.0, 1.0, 2.0];
    let q = [0.0, 1.0]; // one lane dropped by a stuck column
    let outcome = client.query_distance(DistanceKind::Hamming, &p, &q, &QueryOptions::new());
    let (typed, code) = match outcome {
        Err(ClientError::Server { code, .. }) => {
            let ok = code == ErrorCode::BadRequest;
            if !ok {
                failures.push(format!(
                    "server degraded query: expected bad_request, got {code}"
                ));
            }
            (ok, format!("{code}"))
        }
        Err(e) => {
            failures.push(format!("server degraded query: non-typed failure: {e}"));
            (false, "transport".into())
        }
        Ok(v) => {
            failures.push(format!(
                "server degraded query: silently answered {} for mismatched lanes",
                v.value
            ));
            (false, "value".into())
        }
    };
    let alive = client.ping().is_ok();
    if !alive {
        failures.push("server connection unusable after typed error".into());
    }
    Json::Obj(vec![
        ("query".into(), Json::Str("HamD length mismatch".into())),
        ("typed_error".into(), Json::Bool(typed)),
        ("code".into(), Json::Str(code)),
        ("connection_survives".into(), Json::Bool(alive)),
    ])
}

/// Runs the whole fault plane. `client` is the loopback server connection
/// (skipped when the harness runs without a server).
pub fn run_fault_suite(seed: u64, client: Option<&mut Client>) -> FaultSuiteOutcome {
    let mut failures = Vec::new();
    let recovery = recovery_sweep(seed, &mut failures);
    let weighted = weighted_end_to_end(seed, &mut failures);
    let untunable = untunable_suite(seed, &mut failures);
    let acam = acam_degradation(seed, &mut failures);
    let server = match client {
        Some(c) => server_roundtrip(c, &mut failures),
        None => Json::Null,
    };
    let json = Json::Obj(vec![
        ("recovery_sweep".into(), recovery),
        ("weighted_end_to_end".into(), weighted),
        ("untunable".into(), untunable),
        ("acam_degradation".into(), acam),
        ("server_roundtrip".into(), server),
        ("failures".into(), Json::Num(failures.len() as f64)),
    ]);
    FaultSuiteOutcome { json, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_suite_passes_without_a_server() {
        let outcome = run_fault_suite(42, None);
        assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
    }

    #[test]
    fn fault_suite_is_deterministic() {
        let a = format!("{}", run_fault_suite(7, None).json);
        let b = format!("{}", run_fault_suite(7, None).json);
        assert_eq!(a, b);
    }
}
