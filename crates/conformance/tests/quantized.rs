//! Conformance of the opt-in quantized (i16 codes, f32 accumulation) DTW
//! kernel against the exact f64 reference, under the same calibrated
//! behavioural bounds the analog layer is held to: converter resolution is
//! exactly the error source those bounds price in, so the digital mirror of
//! the converter interface must sit comfortably inside them.

use mda_conformance::bounds;
use mda_conformance::case::generate;
use mda_distance::quantized::QuantizedDtw;
use mda_distance::{Band, DistanceKind, Dtw};

fn dtw_cases(seed: u64, want: usize) -> Vec<(mda_conformance::CaseSpec, Band)> {
    let mut cases = Vec::new();
    let mut id = 0u64;
    while cases.len() < want && id < 10_000 {
        let case = generate(seed, id);
        id += 1;
        if case.kind != DistanceKind::Dtw {
            continue;
        }
        let band = case.band.map_or(Band::Full, Band::SakoeChiba);
        cases.push((case, band));
    }
    cases
}

#[test]
fn quantized_dtw_stays_within_behavioural_bounds() {
    let mut checked = 0usize;
    for (case, band) in dtw_cases(0xD17AD, 120) {
        let exact = match Dtw::new().with_band(band).distance(&case.p, &case.q) {
            Ok(d) => d,
            Err(_) => {
                // Band admits no warping path: the quantized kernel must
                // refuse the same inputs rather than fabricate a value.
                assert!(
                    QuantizedDtw::paper_reference()
                        .with_band(band)
                        .distance(&case.p, &case.q)
                        .is_err(),
                    "case {} must refuse an infeasible band",
                    case.id
                );
                continue;
            }
        };
        let quant = QuantizedDtw::paper_reference()
            .with_band(band)
            .distance(&case.p, &case.q)
            .unwrap();
        let len = case.p.len().max(case.q.len());
        let bound = bounds::behavioural(DistanceKind::Dtw, len);
        assert!(
            bound.allows(quant, exact),
            "case {}: quantized {} vs exact {} exceeds margin {} at len {}",
            case.id,
            quant,
            exact,
            bound.margin(exact),
            len
        );
        checked += 1;
    }
    assert!(checked >= 40, "only {checked} feasible DTW cases checked");
}

#[test]
fn quantization_error_is_nonzero_and_resolution_dependent() {
    // The bound must be doing real work: off-grid inputs deviate, and a
    // coarser grid deviates more (summed over a case batch — a single case
    // can get lucky with cancellation).
    let coarse = QuantizedDtw::new(mda_distance::quantized::QuantSpec::new(4, 12.5));
    let fine = QuantizedDtw::paper_reference();
    let mut coarse_err = 0.0f64;
    let mut fine_err = 0.0f64;
    let mut any_deviation = false;
    for (case, band) in dtw_cases(0x5EED, 60) {
        let Ok(exact) = Dtw::new().with_band(band).distance(&case.p, &case.q) else {
            continue;
        };
        let f = fine.with_band(band).distance(&case.p, &case.q).unwrap();
        let c = coarse.with_band(band).distance(&case.p, &case.q).unwrap();
        fine_err += (f - exact).abs();
        coarse_err += (c - exact).abs();
        if f != exact {
            any_deviation = true;
        }
    }
    assert!(any_deviation, "8-bit grid never deviated — test is vacuous");
    assert!(
        coarse_err > fine_err,
        "4-bit total error {coarse_err} should exceed 8-bit total error {fine_err}"
    );
}
