//! End-to-end tests of the conformance harness itself: the full stack
//! (digital, behavioural, SPICE, live server) agrees within bounds, the
//! same seed produces byte-identical reports, and a forced disagreement
//! travels the whole shrink → reproducer → replay loop.

use std::path::PathBuf;

use mda_conformance::harness::{run, HarnessConfig};
use mda_conformance::report::load_case;

fn temp_out(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mda_conformance_e2e_{tag}"))
}

#[test]
fn full_stack_agrees_within_bounds() {
    let mut config = HarnessConfig::full(0xFEED_5EED, 72);
    config.out_dir = temp_out("full");
    let outcome = run(&config);
    assert!(outcome.failures.is_empty(), "{:#?}", outcome.failures);
    assert!(outcome.reproducers.is_empty());
    assert!(matches!(
        outcome.report.get("pass"),
        Some(mda_server::json::Json::Bool(true))
    ));
}

#[test]
fn same_seed_produces_byte_identical_reports() {
    let mut config = HarnessConfig::full(2026, 48);
    config.out_dir = temp_out("det");
    let a = run(&config);
    let b = run(&config);
    assert_eq!(format!("{}", a.report), format!("{}", b.report));
}

#[test]
fn different_seeds_produce_different_case_streams() {
    let mut a_cfg = HarnessConfig::full(1, 24);
    a_cfg.with_server = false;
    a_cfg.with_faults = false;
    a_cfg.out_dir = temp_out("seed_a");
    let mut b_cfg = a_cfg.clone();
    b_cfg.seed = 2;
    b_cfg.out_dir = temp_out("seed_b");
    let a = run(&a_cfg);
    let b = run(&b_cfg);
    assert_ne!(format!("{}", a.report), format!("{}", b.report));
}

#[test]
fn forced_disagreement_shrinks_to_a_replayable_reproducer() {
    let out_dir = temp_out("forced");
    let _ = std::fs::remove_dir_all(&out_dir);
    let mut config = HarnessConfig::full(99, 12);
    config.with_server = false;
    config.with_faults = false;
    config.out_dir = out_dir.clone();
    // Collapse every bound to zero width: any analog deviation at all is
    // now a disagreement, which must fail the run and emit reproducers.
    config.bound_scale = 0.0;
    let outcome = run(&config);
    assert!(!outcome.failures.is_empty());
    assert!(!outcome.reproducers.is_empty());

    for path in &outcome.reproducers {
        let case = load_case(path).expect("reproducer parses back");
        assert!(!case.p.is_empty() && !case.q.is_empty());
        // The shrunk case must stay valid for its function's shape rules.
        if case.kind.requires_equal_length() {
            assert_eq!(case.p.len(), case.q.len());
        }
        // Replay at the calibrated bounds: a zero-width-bound artifact is
        // within the real contract, so this must come back clean — the
        // point is that the loop (write → load → re-run layers) closes.
        let failures = mda_conformance::harness::replay(&case, false);
        assert!(failures.is_empty(), "{failures:#?}");
    }
    let _ = std::fs::remove_dir_all(&out_dir);
}

#[test]
fn report_ledger_covers_every_reachable_cell() {
    let mut config = HarnessConfig::full(7, 240);
    config.with_server = false;
    config.with_faults = true;
    config.out_dir = temp_out("ledger");
    let outcome = run(&config);
    assert!(outcome.failures.is_empty(), "{:#?}", outcome.failures);
    let ledger = match outcome.report.get("ledger") {
        Some(mda_server::json::Json::Arr(rows)) => rows.clone(),
        other => panic!("ledger missing: {other:?}"),
    };
    // 6 kinds × 4 classes, minus Mixed for the two equal-length row
    // functions, plus the fault-plane rows (4 device + 1 end-to-end +
    // 3 aCAM degradation sweeps).
    let differential = ledger
        .iter()
        .filter(|row| row.get("fault").and_then(|f| f.as_str()) == Some("none"))
        .count();
    assert_eq!(differential, 6 * 4 - 2);
    let fault_rows = ledger.len() - differential;
    assert_eq!(fault_rows, 8);
    // Structure axis is present and correct on every differential row.
    for row in &ledger {
        let structure = row.get("structure").and_then(|s| s.as_str()).unwrap();
        assert!(
            ["matrix", "row", "cell"].contains(&structure),
            "{structure}"
        );
    }
}
