//! Pinned boundary-corpus fixtures: one hand-written case per thresholded
//! kind whose values sit *exactly on* the match boundary
//! (`|a − b| == threshold`, bitwise). These are the cases the stratified
//! generator historically could never emit (its 3·threshold lattice snap
//! made every cross pair decisive), so nothing exercised the inclusive
//! comparator's equality arm. The fixtures pin it forever:
//!
//! * the digital reference resolves the boundary *inclusively* (a pair at
//!   exactly the threshold is a match);
//! * the tuned one-shot aCAM plane agrees bitwise, equality arm included;
//! * a full harness replay is clean — the analog layers are exempt (a
//!   boundary flips an analog comparator on sub-LSB noise), every digital
//!   layer must hold.

use std::path::PathBuf;

use mda_conformance::harness::replay;
use mda_conformance::report::load_case;
use mda_conformance::{layers, CaseSpec};
use mda_distance::DistanceKind;

fn fixture(name: &str) -> CaseSpec {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(name);
    load_case(&path).unwrap_or_else(|e| panic!("{name}: {e}"))
}

const FIXTURES: [&str; 3] = [
    "boundary_hamd.json",
    "boundary_edd.json",
    "boundary_lcs.json",
];

#[test]
fn fixtures_really_sit_on_the_boundary() {
    for name in FIXTURES {
        let case = fixture(name);
        assert!(case.thresholded(), "{name}");
        assert!(case.knife_edge(), "{name}: no boundary pair");
        // At least one cross pair is bitwise-exactly on the threshold.
        let exact = case.p.iter().chain(&case.q).any(|&a| {
            case.p
                .iter()
                .chain(&case.q)
                .any(|&b| (a - b).abs() == case.threshold)
        });
        assert!(exact, "{name}");
    }
}

#[test]
fn boundary_pairs_match_inclusively_in_the_digital_reference() {
    // HamD counts mismatches per lane: only the 2.0-apart lane mismatches;
    // both exactly-at-threshold lanes must count as matches.
    let hamd = fixture("boundary_hamd.json");
    assert_eq!(layers::reference(&hamd).unwrap(), 1.0);
    // EdD: every aligned pair differs by exactly the threshold — all
    // matches, zero edits.
    let edd = fixture("boundary_edd.json");
    assert_eq!(layers::reference(&edd).unwrap(), 0.0);
    // LCS: the boundary pair is a real match, so the subsequence is
    // non-empty.
    let lcs = fixture("boundary_lcs.json");
    assert!(layers::reference(&lcs).unwrap() >= 1.0);
}

#[test]
fn acam_one_shot_agrees_bitwise_on_every_fixture() {
    for name in FIXTURES {
        let case = fixture(name);
        assert!(layers::acam_eligibility(&case).is_ok(), "{name}");
        let one_shot = layers::acam(&case).unwrap();
        let reference = layers::reference(&case).unwrap();
        assert_eq!(
            one_shot.to_bits(),
            reference.to_bits(),
            "{name}: {one_shot} vs {reference}"
        );
    }
}

#[test]
fn analog_layers_are_exempt_but_digital_replay_is_clean() {
    for name in FIXTURES {
        let case = fixture(name);
        assert!(
            layers::spice_eligibility(&case).is_err(),
            "{name}: knife-edge cases must not reach the SPICE netlists"
        );
        let failures = replay(&case, false);
        assert!(failures.is_empty(), "{name}: {failures:#?}");
    }
}

#[test]
fn fixtures_cover_every_thresholded_kind() {
    let kinds: Vec<DistanceKind> = FIXTURES.iter().map(|n| fixture(n).kind).collect();
    assert!(kinds.contains(&DistanceKind::Hamming));
    assert!(kinds.contains(&DistanceKind::Edit));
    assert!(kinds.contains(&DistanceKind::Lcs));
}
