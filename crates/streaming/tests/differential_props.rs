//! Window-edge arithmetic property tests: sliding z-normalization and
//! incremental envelopes must be **bitwise** equal to their batch
//! counterparts across window sizes 1..=512, including constant and
//! zero-variance windows (the Welford relative floor) and rejected NaN
//! pushes.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use mda_distance::lower_bounds::envelope;
use mda_distance::znorm;
use mda_streaming::{
    check_series, Output, StreamConfig, StreamError, StreamPipeline, Value, WelfordState,
};

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Streams whose values exercise sign flips, plateaus, and magnitude
/// jumps (including exact zeros of both signs — the bitwise tie cases).
fn point_strategy() -> impl Strategy<Value = f64> {
    (0u8..12, -1.0e3..1.0e3f64).prop_map(|(k, v)| match k {
        0 => 0.0,
        1 => -0.0,
        2 => 1.0e9,
        3 => -1.0e9,
        4 | 5 => 2.5, // plateau fodder: repeats collide bitwise
        _ => v,
    })
}

fn config_for(window: usize, band: usize) -> StreamConfig {
    StreamConfig {
        window,
        band,
        query: (0..window).map(|i| (i as f64 * 0.45).sin()).collect(),
        threshold: None,
    }
}

/// Extends `points` cyclically until it covers a full window plus a
/// sliding tail.
fn cover_window(mut points: Vec<f64>, window: usize) -> Vec<f64> {
    while points.len() < window + 3 {
        let extend = points.clone();
        points.extend(extend);
    }
    points
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sliding z-norm output is bitwise the batch z-norm of every window
    /// the stream slides through, for window sizes across 1..=512.
    #[test]
    fn sliding_znorm_is_bitwise_batch(
        wsel in 0usize..6,
        points in proptest::collection::vec(point_strategy(), 1..80),
        tail in proptest::collection::vec(point_strategy(), 0..40),
    ) {
        let window = [1usize, 2, 5, 16, 257, 512][wsel];
        let mut stream = cover_window(points, window);
        stream.extend(tail);
        let mut pipeline = StreamPipeline::new(config_for(window, 0)).unwrap();
        for (i, &x) in stream.iter().enumerate() {
            let r = pipeline.push(x).unwrap();
            if i + 1 < window {
                prop_assert!(!r.stats.is_ready());
                continue;
            }
            let window_ref = &stream[i + 1 - window..=i];
            let Some(Value::Stats(sf)) = r.stats.value() else {
                return Err(TestCaseError::fail("stats frame missing after burn-in".into()));
            };
            prop_assert_eq!(bits(&sf.z), bits(&znorm::z_normalized(window_ref)));
            prop_assert_eq!(sf.mean.to_bits(), znorm::mean(window_ref).to_bits());
            prop_assert_eq!(sf.std_dev.to_bits(), znorm::std_dev(window_ref).to_bits());
        }
    }

    /// Incremental envelopes are bitwise the batch Lemire envelope of
    /// every window, across window sizes and band radii (including
    /// r = 0, r = window, and plateau ties).
    #[test]
    fn incremental_envelope_is_bitwise_batch(
        wsel in 0usize..6,
        band_frac in 0u8..5,
        points in proptest::collection::vec(point_strategy(), 1..100),
    ) {
        let window = [1usize, 2, 3, 9, 33, 512][wsel];
        let band = match band_frac {
            0 => 0,
            1 => 1.min(window),
            2 => window / 4,
            3 => window / 2,
            _ => window,
        };
        let stream = cover_window(points, window);
        let mut pipeline = StreamPipeline::new(config_for(window, band)).unwrap();
        for (i, &x) in stream.iter().enumerate() {
            let r = pipeline.push(x).unwrap();
            if i + 1 < window {
                prop_assert!(!r.envelope.is_ready());
                continue;
            }
            let window_ref = &stream[i + 1 - window..=i];
            let (bu, bl) = envelope(window_ref, band).unwrap();
            let Some(Value::Envelope(ef)) = r.envelope.value() else {
                return Err(TestCaseError::fail("envelope frame missing after burn-in".into()));
            };
            prop_assert_eq!(bits(&ef.upper), bits(&bu));
            prop_assert_eq!(bits(&ef.lower), bits(&bl));
        }
    }

    /// Constant and zero-variance windows (any magnitude, both zero
    /// signs) hit the Welford relative floor: the frame is degenerate,
    /// all-zeros, and still bitwise-equal to batch.
    #[test]
    fn constant_windows_degenerate_to_zeros(
        window in 1usize..40,
        vsel in 0usize..7,
        slides in 1usize..20,
    ) {
        let value = [0.0, -0.0, 5.0, -3.25, 1.0e9, 1.0e300, 1.0e-300][vsel];
        let mut pipeline = StreamPipeline::new(config_for(window, 1.min(window))).unwrap();
        for i in 0..window + slides {
            let r = pipeline.push(value).unwrap();
            if i + 1 < window {
                continue;
            }
            let Some(Value::Stats(sf)) = r.stats.value() else {
                return Err(TestCaseError::fail("stats frame missing after burn-in".into()));
            };
            prop_assert!(sf.degenerate);
            prop_assert!(sf.z.iter().all(|z| z.to_bits() == 0.0f64.to_bits()));
        }
    }

    /// Near-constant windows whose σ falls under the relative floor
    /// (σ ≤ 1e-12·max(1, |mean|)) also zero out, bitwise like batch.
    #[test]
    fn near_constant_windows_respect_the_relative_floor(
        window in 2usize..32,
        scale_exp in 6i32..12,
        slides in 1usize..10,
    ) {
        let scale = 10.0f64.powi(scale_exp);
        // σ of ±j jitter is ≈ j; pick j = 1e-13·scale so σ sits under the
        // 1e-12·|mean| floor while staying far above one ULP of the base
        // (so the window is NOT bitwise-constant — the σ path is what runs).
        let jitter = scale * 1.0e-13;
        let mut pipeline = StreamPipeline::new(config_for(window, 0)).unwrap();
        let mut stream = Vec::new();
        for i in 0..window + slides {
            let x = scale + if i % 2 == 0 { jitter } else { -jitter };
            stream.push(x);
            let r = pipeline.push(x).unwrap();
            if i + 1 < window {
                continue;
            }
            let window_ref = &stream[i + 1 - window..=i];
            let Some(Value::Stats(sf)) = r.stats.value() else {
                return Err(TestCaseError::fail("stats frame missing after burn-in".into()));
            };
            prop_assert_eq!(bits(&sf.z), bits(&znorm::z_normalized(window_ref)));
            prop_assert!(sf.degenerate, "σ under the floor must flag degenerate");
        }
    }

    /// The end-to-end differential gate holds on arbitrary streams.
    #[test]
    fn full_gate_holds_on_random_streams(
        window in 1usize..24,
        band_frac in 0u8..3,
        points in proptest::collection::vec(point_strategy(), 1..120),
        tsel in 0usize..3,
    ) {
        let band = match band_frac { 0 => 0, 1 => window / 3, _ => window };
        let config = StreamConfig {
            window,
            band,
            query: (0..window).map(|i| (i as f64 * 0.45).sin()).collect(),
            threshold: [None, Some(0.5), Some(5.0)][tsel],
        };
        let stream = cover_window(points, window);
        if let Err(e) = check_series(&config, &stream) {
            return Err(TestCaseError::fail(format!("{e}")));
        }
    }

    /// NaN and ±∞ pushes are rejected with typed `InvalidParameter`,
    /// leave the epoch untouched, and the stream keeps serving.
    #[test]
    fn non_finite_pushes_reject_typed(
        window in 1usize..16,
        prefix in proptest::collection::vec(-10.0..10.0f64, 0..20),
        bsel in 0usize..3,
    ) {
        let bad = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][bsel];
        let mut pipeline = StreamPipeline::new(config_for(window, 0)).unwrap();
        for &x in &prefix {
            pipeline.push(x).unwrap();
        }
        let before = pipeline.epoch();
        let err = pipeline.push(bad).unwrap_err();
        prop_assert!(matches!(err, StreamError::InvalidParameter(_)));
        prop_assert_eq!(pipeline.epoch(), before);
        let r = pipeline.push(0.25).unwrap();
        prop_assert_eq!(r.epoch, before + 1);
    }
}

/// Non-proptest spot check: the O(1) monitor tracks batch statistics
/// through thousands of slides without diverging beyond ULP noise.
#[test]
fn welford_monitor_drift_stays_bounded() {
    let w = 128;
    let xs: Vec<f64> = (0..5000)
        .map(|i| (i as f64 * 0.017).sin() * 40.0 + (i as f64 * 0.23).cos())
        .collect();
    let mut acc = WelfordState::new();
    for (i, &x) in xs.iter().enumerate() {
        acc.add(x);
        if i >= w {
            acc.evict(xs[i - w]);
        }
        if i + 1 >= w {
            let window = &xs[i + 1 - w..=i];
            let bm = znorm::mean(window);
            assert!(
                (acc.mean() - bm).abs() <= 1e-8 * bm.abs().max(1.0),
                "monitor drift at {i}: {} vs {bm}",
                acc.mean()
            );
        }
    }
}

/// Subscribing consumers see `Warming` with accurate progress until the
/// configured burn-in, then typed frames.
#[test]
fn burn_in_progress_is_reported() {
    let window = 6;
    let mut pipeline = StreamPipeline::new(StreamConfig {
        window,
        band: 1,
        query: vec![0.0; window],
        threshold: None,
    })
    .unwrap();
    for i in 1..window {
        let r = pipeline.push(i as f64).unwrap();
        match r.tracker {
            Output::Warming { seen, burn_in } => {
                assert_eq!(burn_in, window as u64);
                assert_eq!(seen, i as u64);
            }
            Output::Ready(_) => panic!("ready before burn-in at {i}"),
        }
    }
    assert!(pipeline.push(99.0).unwrap().ready());
}
