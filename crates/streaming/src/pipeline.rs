//! The standard mining pipeline: window → {z-norm, envelope} → matcher
//! → tracker, wired into a [`Dag`] with validated configuration.

use crate::dag::{Dag, NodeId, NodeOutput};
use crate::error::StreamError;
use crate::ops::{EnvelopeOp, MatcherOp, Output, TrackerOp, WindowOp, ZNormOp};

/// Largest accepted window (keeps per-push work and frame sizes sane).
pub const MAX_WINDOW: usize = 1 << 20;

/// Validated configuration for one stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Sliding-window length = query length = burn-in.
    pub window: usize,
    /// Sakoe–Chiba band radius for envelopes and DTW.
    pub band: usize,
    /// The query pattern to match (length must equal `window`).
    pub query: Vec<f64>,
    /// Optional pruning threshold (finite, > 0); `None` = unbounded.
    pub threshold: Option<f64>,
}

impl StreamConfig {
    /// Checks every construction-time invariant.
    ///
    /// # Errors
    ///
    /// [`StreamError::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<(), StreamError> {
        let fail = |msg: String| Err(StreamError::InvalidParameter(msg));
        if self.window == 0 {
            return fail("window must be at least 1".into());
        }
        if self.window > MAX_WINDOW {
            return fail(format!(
                "window {} exceeds maximum {MAX_WINDOW}",
                self.window
            ));
        }
        if self.band > self.window {
            return fail(format!(
                "band radius {} exceeds window {}",
                self.band, self.window
            ));
        }
        if self.query.len() != self.window {
            return fail(format!(
                "query length {} must equal window {}",
                self.query.len(),
                self.window
            ));
        }
        if let Some(bad) = self.query.iter().find(|x| !x.is_finite()) {
            return fail(format!("query values must be finite, got {bad}"));
        }
        if let Some(t) = self.threshold {
            if !t.is_finite() || t <= 0.0 {
                return fail(format!("threshold must be finite and positive, got {t}"));
            }
        }
        Ok(())
    }
}

/// One push's outputs, one typed slot per pipeline node.
#[derive(Debug)]
pub struct PushResult {
    /// 1-based epoch of this push.
    pub epoch: u64,
    /// [`WindowOp`] output.
    pub window: Output,
    /// [`ZNormOp`] output.
    pub stats: Output,
    /// [`EnvelopeOp`] output.
    pub envelope: Output,
    /// [`MatcherOp`] output.
    pub matcher: Output,
    /// [`TrackerOp`] output.
    pub tracker: Output,
}

impl PushResult {
    /// `true` once every node has burned in.
    pub fn ready(&self) -> bool {
        self.window.is_ready()
            && self.stats.is_ready()
            && self.envelope.is_ready()
            && self.matcher.is_ready()
            && self.tracker.is_ready()
    }
}

/// A validated, ready-to-push mining pipeline over one live series.
pub struct StreamPipeline {
    config: StreamConfig,
    dag: Dag,
}

impl StreamPipeline {
    /// Builds the five-node pipeline after validating `config`.
    ///
    /// # Errors
    ///
    /// [`StreamError::InvalidParameter`] from
    /// [`StreamConfig::validate`].
    pub fn new(config: StreamConfig) -> Result<Self, StreamError> {
        config.validate()?;
        let mut dag = Dag::new();
        let window = dag.add(Box::new(WindowOp::new(config.window)), &[])?;
        let _znorm = dag.add(Box::new(ZNormOp::new(config.window)), &[window])?;
        let envelope = dag.add(
            Box::new(EnvelopeOp::new(config.window, config.band)),
            &[window],
        )?;
        let matcher = dag.add(
            Box::new(MatcherOp::new(
                config.query.clone(),
                config.band,
                config.threshold,
            )),
            &[window, envelope],
        )?;
        let _tracker = dag.add(Box::new(TrackerOp::new(config.window)), &[matcher])?;
        Ok(StreamPipeline { config, dag })
    }

    /// The validated configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Points pushed so far.
    pub fn epoch(&self) -> u64 {
        self.dag.pushed()
    }

    /// Points required before every node emits (`= window`).
    pub fn burn_in(&self) -> usize {
        self.config.window
    }

    /// Pushes one point through the DAG.
    ///
    /// # Errors
    ///
    /// [`StreamError::InvalidParameter`] for non-finite points (the
    /// epoch does not advance), or a typed kernel error.
    pub fn push(&mut self, point: f64) -> Result<PushResult, StreamError> {
        let outs = self.dag.push(point)?;
        let epoch = self.dag.pushed();
        let [window, stats, envelope, matcher, tracker]: [NodeOutput; 5] = outs
            .try_into()
            .expect("pipeline DAG always has exactly five nodes");
        Ok(PushResult {
            epoch,
            window: window.output,
            stats: stats.output,
            envelope: envelope.output,
            matcher: matcher.output,
            tracker: tracker.output,
        })
    }

    /// Node ids in topological order, for callers that walk the DAG.
    pub fn node_ids(&self) -> [NodeId; 5] {
        [NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Value;

    fn config(window: usize, band: usize) -> StreamConfig {
        StreamConfig {
            window,
            band,
            query: (0..window).map(|i| (i as f64 * 0.5).sin()).collect(),
            threshold: None,
        }
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let cases = [
            StreamConfig {
                window: 0,
                band: 0,
                query: vec![],
                threshold: None,
            },
            StreamConfig {
                window: 2,
                band: 3,
                query: vec![0.0, 1.0],
                threshold: None,
            },
            StreamConfig {
                window: 2,
                band: 1,
                query: vec![0.0],
                threshold: None,
            },
            StreamConfig {
                window: 2,
                band: 1,
                query: vec![0.0, f64::NAN],
                threshold: None,
            },
            StreamConfig {
                window: 2,
                band: 1,
                query: vec![0.0, 1.0],
                threshold: Some(0.0),
            },
            StreamConfig {
                window: 2,
                band: 1,
                query: vec![0.0, 1.0],
                threshold: Some(f64::INFINITY),
            },
        ];
        for c in cases {
            assert!(
                matches!(
                    StreamPipeline::new(c.clone()),
                    Err(StreamError::InvalidParameter(_))
                ),
                "{c:?}"
            );
        }
    }

    #[test]
    fn pipeline_warms_then_emits_every_frame() {
        let mut p = StreamPipeline::new(config(4, 1)).unwrap();
        for i in 0..3 {
            let r = p.push(i as f64 * 0.3).unwrap();
            assert!(!r.ready(), "epoch {} must still be warming", r.epoch);
            assert!(matches!(r.tracker, Output::Warming { burn_in: 4, .. }));
        }
        let r = p.push(0.9).unwrap();
        assert!(r.ready(), "burn-in complete at epoch 4");
        assert_eq!(r.epoch, 4);
        assert!(matches!(r.window.value(), Some(Value::Window(_))));
        assert!(matches!(r.stats.value(), Some(Value::Stats(_))));
        assert!(matches!(r.envelope.value(), Some(Value::Envelope(_))));
        assert!(matches!(r.matcher.value(), Some(Value::Match(_))));
        assert!(matches!(r.tracker.value(), Some(Value::Track(_))));
    }

    #[test]
    fn nan_push_is_typed_and_stateless() {
        let mut p = StreamPipeline::new(config(2, 0)).unwrap();
        p.push(1.0).unwrap();
        let err = p.push(f64::NAN).unwrap_err();
        assert!(matches!(err, StreamError::InvalidParameter(_)));
        assert_eq!(p.epoch(), 1);
        // The stream keeps working after a rejected point.
        let r = p.push(2.0).unwrap();
        assert!(r.ready());
    }
}
