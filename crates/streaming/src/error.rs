//! Typed errors for the streaming tier.

use std::fmt;

use mda_distance::DistanceError;

/// Errors produced by stream construction and point pushes.
///
/// Every rejection is typed so the server can map it onto the wire
/// protocol's error vocabulary (`invalid_parameter` / `bad_request`)
/// without string matching.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// A parameter or pushed value is outside the accepted domain
    /// (non-finite point, empty query, zero window, query/window length
    /// mismatch, non-positive threshold).
    InvalidParameter(String),
    /// A distance-kernel invariant was violated mid-stream. With validated
    /// construction this is unreachable; it is surfaced rather than
    /// panicking so a server push can answer in-band.
    Kernel(DistanceError),
    /// The DAG was asked to wire a node to a parent that does not exist.
    UnknownNode(usize),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            StreamError::Kernel(e) => write!(f, "kernel error: {e}"),
            StreamError::UnknownNode(id) => write!(f, "unknown DAG node id {id}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<DistanceError> for StreamError {
    fn from(e: DistanceError) -> Self {
        StreamError::Kernel(e)
    }
}
