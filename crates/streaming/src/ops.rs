//! Incremental operators: the typed nodes of the streaming DAG.
//!
//! Each operator consumes one pushed point per step (plus the outputs of
//! its parent nodes), carries typed state across steps, and declares an
//! explicit `burn_in` — it emits [`Output::Warming`] until its window has
//! filled. The correctness contract is *differential*: once warm, every
//! emitted frame equals a from-scratch batch recomputation over the
//! current window — bitwise, because each operator either feeds the exact
//! batch code path with the same bytes (z-normalization) or maintains
//! state that is provably bit-identical to the batch result (Lemire
//! envelopes via [`SlidingExtremum`], the UCR cascade via the cached
//! query envelope + maintained candidate envelope). The gate is enforced
//! by [`crate::differential`], property tests, and the conformance
//! harness's `streaming_differential` layer.

use std::sync::Arc;

use mda_distance::lower_bounds::{
    cascading_dtw_with_candidate_envelope, slice_extremum, PruneDecision, SlidingExtremum,
};
use mda_distance::{znorm, DpScratch};

use crate::error::StreamError;
use crate::window::{SlidingWindow, WelfordState};

/// The materialized sliding window: the source frame every other
/// operator derives from.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowFrame {
    /// Window contents, oldest first (length = configured window).
    pub points: Arc<Vec<f64>>,
    /// The point appended this step.
    pub appended: f64,
    /// The point evicted this step (`None` on the step the window fills).
    pub evicted: Option<f64>,
}

/// Sliding z-normalization output.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsFrame {
    /// Window mean — bitwise the batch `znorm::mean` of the window.
    pub mean: f64,
    /// Window population σ — bitwise the batch `znorm::std_dev`.
    pub std_dev: f64,
    /// `true` when the degenerate rules of `z_normalize_in_place` fired
    /// (bitwise-constant window, σ under the Welford relative floor, or
    /// non-finite statistics) and `z` is therefore all zeros.
    pub degenerate: bool,
    /// The z-normalized window — bitwise the batch `z_normalized`.
    pub z: Arc<Vec<f64>>,
}

/// Incrementally maintained Sakoe–Chiba envelope of the current window.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvelopeFrame {
    /// Upper envelope — bitwise the batch `envelope(window, r).0`.
    pub upper: Arc<Vec<f64>>,
    /// Lower envelope — bitwise the batch `envelope(window, r).1`.
    pub lower: Arc<Vec<f64>>,
}

/// A best-so-far record: which push produced it and its distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestMatch {
    /// The 1-based push epoch whose window produced this record.
    pub epoch: u64,
    /// Its exact banded DTW distance (or admissible bound, for discords).
    pub distance: f64,
}

/// Online subsequence-matching output for one push.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchFrame {
    /// What the UCR cascade decided for this window.
    pub decision: PruneDecision,
    /// The pruning threshold in effect (configured threshold ∧ best so
    /// far) — recorded so a batch recompute can replay the decision.
    pub threshold: f64,
    /// Best (lowest-distance) computed match so far, if any.
    pub best: Option<BestMatch>,
}

/// Best-so-far motif/discord tracker output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackFrame {
    /// Lowest exactly-computed distance so far (earliest epoch on ties).
    pub motif: Option<BestMatch>,
    /// Largest admissible lower bound so far: the window provably at
    /// least this far from the query (earliest epoch on ties).
    pub discord: Option<BestMatch>,
}

/// A typed operator output value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// From [`WindowOp`].
    Window(WindowFrame),
    /// From [`ZNormOp`].
    Stats(StatsFrame),
    /// From [`EnvelopeOp`].
    Envelope(EnvelopeFrame),
    /// From [`MatcherOp`].
    Match(MatchFrame),
    /// From [`TrackerOp`].
    Track(TrackFrame),
}

/// What a node emitted for one pushed point.
#[derive(Debug, Clone, PartialEq)]
pub enum Output {
    /// The node (or one of its ancestors) has not finished burn-in.
    Warming {
        /// Points seen so far.
        seen: u64,
        /// Points required before the node emits values.
        burn_in: u64,
    },
    /// A warm, differentially-gated frame.
    Ready(Value),
}

impl Output {
    /// `true` once the node emits values.
    pub fn is_ready(&self) -> bool {
        matches!(self, Output::Ready(_))
    }

    /// The carried value, if warm.
    pub fn value(&self) -> Option<&Value> {
        match self {
            Output::Ready(v) => Some(v),
            Output::Warming { .. } => None,
        }
    }
}

/// Per-push context handed to every operator.
#[derive(Debug, Clone, Copy)]
pub struct PushCtx {
    /// 1-based count of points pushed to the DAG so far.
    pub epoch: u64,
    /// The point pushed this step (validated finite by the DAG).
    pub point: f64,
}

/// One node of the streaming DAG.
///
/// `apply` runs on *every* push — including during burn-in, so stateful
/// operators can fill their windows — and receives its parents' outputs
/// for the same push, in wiring order.
pub trait Operator: Send {
    /// Stable node label (used in frames, metrics, and mismatch reports).
    fn name(&self) -> &'static str;
    /// Number of points before this node emits `Ready` outputs.
    fn burn_in(&self) -> u64;
    /// Advances the node by one pushed point.
    ///
    /// # Errors
    ///
    /// Typed [`StreamError`] — operators never panic on domain input.
    fn apply(&mut self, ctx: &PushCtx, inputs: &[&Output]) -> Result<Output, StreamError>;
}

fn wiring_error(op: &'static str, expected: &str) -> StreamError {
    StreamError::InvalidParameter(format!("operator `{op}` wired to a non-{expected} parent"))
}

/// Source node: maintains the ring buffer and materializes the window.
#[derive(Debug)]
pub struct WindowOp {
    window: SlidingWindow,
    points: Arc<Vec<f64>>,
}

impl WindowOp {
    /// A window over the last `capacity` points (`capacity` ≥ 1, enforced
    /// by [`crate::pipeline::StreamConfig::validate`]).
    pub fn new(capacity: usize) -> Self {
        WindowOp {
            window: SlidingWindow::new(capacity),
            points: Arc::new(Vec::with_capacity(capacity)),
        }
    }
}

impl Operator for WindowOp {
    fn name(&self) -> &'static str {
        "window"
    }

    fn burn_in(&self) -> u64 {
        self.window.capacity() as u64
    }

    fn apply(&mut self, ctx: &PushCtx, _inputs: &[&Output]) -> Result<Output, StreamError> {
        let evicted = self.window.push(ctx.point);
        if !self.window.is_full() {
            return Ok(Output::Warming {
                seen: self.window.len() as u64,
                burn_in: self.burn_in(),
            });
        }
        // `make_mut` reuses the buffer unless a caller still holds the
        // previous frame, in which case it clones rather than mutating
        // bytes out from under them.
        self.window.copy_into(Arc::make_mut(&mut self.points));
        Ok(Output::Ready(Value::Window(WindowFrame {
            points: Arc::clone(&self.points),
            appended: ctx.point,
            evicted,
        })))
    }
}

/// Sliding-window z-normalization.
///
/// The O(1) add/evict [`WelfordState`] monitors the window as it slides;
/// emitted statistics re-fold the materialized window through the exact
/// batch code path (`znorm::mean` / `znorm::std_dev` /
/// `z_normalize_in_place`) so the frame is bit-for-bit the batch result —
/// the frame is O(w) to write regardless, and the downdating monitor can
/// drift by ULPs (see [`WelfordState::evict`]).
#[derive(Debug)]
pub struct ZNormOp {
    monitor: WelfordState,
    burn_in: u64,
    z: Arc<Vec<f64>>,
}

impl ZNormOp {
    /// A z-normalizer for windows of `window` points.
    pub fn new(window: usize) -> Self {
        ZNormOp {
            monitor: WelfordState::new(),
            burn_in: window as u64,
            z: Arc::new(Vec::with_capacity(window)),
        }
    }

    /// The O(1) sliding accumulators (monitoring-grade: ULP drift).
    pub fn monitor(&self) -> &WelfordState {
        &self.monitor
    }
}

impl Operator for ZNormOp {
    fn name(&self) -> &'static str {
        "znorm"
    }

    fn burn_in(&self) -> u64 {
        self.burn_in
    }

    fn apply(&mut self, ctx: &PushCtx, inputs: &[&Output]) -> Result<Output, StreamError> {
        self.monitor.add(ctx.point);
        let frame = match inputs.first() {
            Some(Output::Ready(Value::Window(f))) => f,
            Some(Output::Warming { .. }) => {
                return Ok(Output::Warming {
                    seen: ctx.epoch.min(self.burn_in),
                    burn_in: self.burn_in,
                })
            }
            _ => return Err(wiring_error("znorm", "window")),
        };
        if let Some(evicted) = frame.evicted {
            self.monitor.evict(evicted);
        }
        let pts = frame.points.as_slice();
        let mean = znorm::mean(pts);
        let std_dev = znorm::std_dev(pts);
        let first = pts[0].to_bits();
        let constant = pts.iter().all(|x| x.to_bits() == first);
        let degenerate = constant
            || !mean.is_finite()
            || !std_dev.is_finite()
            || std_dev <= 1e-12 * mean.abs().max(1.0);
        let z = Arc::make_mut(&mut self.z);
        z.clear();
        z.extend_from_slice(pts);
        znorm::z_normalize_in_place(z);
        Ok(Output::Ready(Value::Stats(StatsFrame {
            mean,
            std_dev,
            degenerate,
            z: Arc::clone(&self.z),
        })))
    }
}

/// Incremental Lemire envelope of the sliding window.
///
/// Interior entries (`r ≤ i ≤ w-1-r`) are stream-absolute extrema over a
/// fixed span of `2r + 1` points: each is finalized exactly once by the
/// [`SlidingExtremum`] monotonic deques as the closing point arrives, in
/// O(1) amortized. Only the ≤ 2r window-clamped border entries shift
/// meaning as the window slides; those are recomputed per emission with
/// [`slice_extremum`], which replicates the batch deque's tie-breaking —
/// so the assembled envelope is bitwise the batch `envelope(window, r)`.
#[derive(Debug)]
pub struct EnvelopeOp {
    radius: usize,
    window: usize,
    smax: SlidingExtremum,
    smin: SlidingExtremum,
    fin_upper: std::collections::VecDeque<f64>,
    fin_lower: std::collections::VecDeque<f64>,
    upper: Arc<Vec<f64>>,
    lower: Arc<Vec<f64>>,
}

impl EnvelopeOp {
    /// An envelope maintainer for band radius `radius` over windows of
    /// `window` points.
    pub fn new(window: usize, radius: usize) -> Self {
        EnvelopeOp {
            radius,
            window,
            smax: SlidingExtremum::new_max(2 * radius + 1),
            smin: SlidingExtremum::new_min(2 * radius + 1),
            fin_upper: std::collections::VecDeque::with_capacity(window + 1),
            fin_lower: std::collections::VecDeque::with_capacity(window + 1),
            upper: Arc::new(Vec::with_capacity(window)),
            lower: Arc::new(Vec::with_capacity(window)),
        }
    }
}

impl Operator for EnvelopeOp {
    fn name(&self) -> &'static str {
        "envelope"
    }

    fn burn_in(&self) -> u64 {
        self.window as u64
    }

    fn apply(&mut self, ctx: &PushCtx, inputs: &[&Output]) -> Result<Output, StreamError> {
        let idx = ctx.epoch - 1; // 0-based absolute stream index
        self.smax.push(idx, ctx.point);
        self.smin.push(idx, ctx.point);
        if idx >= 2 * self.radius as u64 {
            // The span around center idx - r is complete: finalize it.
            self.fin_upper
                .push_back(self.smax.extremum().unwrap_or(ctx.point));
            self.fin_lower
                .push_back(self.smin.extremum().unwrap_or(ctx.point));
            if self.fin_upper.len() > self.window {
                self.fin_upper.pop_front();
                self.fin_lower.pop_front();
            }
        }
        let frame = match inputs.first() {
            Some(Output::Ready(Value::Window(f))) => f,
            Some(Output::Warming { .. }) => {
                return Ok(Output::Warming {
                    seen: ctx.epoch.min(self.burn_in()),
                    burn_in: self.burn_in(),
                })
            }
            _ => return Err(wiring_error("envelope", "window")),
        };
        let pts = frame.points.as_slice();
        let (w, r) = (pts.len(), self.radius);
        let fin_len = self.fin_upper.len();
        let upper = Arc::make_mut(&mut self.upper);
        let lower = Arc::make_mut(&mut self.lower);
        upper.clear();
        upper.resize(w, 0.0);
        lower.clear();
        lower.resize(w, 0.0);
        for i in 0..w {
            if i < r || i + r > w - 1 {
                let lo = i.saturating_sub(r);
                let hi = (i + r).min(w - 1);
                upper[i] = slice_extremum(&pts[lo..=hi], true);
                lower[i] = slice_extremum(&pts[lo..=hi], false);
            } else {
                // Finalized centers run to idx - r; the window starts at
                // absolute index idx - w + 1, so window slot i maps to
                // ring position fin_len - 1 - ((idx - r) - (idx - w + 1 + i)).
                let pos = fin_len + r + i - w;
                upper[i] = self.fin_upper[pos];
                lower[i] = self.fin_lower[pos];
            }
        }
        Ok(Output::Ready(Value::Envelope(EnvelopeFrame {
            upper: Arc::clone(&self.upper),
            lower: Arc::clone(&self.lower),
        })))
    }
}

/// Online subsequence matcher: the UCR cascade against a fixed query.
///
/// Carries the query envelope (cached bitwise inside its [`DpScratch`]),
/// the incrementally maintained candidate envelope (parent node), and the
/// best-so-far pruning threshold across pushes. The expensive banded DTW
/// re-runs only when the new point invalidates the pruning certificate —
/// when the window's lower bounds fall below the carried threshold; every
/// other push settles in the O(1)/O(w) bound layers.
#[derive(Debug)]
pub struct MatcherOp {
    query: Vec<f64>,
    radius: usize,
    threshold: f64,
    scratch: DpScratch,
    best: Option<BestMatch>,
}

impl MatcherOp {
    /// A matcher for `query` (length = window) at band `radius`, pruning
    /// against `threshold` (`None` = unbounded: every window computes
    /// until a best-so-far forms).
    pub fn new(query: Vec<f64>, radius: usize, threshold: Option<f64>) -> Self {
        MatcherOp {
            query,
            radius,
            threshold: threshold.unwrap_or(f64::INFINITY),
            scratch: DpScratch::new(),
            best: None,
        }
    }

    /// Best computed match so far.
    pub fn best(&self) -> Option<BestMatch> {
        self.best
    }
}

impl Operator for MatcherOp {
    fn name(&self) -> &'static str {
        "matcher"
    }

    fn burn_in(&self) -> u64 {
        self.query.len() as u64
    }

    fn apply(&mut self, ctx: &PushCtx, inputs: &[&Output]) -> Result<Output, StreamError> {
        let (window, env) = match (inputs.first(), inputs.get(1)) {
            (Some(Output::Ready(Value::Window(w))), Some(Output::Ready(Value::Envelope(e)))) => {
                (w, e)
            }
            (Some(Output::Warming { .. }), _) | (_, Some(Output::Warming { .. })) => {
                return Ok(Output::Warming {
                    seen: ctx.epoch.min(self.burn_in()),
                    burn_in: self.burn_in(),
                })
            }
            _ => return Err(wiring_error("matcher", "window+envelope")),
        };
        let pruning = self
            .threshold
            .min(self.best.map_or(f64::INFINITY, |b| b.distance));
        let decision = cascading_dtw_with_candidate_envelope(
            &self.query,
            &window.points,
            self.radius,
            pruning,
            &env.upper,
            &env.lower,
            &mut self.scratch,
        )?;
        if let PruneDecision::Computed(d) = decision {
            if self.best.is_none_or(|b| d < b.distance) {
                self.best = Some(BestMatch {
                    epoch: ctx.epoch,
                    distance: d,
                });
            }
        }
        Ok(Output::Ready(Value::Match(MatchFrame {
            decision,
            threshold: pruning,
            best: self.best,
        })))
    }
}

/// Counts of cascade outcomes over warm pushes — shared by replay
/// reports and the `streaming` bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneFrameStats {
    /// Full banded DTW runs.
    pub computed: u64,
    /// LB_Kim prunes.
    pub pruned_kim: u64,
    /// LB_Keogh prunes (either direction).
    pub pruned_keogh: u64,
    /// Early-abandoned DP runs.
    pub abandoned: u64,
}

impl PruneFrameStats {
    /// Tallies one cascade decision.
    pub fn record(&mut self, decision: PruneDecision) {
        match decision {
            PruneDecision::Computed(_) => self.computed += 1,
            PruneDecision::PrunedByKim(_) => self.pruned_kim += 1,
            PruneDecision::PrunedByKeogh(_) => self.pruned_keogh += 1,
            PruneDecision::AbandonedEarly => self.abandoned += 1,
        }
    }

    /// Total warm pushes tallied.
    pub fn total(&self) -> u64 {
        self.computed + self.pruned_kim + self.pruned_keogh + self.abandoned
    }
}

/// The admissible lower bound a cascade decision certifies: exact for
/// computed windows, the bound value for pruned ones, and the pruning
/// threshold for early-abandoned DP runs (abandonment proves d > τ).
pub fn certified_bound(decision: PruneDecision, threshold: f64) -> f64 {
    match decision {
        PruneDecision::Computed(d) => d,
        PruneDecision::PrunedByKim(v) | PruneDecision::PrunedByKeogh(v) => v,
        PruneDecision::AbandonedEarly => threshold,
    }
}

/// Best-so-far motif/discord tracker: a pure fold over matcher frames.
#[derive(Debug)]
pub struct TrackerOp {
    burn_in: u64,
    motif: Option<BestMatch>,
    discord: Option<BestMatch>,
}

impl TrackerOp {
    /// A tracker warming with the `window`-point matcher above it.
    pub fn new(window: usize) -> Self {
        TrackerOp {
            burn_in: window as u64,
            motif: None,
            discord: None,
        }
    }
}

impl Operator for TrackerOp {
    fn name(&self) -> &'static str {
        "tracker"
    }

    fn burn_in(&self) -> u64 {
        self.burn_in
    }

    fn apply(&mut self, ctx: &PushCtx, inputs: &[&Output]) -> Result<Output, StreamError> {
        let frame = match inputs.first() {
            Some(Output::Ready(Value::Match(m))) => m,
            Some(Output::Warming { .. }) => {
                return Ok(Output::Warming {
                    seen: ctx.epoch.min(self.burn_in),
                    burn_in: self.burn_in,
                })
            }
            _ => return Err(wiring_error("tracker", "match")),
        };
        if let PruneDecision::Computed(d) = frame.decision {
            if self.motif.is_none_or(|b| d < b.distance) {
                self.motif = Some(BestMatch {
                    epoch: ctx.epoch,
                    distance: d,
                });
            }
        }
        let bound = certified_bound(frame.decision, frame.threshold);
        if self.discord.is_none_or(|b| bound > b.distance) {
            self.discord = Some(BestMatch {
                epoch: ctx.epoch,
                distance: bound,
            });
        }
        Ok(Output::Ready(Value::Track(TrackFrame {
            motif: self.motif,
            discord: self.discord,
        })))
    }
}
