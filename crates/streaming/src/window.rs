//! Sliding-window primitives: the ring buffer every operator shares and
//! the O(1) add/evict Welford accumulators that monitor it.
//!
//! The accumulators are the streaming form of the single-pass Welford
//! statistics in `mda_distance::znorm` (PR 4): adding a point is the
//! forward update, evicting one is the algebraic downdate. Downdating
//! reuses rounded state, so after many slides the monitor can drift by a
//! few ULPs from a from-scratch fold over the window — which is why
//! operators that *emit* statistics re-fold the materialized window with
//! the batch code path (the frame is O(w) to write anyway) and use the
//! monitor only for O(1) bookkeeping. The drift bound is property-tested
//! in `tests/differential_props.rs`.

/// Fixed-capacity ring buffer over the last `capacity` pushed points.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    buf: Vec<f64>,
    head: usize,
    len: usize,
}

impl SlidingWindow {
    /// An empty window holding at most `capacity` points.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a zero-length window has no meaning;
    /// stream construction validates this before building operators).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindow {
            buf: vec![0.0; capacity],
            head: 0,
            len: 0,
        }
    }

    /// Appends `x`, returning the evicted oldest point once full.
    pub fn push(&mut self, x: f64) -> Option<f64> {
        if self.len < self.buf.len() {
            let tail = (self.head + self.len) % self.buf.len();
            self.buf[tail] = x;
            self.len += 1;
            None
        } else {
            let evicted = self.buf[self.head];
            self.buf[self.head] = x;
            self.head = (self.head + 1) % self.buf.len();
            Some(evicted)
        }
    }

    /// Points currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` before the first push.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` once `capacity` points have been pushed.
    pub fn is_full(&self) -> bool {
        self.len == self.buf.len()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Copies the window contents, oldest first, into `out`.
    pub fn copy_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.len);
        let first = (self.buf.len() - self.head).min(self.len);
        out.extend_from_slice(&self.buf[self.head..self.head + first]);
        out.extend_from_slice(&self.buf[..self.len - first]);
    }
}

/// O(1) add/evict Welford accumulators: streaming mean and variance of
/// the points currently inside a sliding window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WelfordState {
    count: u64,
    mean: f64,
    m2: f64,
}

impl WelfordState {
    /// Empty accumulators.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of points currently accumulated.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current running mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current population variance (`0.0` when empty).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0)
        }
    }

    /// Current population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Forward Welford update: accumulate `x` in O(1).
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Welford downdate: remove a point previously added, in O(1).
    ///
    /// The downdate inverts the forward recurrence algebraically; because
    /// it reuses rounded state it can drift a few ULPs from a fresh fold,
    /// so it backs monitoring and burn-in bookkeeping, never emitted
    /// statistics.
    pub fn evict(&mut self, x: f64) {
        debug_assert!(self.count > 0, "evict from empty accumulator");
        self.count -= 1;
        if self.count == 0 {
            self.mean = 0.0;
            self.m2 = 0.0;
            return;
        }
        let prev_mean = self.mean + (self.mean - x) / self.count as f64;
        self.m2 -= (x - prev_mean) * (x - self.mean);
        self.mean = prev_mean;
        if self.m2 < 0.0 {
            // Cancellation floor: variance is non-negative by definition.
            self.m2 = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_distance::znorm;

    #[test]
    fn window_fills_then_slides() {
        let mut w = SlidingWindow::new(3);
        assert_eq!(w.push(1.0), None);
        assert_eq!(w.push(2.0), None);
        assert!(!w.is_full());
        assert_eq!(w.push(3.0), None);
        assert!(w.is_full());
        assert_eq!(w.push(4.0), Some(1.0));
        assert_eq!(w.push(5.0), Some(2.0));
        let mut out = Vec::new();
        w.copy_into(&mut out);
        assert_eq!(out, vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn copy_into_handles_every_rotation() {
        for cap in 1..=8usize {
            let mut w = SlidingWindow::new(cap);
            let mut expect = Vec::new();
            for i in 0..(3 * cap) {
                let x = i as f64 * 0.75 - 2.0;
                w.push(x);
                expect.push(x);
                if expect.len() > cap {
                    expect.remove(0);
                }
                let mut got = Vec::new();
                w.copy_into(&mut got);
                assert_eq!(got, expect, "cap={cap} i={i}");
            }
        }
    }

    #[test]
    fn welford_add_matches_batch_exactly() {
        // Add-only accumulation IS the batch fold: identical bits.
        let xs: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let mut acc = WelfordState::new();
        for (i, &x) in xs.iter().enumerate() {
            acc.add(x);
            let prefix = &xs[..=i];
            assert_eq!(acc.mean().to_bits(), znorm::mean(prefix).to_bits());
            assert_eq!(acc.std_dev().to_bits(), znorm::std_dev(prefix).to_bits());
        }
    }

    #[test]
    fn welford_slide_tracks_batch_closely() {
        let xs: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.11).sin() + 0.01 * i as f64)
            .collect();
        let w = 32;
        let mut acc = WelfordState::new();
        for (i, &x) in xs.iter().enumerate() {
            acc.add(x);
            if i >= w {
                acc.evict(xs[i - w]);
            }
            if i + 1 >= w {
                let window = &xs[i + 1 - w..=i];
                let bm = znorm::mean(window);
                let bs = znorm::std_dev(window);
                assert!((acc.mean() - bm).abs() <= 1e-9 * bm.abs().max(1.0));
                assert!((acc.std_dev() - bs).abs() <= 1e-9 * bs.abs().max(1.0));
            }
        }
    }

    #[test]
    fn welford_evict_to_empty_resets() {
        let mut acc = WelfordState::new();
        acc.add(5.0);
        acc.evict(5.0);
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
    }

    #[test]
    fn welford_variance_never_negative_under_cancellation() {
        let mut acc = WelfordState::new();
        for _ in 0..100 {
            acc.add(1.0e9);
            acc.add(1.0e9 + 1.0e-6);
        }
        for _ in 0..99 {
            acc.evict(1.0e9);
            acc.evict(1.0e9 + 1.0e-6);
        }
        assert!(acc.variance() >= 0.0);
    }
}
