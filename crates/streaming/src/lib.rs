//! # mda-streaming
//!
//! Streaming push-mode mining for the memristor distance accelerator:
//! the live-series tier over the batch kernels (ROADMAP Open item 3).
//! Clients push points one at a time; a dependency DAG of **incremental
//! operators** maintains continuously-updated mining state:
//!
//! * [`ops::WindowOp`] — the sliding ring buffer, materialized once per
//!   push and shared by every descendant;
//! * [`ops::ZNormOp`] — sliding-window z-normalization: O(1) add/evict
//!   Welford accumulators ([`window::WelfordState`]) monitor the window,
//!   emitted frames re-fold through the exact batch path for bitwise
//!   parity;
//! * [`ops::EnvelopeOp`] — incremental Lemire envelopes: interior
//!   entries finalized once by stream-absolute monotonic deques
//!   (`mda_distance::lower_bounds::SlidingExtremum`), borders recomputed
//!   with the deque's own tie-breaking;
//! * [`ops::MatcherOp`] — online subsequence matching: the UCR cascade
//!   (LB_Kim → LB_Keogh → early-abandon banded DTW) re-runs the
//!   expensive DP only when the new point invalidates the carried
//!   pruning certificate;
//! * [`ops::TrackerOp`] — best-so-far motif/discord fold.
//!
//! Every node declares an explicit burn-in and emits
//! [`ops::Output::Warming`] until its window fills; one pushed point
//! fans through the whole DAG in a single topological pass
//! ([`dag::Dag::push`]).
//!
//! ## The differential gate
//!
//! The correctness spine: at every push, each operator's output must
//! equal a **from-scratch batch recomputation** over the current window
//! — bitwise on these exact paths ([`differential::check_series`]).
//! Property tests, the conformance harness's `streaming_differential`
//! layer, and the `streaming` bench's fatal identity gate all enforce
//! it.
//!
//! ## Replay
//!
//! [`replay::replay`] feeds recorded series through the identical
//! operator path on a deterministic virtual clock at configurable
//! (rational) speed: two replays of one recording are byte-identical,
//! making recordings usable for backtesting and byte-stable tests.

pub mod dag;
pub mod differential;
pub mod error;
pub mod ops;
pub mod pipeline;
pub mod replay;
pub mod window;

pub use dag::{Dag, NodeId, NodeOutput};
pub use differential::{check_series, DifferentialError, DifferentialReport, Mismatch};
pub use error::StreamError;
pub use ops::{
    certified_bound, BestMatch, EnvelopeFrame, MatchFrame, Operator, Output, PruneFrameStats,
    PushCtx, StatsFrame, TrackFrame, Value, WindowFrame,
};
pub use pipeline::{PushResult, StreamConfig, StreamPipeline, MAX_WINDOW};
pub use replay::{replay, replay_gated, ReplayConfig, ReplayOutcome, ReplaySpeed, VirtualClock};
pub use window::{SlidingWindow, WelfordState};
