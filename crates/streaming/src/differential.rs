//! The differential gate: streaming = batch, at every push.
//!
//! [`check_series`] drives a [`StreamPipeline`] point by point and, at
//! each push, recomputes every operator output *from scratch* over the
//! current window with the library's batch code paths — `z_normalized`,
//! `envelope`, the UCR cascade with a fresh scratch — and demands bitwise
//! equality. Fold state (best-so-far, motif/discord) is replayed by an
//! independent reference fold. This is the correctness spine of the
//! streaming tier: the conformance harness's `streaming_differential`
//! layer and the `streaming` bench's fatal identity gate both call it.

use mda_distance::lower_bounds::{cascading_dtw_with, envelope, PruneDecision};
use mda_distance::{znorm, DpScratch};

use crate::error::StreamError;
use crate::ops::{certified_bound, BestMatch, Value};
use crate::pipeline::{StreamConfig, StreamPipeline};

/// A streaming-vs-batch disagreement at one push.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// 1-based push epoch where the gate failed.
    pub epoch: u64,
    /// Which operator disagreed.
    pub operator: &'static str,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "differential mismatch at epoch {} in `{}`: {}",
            self.epoch, self.operator, self.detail
        )
    }
}

impl std::error::Error for Mismatch {}

/// Why a differential run failed: the stream rejected input, or the
/// gate found a disagreement.
#[derive(Debug)]
pub enum DifferentialError {
    /// Construction or push failed with a typed stream error.
    Stream(StreamError),
    /// The gate fired.
    Mismatch(Mismatch),
}

impl std::fmt::Display for DifferentialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DifferentialError::Stream(e) => write!(f, "{e}"),
            DifferentialError::Mismatch(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for DifferentialError {}

impl From<StreamError> for DifferentialError {
    fn from(e: StreamError) -> Self {
        DifferentialError::Stream(e)
    }
}

impl From<Mismatch> for DifferentialError {
    fn from(m: Mismatch) -> Self {
        DifferentialError::Mismatch(m)
    }
}

/// Aggregate statistics from a clean differential run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DifferentialReport {
    /// Total points pushed.
    pub pushes: u64,
    /// Pushes answered while warming.
    pub warming: u64,
    /// Warm pushes whose window ran the full banded DTW.
    pub computed: u64,
    /// Warm pushes pruned by LB_Kim.
    pub pruned_kim: u64,
    /// Warm pushes pruned by LB_Keogh (either direction).
    pub pruned_keogh: u64,
    /// Warm pushes whose DP run early-abandoned.
    pub abandoned: u64,
}

fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

fn decision_eq(a: PruneDecision, b: PruneDecision) -> bool {
    use PruneDecision::*;
    match (a, b) {
        (PrunedByKim(x), PrunedByKim(y))
        | (PrunedByKeogh(x), PrunedByKeogh(y))
        | (Computed(x), Computed(y)) => bits_eq(x, y),
        (AbandonedEarly, AbandonedEarly) => true,
        _ => false,
    }
}

fn best_eq(a: Option<BestMatch>, b: Option<BestMatch>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => x.epoch == y.epoch && bits_eq(x.distance, y.distance),
        _ => false,
    }
}

fn mismatch(epoch: u64, operator: &'static str, detail: String) -> DifferentialError {
    DifferentialError::Mismatch(Mismatch {
        epoch,
        operator,
        detail,
    })
}

fn slices_bitwise_eq(a: &[f64], b: &[f64]) -> Option<usize> {
    if a.len() != b.len() {
        return Some(usize::MAX);
    }
    a.iter().zip(b).position(|(x, y)| !bits_eq(*x, *y))
}

/// Runs `points` through a fresh pipeline under `config`, gating every
/// push against from-scratch batch recomputation.
///
/// # Errors
///
/// A typed [`DifferentialError`]: either the stream rejected input, or —
/// the interesting case — the gate found streaming ≠ batch.
pub fn check_series(
    config: &StreamConfig,
    points: &[f64],
) -> Result<DifferentialReport, DifferentialError> {
    let mut pipeline = StreamPipeline::new(config.clone())?;
    let w = config.window;
    let mut report = DifferentialReport::default();
    // Independent reference folds (never read from the pipeline).
    let mut ref_best: Option<BestMatch> = None;
    let mut ref_motif: Option<BestMatch> = None;
    let mut ref_discord: Option<BestMatch> = None;
    for (i, &x) in points.iter().enumerate() {
        let epoch = (i + 1) as u64;
        let result = pipeline.push(x)?;
        report.pushes += 1;
        if i + 1 < w {
            if result.ready() {
                return Err(mismatch(
                    epoch,
                    "window",
                    format!("emitted before burn-in ({} of {w} points)", i + 1),
                ));
            }
            report.warming += 1;
            continue;
        }
        if !result.ready() {
            return Err(mismatch(
                epoch,
                "window",
                format!("still warming after burn-in ({} points)", i + 1),
            ));
        }
        let window_ref = &points[i + 1 - w..=i];

        // Window: the ring must reproduce the slice exactly.
        let Some(Value::Window(wf)) = result.window.value() else {
            return Err(mismatch(epoch, "window", "non-window frame".into()));
        };
        if let Some(at) = slices_bitwise_eq(&wf.points, window_ref) {
            return Err(mismatch(
                epoch,
                "window",
                format!("ring contents diverge from stream slice at slot {at}"),
            ));
        }

        // Z-normalization: bitwise against the batch path.
        let Some(Value::Stats(sf)) = result.stats.value() else {
            return Err(mismatch(epoch, "znorm", "non-stats frame".into()));
        };
        let z_ref = znorm::z_normalized(window_ref);
        if let Some(at) = slices_bitwise_eq(&sf.z, &z_ref) {
            return Err(mismatch(
                epoch,
                "znorm",
                format!("z output differs from batch z_normalized at slot {at}"),
            ));
        }
        if !bits_eq(sf.mean, znorm::mean(window_ref))
            || !bits_eq(sf.std_dev, znorm::std_dev(window_ref))
        {
            return Err(mismatch(
                epoch,
                "znorm",
                format!(
                    "stats differ from batch: mean {} vs {}, std {} vs {}",
                    sf.mean,
                    znorm::mean(window_ref),
                    sf.std_dev,
                    znorm::std_dev(window_ref)
                ),
            ));
        }

        // Envelope: bitwise against the batch Lemire pass.
        let Some(Value::Envelope(ef)) = result.envelope.value() else {
            return Err(mismatch(epoch, "envelope", "non-envelope frame".into()));
        };
        let (upper_ref, lower_ref) =
            envelope(window_ref, config.band).map_err(StreamError::from)?;
        if let Some(at) = slices_bitwise_eq(&ef.upper, &upper_ref) {
            return Err(mismatch(
                epoch,
                "envelope",
                format!("upper envelope differs from batch at slot {at}"),
            ));
        }
        if let Some(at) = slices_bitwise_eq(&ef.lower, &lower_ref) {
            return Err(mismatch(
                epoch,
                "envelope",
                format!("lower envelope differs from batch at slot {at}"),
            ));
        }

        // Matcher: replay the cascade from scratch with the reference
        // fold's threshold and a cold scratch (query envelope rebuilt).
        let Some(Value::Match(mf)) = result.matcher.value() else {
            return Err(mismatch(epoch, "matcher", "non-match frame".into()));
        };
        let pruning = config
            .threshold
            .unwrap_or(f64::INFINITY)
            .min(ref_best.map_or(f64::INFINITY, |b| b.distance));
        if !bits_eq(mf.threshold, pruning) {
            return Err(mismatch(
                epoch,
                "matcher",
                format!(
                    "pruning threshold diverged: streaming {} vs batch fold {pruning}",
                    mf.threshold
                ),
            ));
        }
        let decision_ref = cascading_dtw_with(
            &config.query,
            window_ref,
            config.band,
            pruning,
            &mut DpScratch::new(),
        )
        .map_err(StreamError::from)?;
        if !decision_eq(mf.decision, decision_ref) {
            return Err(mismatch(
                epoch,
                "matcher",
                format!(
                    "cascade decision diverged: streaming {:?} vs batch {decision_ref:?}",
                    mf.decision
                ),
            ));
        }
        if let PruneDecision::Computed(d) = decision_ref {
            if ref_best.is_none_or(|b| d < b.distance) {
                ref_best = Some(BestMatch { epoch, distance: d });
            }
        }
        if !best_eq(mf.best, ref_best) {
            return Err(mismatch(
                epoch,
                "matcher",
                format!(
                    "best-so-far diverged: streaming {:?} vs batch fold {ref_best:?}",
                    mf.best
                ),
            ));
        }

        // Tracker: independent fold over the reference decisions.
        let Some(Value::Track(tf)) = result.tracker.value() else {
            return Err(mismatch(epoch, "tracker", "non-track frame".into()));
        };
        if let PruneDecision::Computed(d) = decision_ref {
            if ref_motif.is_none_or(|b| d < b.distance) {
                ref_motif = Some(BestMatch { epoch, distance: d });
            }
        }
        let bound = certified_bound(decision_ref, pruning);
        if ref_discord.is_none_or(|b| bound > b.distance) {
            ref_discord = Some(BestMatch {
                epoch,
                distance: bound,
            });
        }
        if !best_eq(tf.motif, ref_motif) || !best_eq(tf.discord, ref_discord) {
            return Err(mismatch(
                epoch,
                "tracker",
                format!(
                    "fold diverged: streaming motif {:?} discord {:?} vs batch {ref_motif:?} / {ref_discord:?}",
                    tf.motif, tf.discord
                ),
            ));
        }

        match decision_ref {
            PruneDecision::Computed(_) => report.computed += 1,
            PruneDecision::PrunedByKim(_) => report.pruned_kim += 1,
            PruneDecision::PrunedByKeogh(_) => report.pruned_keogh += 1,
            PruneDecision::AbandonedEarly => report.abandoned += 1,
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(n: usize, step: f64, phase: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * step + phase).sin()).collect()
    }

    #[test]
    fn clean_run_reports_cascade_mix() {
        let config = StreamConfig {
            window: 16,
            band: 2,
            query: wave(16, 0.4, 0.0),
            threshold: Some(2.0),
        };
        let mut points = wave(200, 0.37, 1.3);
        // Plant the query itself so at least one window computes.
        points[100..116].copy_from_slice(&config.query);
        let report = check_series(&config, &points).unwrap();
        assert_eq!(report.pushes, 200);
        assert_eq!(report.warming, 15);
        assert!(report.computed >= 1, "{report:?}");
        assert_eq!(
            report.warming
                + report.computed
                + report.pruned_kim
                + report.pruned_keogh
                + report.abandoned,
            report.pushes
        );
    }

    #[test]
    fn constant_and_degenerate_streams_pass_the_gate() {
        for value in [0.0, -0.0, 5.0, 1.0e9] {
            let config = StreamConfig {
                window: 8,
                band: 1,
                query: vec![value; 8],
                threshold: None,
            };
            let points = vec![value; 40];
            check_series(&config, &points).unwrap();
        }
    }

    #[test]
    fn gate_runs_across_window_sizes_and_bands() {
        for w in [1usize, 2, 3, 5, 9, 17] {
            for band in [0usize, 1, w / 2, w] {
                let config = StreamConfig {
                    window: w,
                    band,
                    query: wave(w, 0.5, 0.2),
                    threshold: Some(1.5),
                };
                let points = wave(4 * w + 7, 0.31, 2.0);
                check_series(&config, &points).unwrap_or_else(|e| panic!("w={w} band={band}: {e}"));
            }
        }
    }
}
