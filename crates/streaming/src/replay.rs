//! Replay engine: recorded series through the identical operator path,
//! on a deterministic virtual clock.
//!
//! Replay never consults wall time or randomness — inter-arrival spacing
//! is integer arithmetic on a [`VirtualClock`] — so replaying the same
//! recording twice produces byte-identical reports ([`ReplayOutcome::to_text`])
//! and identical [`fingerprints`](ReplayOutcome::fingerprint). That makes
//! recorded traces (including the conformance trace families) usable as
//! byte-stable regression fixtures and for backtesting threshold choices.

use crate::differential::{check_series, DifferentialError, DifferentialReport};
use crate::error::StreamError;
use crate::ops::{BestMatch, Output, PruneFrameStats, Value};
use crate::pipeline::{StreamConfig, StreamPipeline};

/// Replay speed as an exact rational multiplier: `num/den` × recorded
/// rate. `times(2)` replays twice as fast; `real_time()` is 1/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplaySpeed {
    num: u32,
    den: u32,
}

impl ReplaySpeed {
    /// Recorded rate.
    pub fn real_time() -> Self {
        ReplaySpeed { num: 1, den: 1 }
    }

    /// `n`× faster than recorded.
    ///
    /// # Errors
    ///
    /// Rejects `n = 0`.
    pub fn times(n: u32) -> Result<Self, StreamError> {
        Self::ratio(n, 1)
    }

    /// Exact rational speed `num/den`.
    ///
    /// # Errors
    ///
    /// Rejects a zero numerator or denominator.
    pub fn ratio(num: u32, den: u32) -> Result<Self, StreamError> {
        if num == 0 || den == 0 {
            return Err(StreamError::InvalidParameter(
                "replay speed must be a positive rational".into(),
            ));
        }
        Ok(ReplaySpeed { num, den })
    }

    /// The virtual inter-arrival time for a recorded period.
    fn scaled_period_ns(&self, period_ns: u64) -> u64 {
        // Integer, order-fixed arithmetic: deterministic across runs.
        period_ns.saturating_mul(self.den as u64) / self.num as u64
    }
}

/// A monotonically advancing, fully deterministic clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now_ns: u64,
}

impl VirtualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Nanoseconds elapsed since replay start.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Advances the clock.
    pub fn advance_ns(&mut self, ns: u64) {
        self.now_ns = self.now_ns.saturating_add(ns);
    }
}

/// Replay parameters: the recorded inter-arrival period and the speed
/// multiplier to apply to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayConfig {
    /// Recorded spacing between consecutive points, in virtual ns.
    pub period_ns: u64,
    /// Speed multiplier.
    pub speed: ReplaySpeed,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            period_ns: 1_000_000, // 1 ms per recorded point
            speed: ReplaySpeed::real_time(),
        }
    }
}

/// Everything a replay run produced, renderable byte-stably.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Points replayed.
    pub pushes: u64,
    /// Pushes answered while warming.
    pub warming: u64,
    /// Cascade outcome counts over warm pushes.
    pub cascade: PruneFrameStats,
    /// Final motif record.
    pub motif: Option<BestMatch>,
    /// Final discord record.
    pub discord: Option<BestMatch>,
    /// Virtual time consumed by the whole replay.
    pub virtual_elapsed_ns: u64,
    /// FNV-1a digest over every emitted frame (bit patterns, epochs):
    /// two replays of the same recording must agree exactly.
    pub fingerprint: u64,
}

impl ReplayOutcome {
    /// Deterministic text rendering — byte-identical across replays of
    /// the same recording (`{:?}` on `Option<BestMatch>` prints f64 via
    /// the shortest-roundtrip formatter, which is bit-stable).
    pub fn to_text(&self) -> String {
        format!(
            "pushes {}\nwarming {}\ncomputed {}\npruned_kim {}\npruned_keogh {}\nabandoned {}\nmotif {:?}\ndiscord {:?}\nvirtual_elapsed_ns {}\nfingerprint {:016x}\n",
            self.pushes,
            self.warming,
            self.cascade.computed,
            self.cascade.pruned_kim,
            self.cascade.pruned_keogh,
            self.cascade.abandoned,
            self.motif,
            self.discord,
            self.virtual_elapsed_ns,
            self.fingerprint,
        )
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for byte in v.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_f64(h: u64, v: f64) -> u64 {
    fnv_u64(h, v.to_bits())
}

fn fnv_best(mut h: u64, b: Option<BestMatch>) -> u64 {
    match b {
        None => fnv_u64(h, 0),
        Some(bm) => {
            h = fnv_u64(h, 1);
            h = fnv_u64(h, bm.epoch);
            fnv_f64(h, bm.distance)
        }
    }
}

fn fnv_output(mut h: u64, out: &Output) -> u64 {
    match out {
        Output::Warming { seen, burn_in } => {
            h = fnv_u64(h, 0);
            h = fnv_u64(h, *seen);
            fnv_u64(h, *burn_in)
        }
        Output::Ready(value) => match value {
            Value::Window(f) => {
                h = fnv_u64(h, 1);
                for &x in f.points.iter() {
                    h = fnv_f64(h, x);
                }
                h
            }
            Value::Stats(f) => {
                h = fnv_u64(h, 2);
                h = fnv_f64(h, f.mean);
                h = fnv_f64(h, f.std_dev);
                h = fnv_u64(h, f.degenerate as u64);
                for &x in f.z.iter() {
                    h = fnv_f64(h, x);
                }
                h
            }
            Value::Envelope(f) => {
                h = fnv_u64(h, 3);
                for &x in f.upper.iter().chain(f.lower.iter()) {
                    h = fnv_f64(h, x);
                }
                h
            }
            Value::Match(f) => {
                h = fnv_u64(h, 4);
                h = fnv_f64(h, f.threshold);
                h = fnv_f64(h, crate::ops::certified_bound(f.decision, f.threshold));
                fnv_best(h, f.best)
            }
            Value::Track(f) => {
                h = fnv_u64(h, 5);
                h = fnv_best(h, f.motif);
                fnv_best(h, f.discord)
            }
        },
    }
}

/// Feeds `points` through a fresh pipeline at the configured speed,
/// digesting every emitted frame.
///
/// # Errors
///
/// Typed [`StreamError`] from construction or a rejected point.
pub fn replay(
    stream: &StreamConfig,
    points: &[f64],
    config: &ReplayConfig,
) -> Result<ReplayOutcome, StreamError> {
    let mut pipeline = StreamPipeline::new(stream.clone())?;
    let mut clock = VirtualClock::new();
    let step = config.speed.scaled_period_ns(config.period_ns);
    let mut outcome = ReplayOutcome {
        pushes: 0,
        warming: 0,
        cascade: PruneFrameStats::default(),
        motif: None,
        discord: None,
        virtual_elapsed_ns: 0,
        fingerprint: FNV_OFFSET,
    };
    for &x in points {
        clock.advance_ns(step);
        let r = pipeline.push(x)?;
        outcome.pushes += 1;
        let mut h = outcome.fingerprint;
        h = fnv_u64(h, r.epoch);
        for out in [&r.window, &r.stats, &r.envelope, &r.matcher, &r.tracker] {
            h = fnv_output(h, out);
        }
        outcome.fingerprint = h;
        if !r.ready() {
            outcome.warming += 1;
            continue;
        }
        if let Some(Value::Match(mf)) = r.matcher.value() {
            outcome.cascade.record(mf.decision);
        }
        if let Some(Value::Track(tf)) = r.tracker.value() {
            outcome.motif = tf.motif;
            outcome.discord = tf.discord;
        }
    }
    outcome.virtual_elapsed_ns = clock.now_ns();
    Ok(outcome)
}

/// Replays `points` while also running the differential gate at every
/// push — the strict form used by conformance and the bench identity
/// gate.
///
/// # Errors
///
/// Typed [`DifferentialError`] — a mismatch names the epoch and
/// operator.
pub fn replay_gated(
    stream: &StreamConfig,
    points: &[f64],
) -> Result<DifferentialReport, DifferentialError> {
    check_series(stream, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_config() -> StreamConfig {
        StreamConfig {
            window: 12,
            band: 2,
            query: (0..12).map(|i| (i as f64 * 0.6).cos()).collect(),
            threshold: Some(3.0),
        }
    }

    fn recording() -> Vec<f64> {
        (0..150)
            .map(|i| (i as f64 * 0.23).sin() * 1.4 + (i as f64 * 0.011).cos())
            .collect()
    }

    #[test]
    fn replay_is_byte_identical_across_runs() {
        let cfg = ReplayConfig::default();
        let a = replay(&stream_config(), &recording(), &cfg).unwrap();
        let b = replay(&stream_config(), &recording(), &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_text(), b.to_text());
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn speed_scales_virtual_time_exactly() {
        let points = recording();
        let base = replay(
            &stream_config(),
            &points,
            &ReplayConfig {
                period_ns: 1_000,
                speed: ReplaySpeed::real_time(),
            },
        )
        .unwrap();
        let fast = replay(
            &stream_config(),
            &points,
            &ReplayConfig {
                period_ns: 1_000,
                speed: ReplaySpeed::times(4).unwrap(),
            },
        )
        .unwrap();
        assert_eq!(base.virtual_elapsed_ns, points.len() as u64 * 1_000);
        assert_eq!(fast.virtual_elapsed_ns, points.len() as u64 * 250);
        // Speed changes pacing only — the results are identical.
        assert_eq!(base.fingerprint, fast.fingerprint);
        assert_eq!(base.motif, fast.motif);
    }

    #[test]
    fn zero_speed_is_rejected() {
        assert!(ReplaySpeed::times(0).is_err());
        assert!(ReplaySpeed::ratio(1, 0).is_err());
    }

    #[test]
    fn gated_replay_passes_on_the_recording() {
        let report = replay_gated(&stream_config(), &recording()).unwrap();
        assert_eq!(report.pushes, 150);
    }
}
