//! The dependency DAG: typed operator nodes with topological,
//! single-pass propagation.
//!
//! A node's parents must already exist when it is added, so insertion
//! order *is* a topological order and cycles are unrepresentable — one
//! pushed point fans out through the whole graph in a single pass, each
//! node seeing its parents' outputs for the same push.

use crate::error::StreamError;
use crate::ops::{Operator, Output, PushCtx};

/// Handle to a node inside a [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Position of the node in insertion (= topological) order.
    pub fn index(self) -> usize {
        self.0
    }
}

struct Node {
    op: Box<dyn Operator>,
    parents: Vec<NodeId>,
}

/// One node's output for one pushed point.
#[derive(Debug)]
pub struct NodeOutput {
    /// Which node emitted it.
    pub id: NodeId,
    /// The node's stable label.
    pub name: &'static str,
    /// Warming marker or typed frame.
    pub output: Output,
}

/// A dependency DAG of incremental operators.
#[derive(Default)]
pub struct Dag {
    nodes: Vec<Node>,
    pushed: u64,
}

impl Dag {
    /// An empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` before any node is added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Points pushed so far (the current epoch).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Adds a node wired to `parents`, which must already exist — the
    /// check that keeps the graph acyclic by construction.
    ///
    /// # Errors
    ///
    /// [`StreamError::UnknownNode`] if a parent id is not in the DAG.
    pub fn add(
        &mut self,
        op: Box<dyn Operator>,
        parents: &[NodeId],
    ) -> Result<NodeId, StreamError> {
        for p in parents {
            if p.0 >= self.nodes.len() {
                return Err(StreamError::UnknownNode(p.0));
            }
        }
        self.nodes.push(Node {
            op,
            parents: parents.to_vec(),
        });
        Ok(NodeId(self.nodes.len() - 1))
    }

    /// Pushes one point through every node in topological order,
    /// returning each node's output for this epoch (insertion order).
    ///
    /// # Errors
    ///
    /// [`StreamError::InvalidParameter`] for non-finite points (state is
    /// untouched — a rejected push never advances the epoch), or any
    /// typed error an operator raises.
    pub fn push(&mut self, point: f64) -> Result<Vec<NodeOutput>, StreamError> {
        if !point.is_finite() {
            return Err(StreamError::InvalidParameter(format!(
                "pushed point must be finite, got {point}"
            )));
        }
        self.pushed += 1;
        let ctx = PushCtx {
            epoch: self.pushed,
            point,
        };
        let mut outs: Vec<NodeOutput> = Vec::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let inputs: Vec<&Output> = node.parents.iter().map(|p| &outs[p.0].output).collect();
            let output = node.op.apply(&ctx, &inputs)?;
            outs.push(NodeOutput {
                id: NodeId(i),
                name: node.op.name(),
                output,
            });
        }
        Ok(outs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Value, WindowOp};

    /// Counts how many of its parents were ready this push.
    struct ReadyCounter {
        burn_in: u64,
    }

    impl Operator for ReadyCounter {
        fn name(&self) -> &'static str {
            "ready-counter"
        }
        fn burn_in(&self) -> u64 {
            self.burn_in
        }
        fn apply(&mut self, ctx: &PushCtx, inputs: &[&Output]) -> Result<Output, StreamError> {
            if inputs.iter().all(|o| o.is_ready()) {
                Ok(Output::Ready(Value::Window(crate::ops::WindowFrame {
                    points: std::sync::Arc::new(vec![inputs.len() as f64]),
                    appended: ctx.point,
                    evicted: None,
                })))
            } else {
                Ok(Output::Warming {
                    seen: ctx.epoch,
                    burn_in: self.burn_in,
                })
            }
        }
    }

    #[test]
    fn parents_must_exist_before_wiring() {
        let mut dag = Dag::new();
        let err = dag
            .add(Box::new(ReadyCounter { burn_in: 1 }), &[NodeId(0)])
            .unwrap_err();
        assert_eq!(err, StreamError::UnknownNode(0));
    }

    #[test]
    fn one_push_fans_through_the_whole_graph() {
        // Diamond: window → {a, b} → join.
        let mut dag = Dag::new();
        let w = dag.add(Box::new(WindowOp::new(2)), &[]).unwrap();
        let a = dag
            .add(Box::new(ReadyCounter { burn_in: 2 }), &[w])
            .unwrap();
        let b = dag
            .add(Box::new(ReadyCounter { burn_in: 2 }), &[w])
            .unwrap();
        let join = dag
            .add(Box::new(ReadyCounter { burn_in: 2 }), &[a, b])
            .unwrap();
        let outs = dag.push(1.0).unwrap();
        assert_eq!(outs.len(), 4);
        assert!(outs.iter().all(|o| !o.output.is_ready()), "warming first");
        let outs = dag.push(2.0).unwrap();
        assert!(
            outs.iter().all(|o| o.output.is_ready()),
            "every node warm in one pass: {outs:?}"
        );
        assert_eq!(outs[join.index()].name, "ready-counter");
    }

    #[test]
    fn non_finite_push_is_rejected_without_advancing() {
        let mut dag = Dag::new();
        dag.add(Box::new(WindowOp::new(2)), &[]).unwrap();
        dag.push(1.0).unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = dag.push(bad).unwrap_err();
            assert!(matches!(err, StreamError::InvalidParameter(_)), "{bad}");
        }
        assert_eq!(dag.pushed(), 1, "rejected pushes must not tick the epoch");
    }
}
