//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of `criterion` its benches use: `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `sample_size` and `Bencher::iter`.
//! Timing is a simple wall-clock loop reporting mean and best iteration
//! time — no warm-up modelling, outlier analysis, or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches may use either `criterion::black_box` or
/// `std::hint::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }
}

/// A named benchmark id, optionally parameterized (`name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (minimum 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(10);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&self.name, &id.id);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.id);
        self
    }

    pub fn finish(self) {}
}

/// Collects iteration timings for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Time `sample_size` runs of `f` after a short warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3 {
            black_box(f());
        }
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id:<28} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let best = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{group}/{id:<28} mean {:>12} best {:>12} ({} samples)",
            fmt_duration(mean),
            fmt_duration(best),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1.0e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1.0e6)
    } else {
        format!("{:.2} s", ns as f64 / 1.0e9)
    }
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench `main` that runs each group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        let mut runs = 0usize;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        // 3 warm-up + 10 timed.
        assert_eq!(runs, 13);
    }
}
