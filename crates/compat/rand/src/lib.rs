//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the exact slice of `rand` it uses: `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, and the `Rng` methods `gen`, `gen_range` and `gen_bool`.
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a deterministic,
//! high-quality generator, though the stream differs from upstream `rand`'s
//! ChaCha-based `StdRng`. Everything in this repository treats seeds as
//! opaque reproducibility handles, so the stream identity does not matter.

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from a `u64` state.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from a raw `u64` stream (the subset of `rand`'s
/// `Standard` distribution this workspace relies on).
pub trait StandardSample {
    fn standard_sample(next: &mut dyn FnMut() -> u64) -> Self;
}

impl StandardSample for bool {
    fn standard_sample(next: &mut dyn FnMut() -> u64) -> Self {
        next() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn standard_sample(next: &mut dyn FnMut() -> u64) -> Self {
        next()
    }
}

impl StandardSample for f64 {
    fn standard_sample(next: &mut dyn FnMut() -> u64) -> Self {
        unit_f64(next())
    }
}

/// Ranges samplable from a raw `u64` stream (the subset of `rand`'s
/// `SampleRange` this workspace relies on).
pub trait SampleRange<T> {
    fn sample_range(self, next: &mut dyn FnMut() -> u64) -> T;
}

/// Map a `u64` to a uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_range(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        let u = unit_f64(next());
        let v = self.start + (self.end - self.start) * u;
        // Guard against FP rounding landing exactly on the excluded end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_range(self, next: &mut dyn FnMut() -> u64) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 sample range");
        // 53-bit resolution over the closed interval.
        let u = (next() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + (hi - lo) * u
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Debiased modulo: reject the final partial slice.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let r = next();
                    if r < zone {
                        return self.start + (r % span) as $t;
                    }
                }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer sample range");
                if lo == 0 as $t && hi == <$t>::MAX {
                    return next() as $t;
                }
                (lo..hi + 1).sample_range(next)
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let r = next();
                    if r < zone {
                        return (self.start as i128 + (r % span) as i128) as $t;
                    }
                }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer sample range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return next() as $t;
                }
                (lo..hi + 1).sample_range(next)
            }
        }
    )*};
}

impl_signed_sample_range!(i64, i32, i16, i8, isize);

/// The `rand`-compatible generator trait. Object- and `?Sized`-safe for the
/// generic `R: Rng + ?Sized` bounds used in this workspace.
pub trait Rng {
    /// The raw 64-bit output stream every other method derives from.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        let mut next = source(self);
        T::standard_sample(&mut next)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut next = source(self);
        range.sample_range(&mut next)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

/// Borrow an `Rng` as the `FnMut() -> u64` source the sampling traits take.
fn source<R: Rng + ?Sized>(rng: &mut R) -> impl FnMut() -> u64 + '_ {
    move || rng.next_u64()
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next_sm = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next_sm(), next_sm(), next_sm(), next_sm()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y: usize = rng.gen_range(0..5);
            assert!(y < 5);
            let z: f64 = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn works_through_unsized_rng() {
        fn draw(rng: &mut dyn Rng) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
