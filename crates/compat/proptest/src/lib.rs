//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of `proptest` its tests use: the `proptest!` macro with
//! `pat in strategy` bindings and `#![proptest_config(..)]`, range and
//! `prop::collection::vec` strategies, tuple composition, `prop_flat_map` /
//! `prop_map`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: cases are generated from seeds derived
//! deterministically from the test name (fully reproducible runs, no
//! persistence files), and failing inputs are reported but **not shrunk**.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Value`. Upstream proptest separates
    /// strategies from value trees to support shrinking; this subset
    /// generates directly.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Compose: feed each generated value through `f` to obtain the
        /// strategy that generates the final value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Map generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            T: Debug,
            F: Fn(Self::Value) -> T,
        {
            Map { base: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<B, F> {
        base: B,
        f: F,
    }

    impl<B, S, F> Strategy for FlatMap<B, F>
    where
        B: Strategy,
        S: Strategy,
        F: Fn(B::Value) -> S,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let inner = self.base.generate(rng);
            (self.f)(inner).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, T, F> Strategy for Map<B, F>
    where
        B: Strategy,
        T: Debug,
        F: Fn(B::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f64, usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Accepted size specifications for [`vec`]: an exact length or a
    /// half-open range of lengths.
    pub trait IntoSizeRange {
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let size = size.into_size_range();
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration. Only `cases` is honoured by this subset.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject,
        /// `prop_assert*!` failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// Derive a deterministic per-test seed so failures reproduce exactly.
    fn name_seed(name: &str) -> u64 {
        // FNV-1a.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Execute `body` over `config.cases` generated cases. Panics on the
    /// first failing case; panics if the rejection budget is exhausted.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut body: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let base = name_seed(name);
        let max_rejects = (config.cases as u64) * 64;
        let mut rejects: u64 = 0;
        let mut case: u64 = 0;
        let mut passed: u32 = 0;
        while passed < config.cases {
            let mut rng = StdRng::seed_from_u64(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            match body(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    if rejects > max_rejects {
                        panic!(
                            "proptest '{name}': too many prop_assume! rejections \
                             ({rejects} rejects for {passed}/{} passes)",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed at case #{case} (seed {base:#x}): {msg}");
                }
            }
            case += 1;
        }
    }
}

pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Each function parameter is written
/// `pattern in strategy`; the body may use `prop_assert*!` / `prop_assume!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $p = $crate::strategy::Strategy::generate(&($s), __rng);)+
                $body
                Ok(())
            });
        }
    )*};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `left == right`: left = {:?}, right = {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `left != right`: both = {:?}", l);
    }};
}

/// Reject the current case unless `cond` holds; another case is generated.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn vec_strategy_respects_bounds() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = prop::collection::vec(-1.0f64..1.0, 3..7);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, -1.0f64..1.0), c in 5u64..6) {
            prop_assert!(a < 10);
            prop_assert!((-1.0..1.0).contains(&b));
            prop_assert_eq!(c, 5);
        }

        #[test]
        fn flat_map_links_lengths(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0.0f64..1.0, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..4) {
            prop_assume!(x != 2);
            prop_assert_ne!(x, 2);
        }
    }
}
