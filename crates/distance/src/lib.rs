//! # mda-distance
//!
//! Digital reference implementations of the six time-series distance
//! functions accelerated by the DAC'17 memristor distance accelerator:
//!
//! * [`Dtw`] — dynamic time warping (Eq. 2), with optional Sakoe–Chiba band
//!   and per-cell weights;
//! * [`Lcs`] — longest common subsequence adapted to real-valued series via a
//!   match threshold (Eq. 3);
//! * [`EditDistance`] — edit distance with threshold matching (Eq. 4);
//! * [`Hausdorff`] — directed/symmetric Hausdorff distance (Eq. 5);
//! * [`Hamming`] — thresholded Hamming distance (Eq. 6);
//! * [`Manhattan`] — Manhattan distance (Eq. 7) and its Euclidean sibling.
//!
//! These implementations serve three roles in the reproduction:
//!
//! 1. the **golden reference** the analog accelerator model is validated
//!    against,
//! 2. the **CPU baseline** of the paper's Fig. 6(b) comparison, and
//! 3. the computational kernel of the data-mining workloads
//!    ([`mining`]) that motivate the paper: classification, clustering and
//!    subsequence similarity search.
//!
//! ## Quick example
//!
//! ```
//! use mda_distance::{Dtw, Band, Distance};
//!
//! # fn main() -> Result<(), mda_distance::DistanceError> {
//! let p = [0.0, 1.0, 2.0, 1.0, 0.0];
//! let q = [0.0, 0.9, 2.1, 1.1, 0.1];
//! let dtw = Dtw::new().with_band(Band::SakoeChiba(2));
//! let d = dtw.evaluate(&p, &q)?;
//! assert!(d < 0.5);
//! # Ok(())
//! # }
//! ```

pub mod batch;
pub mod dtw;
pub mod edit;
pub mod error;
pub mod hamming;
pub mod hausdorff;
pub mod lcs;
pub mod lower_bounds;
pub mod manhattan;
pub mod matrix;
pub mod mining;
pub mod quantized;
pub mod scratch;
pub(crate) mod validate;
pub mod weights;
pub mod znorm;

pub use batch::BatchEngine;
pub use dtw::{Band, Dtw};
pub use edit::EditDistance;
pub use error::DistanceError;
pub use hamming::Hamming;
pub use hausdorff::{Direction, Hausdorff};
pub use lcs::Lcs;
pub use manhattan::{Euclidean, Manhattan};
pub use matrix::DpMatrix;
pub use scratch::DpScratch;
pub use weights::Weights;

/// The six distance functions supported by the accelerator, in the order the
/// paper lists them.
///
/// This is the key the accelerator's configuration library
/// (`mda_core::controller`) is indexed by.
///
/// ```
/// use mda_distance::DistanceKind;
/// assert_eq!(DistanceKind::ALL.len(), 6);
/// assert!(DistanceKind::Dtw.is_dynamic_programming());
/// assert!(!DistanceKind::Manhattan.is_dynamic_programming());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DistanceKind {
    /// Dynamic time warping.
    Dtw,
    /// Longest common subsequence (a *similarity*: larger is closer).
    Lcs,
    /// Edit distance.
    Edit,
    /// Hausdorff distance.
    Hausdorff,
    /// Hamming distance with threshold matching.
    Hamming,
    /// Manhattan distance.
    Manhattan,
}

impl DistanceKind {
    /// All six kinds, in the paper's order (DTW, LCS, EdD, HauD, HamD, MD).
    pub const ALL: [DistanceKind; 6] = [
        DistanceKind::Dtw,
        DistanceKind::Lcs,
        DistanceKind::Edit,
        DistanceKind::Hausdorff,
        DistanceKind::Hamming,
        DistanceKind::Manhattan,
    ];

    /// `true` for the dynamic-programming functions (DTW, LCS, EdD) that can
    /// compare sequences of different lengths via a full DP matrix.
    pub fn is_dynamic_programming(self) -> bool {
        matches!(
            self,
            DistanceKind::Dtw | DistanceKind::Lcs | DistanceKind::Edit
        )
    }

    /// `true` if the function requires both sequences to have equal length
    /// (HamD and MD, per Section 2 of the paper).
    pub fn requires_equal_length(self) -> bool {
        matches!(self, DistanceKind::Hamming | DistanceKind::Manhattan)
    }

    /// `true` if a *larger* value means *more similar* (only LCS).
    pub fn is_similarity(self) -> bool {
        matches!(self, DistanceKind::Lcs)
    }

    /// The inter-PE wiring used on the accelerator: `true` for the matrix
    /// structure (DTW, LCS, HauD, EdD), `false` for the row structure
    /// (MD, HamD). See Fig. 1 of the paper.
    pub fn uses_matrix_structure(self) -> bool {
        !matches!(self, DistanceKind::Hamming | DistanceKind::Manhattan)
    }

    /// Short display name matching the paper's abbreviations.
    pub fn abbrev(self) -> &'static str {
        match self {
            DistanceKind::Dtw => "DTW",
            DistanceKind::Lcs => "LCS",
            DistanceKind::Edit => "EdD",
            DistanceKind::Hausdorff => "HauD",
            DistanceKind::Hamming => "HamD",
            DistanceKind::Manhattan => "MD",
        }
    }
}

impl std::fmt::Display for DistanceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Error returned when parsing a [`DistanceKind`] from its paper
/// abbreviation fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKindError {
    name: String,
}

impl std::fmt::Display for ParseKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown kind `{}` (expected DTW, LCS, EdD, HauD, HamD or MD)",
            self.name
        )
    }
}

impl std::error::Error for ParseKindError {}

/// Parses the paper's abbreviations exactly as [`DistanceKind::abbrev`]
/// prints them — the canonical round-trip every call site (wire protocol,
/// reports, CLI flags) shares. Matching is case-sensitive: `"dtw"` is
/// rejected, the same contract the wire protocol has always had.
impl std::str::FromStr for DistanceKind {
    type Err = ParseKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DistanceKind::ALL
            .into_iter()
            .find(|k| k.abbrev() == s)
            .ok_or_else(|| ParseKindError {
                name: s.to_string(),
            })
    }
}

/// A distance (or similarity) function over real-valued time series.
///
/// The trait is object-safe so heterogeneous collections of functions can be
/// benchmarked uniformly, which is exactly what the experiment harness does.
pub trait Distance {
    /// Evaluates the function on two series.
    ///
    /// # Errors
    ///
    /// Returns [`DistanceError::EmptySequence`] if either input is empty and
    /// the function does not define a value for empty inputs, or
    /// [`DistanceError::LengthMismatch`] for equal-length-only functions.
    fn evaluate(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError>;

    /// Evaluates the function reusing caller-provided DP scratch rows.
    ///
    /// DP functions (DTW) override this to avoid per-pair row allocations in
    /// batch workloads; the default ignores the scratch and delegates to
    /// [`Distance::evaluate`], so every implementation stays correct.
    ///
    /// # Errors
    ///
    /// Same as [`Distance::evaluate`].
    fn evaluate_with(
        &self,
        p: &[f64],
        q: &[f64],
        scratch: &mut DpScratch,
    ) -> Result<f64, DistanceError> {
        let _ = scratch;
        self.evaluate(p, q)
    }

    /// Which of the six functions this is.
    fn kind(&self) -> DistanceKind;

    /// `true` if larger return values mean more similar series.
    fn is_similarity(&self) -> bool {
        self.kind().is_similarity()
    }
}

/// Constructs the default-parameter instance of `kind` as a trait object.
///
/// Thresholded functions (LCS, EdD, HamD) get the paper's defaults:
/// threshold = 0.1 and unit step = 1.0.
///
/// ```
/// use mda_distance::{boxed_distance, DistanceKind};
/// let d = boxed_distance(DistanceKind::Manhattan);
/// assert_eq!(d.evaluate(&[1.0, 2.0], &[2.0, 4.0]).unwrap(), 3.0);
/// ```
pub fn boxed_distance(kind: DistanceKind) -> Box<dyn Distance + Send + Sync> {
    match kind {
        DistanceKind::Dtw => Box::new(Dtw::new()),
        DistanceKind::Lcs => Box::new(Lcs::new(0.1)),
        DistanceKind::Edit => Box::new(EditDistance::new(0.1)),
        DistanceKind::Hausdorff => Box::new(Hausdorff::new()),
        DistanceKind::Hamming => Box::new(Hamming::new(0.1)),
        DistanceKind::Manhattan => Box::new(Manhattan::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification_matches_paper_table() {
        // Section 2: DTW/LCS/EdD are DP methods; HamD/MD need equal length;
        // HauD supports different lengths but is not DP.
        assert!(DistanceKind::Dtw.is_dynamic_programming());
        assert!(DistanceKind::Lcs.is_dynamic_programming());
        assert!(DistanceKind::Edit.is_dynamic_programming());
        assert!(!DistanceKind::Hausdorff.is_dynamic_programming());
        assert!(DistanceKind::Hamming.requires_equal_length());
        assert!(DistanceKind::Manhattan.requires_equal_length());
        assert!(!DistanceKind::Hausdorff.requires_equal_length());
    }

    #[test]
    fn structure_assignment_matches_fig1() {
        use DistanceKind::*;
        for k in [Dtw, Lcs, Hausdorff, Edit] {
            assert!(k.uses_matrix_structure(), "{k} should be matrix");
        }
        for k in [Hamming, Manhattan] {
            assert!(!k.uses_matrix_structure(), "{k} should be row");
        }
    }

    #[test]
    fn only_lcs_is_similarity() {
        for k in DistanceKind::ALL {
            assert_eq!(k.is_similarity(), k == DistanceKind::Lcs);
        }
    }

    #[test]
    fn boxed_distances_evaluate_identity_pairs() {
        let p = [0.3, -0.2, 1.5, 0.0];
        for k in DistanceKind::ALL {
            let d = boxed_distance(k);
            let v = d.evaluate(&p, &p).unwrap();
            if k.is_similarity() {
                // LCS of a series with itself matches every element.
                assert_eq!(v, p.len() as f64);
            } else {
                assert_eq!(v, 0.0, "{k} self-distance");
            }
        }
    }

    #[test]
    fn display_uses_paper_abbreviations() {
        assert_eq!(DistanceKind::Dtw.to_string(), "DTW");
        assert_eq!(DistanceKind::Hausdorff.to_string(), "HauD");
    }

    #[test]
    fn from_str_round_trips_display() {
        for k in DistanceKind::ALL {
            assert_eq!(k.abbrev().parse::<DistanceKind>(), Ok(k));
        }
    }

    #[test]
    fn from_str_is_case_sensitive_and_names_the_offender() {
        let err = "dtw".parse::<DistanceKind>().unwrap_err();
        assert!(err.to_string().contains("`dtw`"), "{err}");
        assert!("Manhattan".parse::<DistanceKind>().is_err());
    }
}
