//! Dense dynamic-programming matrix used by DTW, LCS and edit distance.

use std::fmt;

/// A dense `(m + 1) x (n + 1)` dynamic-programming matrix.
///
/// Row 0 and column 0 hold the DP boundary conditions; cell `(i, j)` for
/// `i, j >= 1` corresponds to the prefix pair `(P[..i], Q[..j])`. Exposing
/// the full matrix (rather than only the final value) lets callers recover
/// warping paths and lets the accelerator validation compare cell-by-cell
/// against analog PE outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct DpMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DpMatrix {
    /// Creates a matrix with `rows x cols` cells, all initialised to `fill`.
    pub fn filled(rows: usize, cols: usize, fill: f64) -> Self {
        DpMatrix {
            rows,
            cols,
            data: vec![fill; rows * cols],
        }
    }

    /// Number of rows (`m + 1` for a comparison of an `m`-element `P`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (`n + 1` for an `n`-element `Q`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The value at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Sets the value at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// The bottom-right cell — the final distance/similarity value.
    pub fn final_value(&self) -> f64 {
        self.at(self.rows - 1, self.cols - 1)
    }

    /// A view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Iterates over `(i, j, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(k, &v)| (k / cols, k % cols, v))
    }
}

impl fmt::Display for DpMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                let v = self.at(i, j);
                if v.is_infinite() {
                    write!(f, "{:>9}", if v > 0.0 { "inf" } else { "-inf" })?;
                } else {
                    write!(f, "{v:>9.3}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// One step of a DTW warping path, as `(i, j)` cell coordinates
/// (1-based within the DP matrix, i.e. `(1, 1)` aligns `P[0]` with `Q[0]`).
pub type PathStep = (usize, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_indexing() {
        let mut m = DpMatrix::filled(3, 4, 0.0);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        m.set(2, 3, 7.5);
        assert_eq!(m.at(2, 3), 7.5);
        assert_eq!(m.final_value(), 7.5);
        assert_eq!(m.at(0, 0), 0.0);
    }

    #[test]
    fn iter_yields_row_major_triples() {
        let mut m = DpMatrix::filled(2, 2, 0.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 2.0);
        let triples: Vec<_> = m.iter().collect();
        assert_eq!(
            triples,
            vec![(0, 0, 0.0), (0, 1, 1.0), (1, 0, 2.0), (1, 1, 0.0)]
        );
    }

    #[test]
    fn display_renders_infinities() {
        let mut m = DpMatrix::filled(1, 2, f64::INFINITY);
        m.set(0, 0, 1.0);
        let s = m.to_string();
        assert!(s.contains("inf"));
        assert!(s.contains("1.000"));
    }
}
