//! Element/pair weights for the *weighted* variants of each distance.
//!
//! Section 2 of the paper: "Considering that in real applications the
//! significance of each element is different, weight is introduced", citing
//! weighted DTW/LCS/MD/HamD/HauD/EdD. On the accelerator, weights map to
//! memristor resistance ratios (Section 3.2); in the digital reference they
//! are plain multipliers.

use crate::error::DistanceError;

/// Weights applied to element comparisons.
///
/// * Matrix-structure functions (DTW, LCS, EdD, HauD) use a pairwise weight
///   `w[i][j]` looked up with [`Weights::pair`].
/// * Row-structure functions (HamD, MD) use a per-position weight `w[i]`
///   looked up with [`Weights::element`].
///
/// The default, [`Weights::Uniform`], corresponds to the general (unweighted)
/// functions where every weight is 1 — the configuration the paper's
/// experiments use ("weights are set to 1 to make a fair comparison").
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Weights {
    /// Every weight is `1.0` (HRS/LRS-only memristor configuration).
    #[default]
    Uniform,
    /// Per-position weights `w[i]`, used by the row structure. When consulted
    /// for a pair `(i, j)` the row weight `w[i]` is returned.
    PerElement(Vec<f64>),
    /// Dense pairwise weights `w[i][j]` in row-major order, used by the
    /// matrix structure.
    PerPair {
        /// Number of rows (`m`, length of `P`).
        rows: usize,
        /// Number of columns (`n`, length of `Q`).
        cols: usize,
        /// Row-major weight values, `rows * cols` entries.
        values: Vec<f64>,
    },
}

impl Weights {
    /// Creates a dense pairwise weight matrix.
    ///
    /// # Errors
    ///
    /// Returns [`DistanceError::WeightShape`] if `values.len() != rows * cols`
    /// and [`DistanceError::InvalidParameter`] if any weight is negative or
    /// non-finite.
    pub fn per_pair(rows: usize, cols: usize, values: Vec<f64>) -> Result<Self, DistanceError> {
        if values.len() != rows * cols {
            return Err(DistanceError::WeightShape {
                expected: format!("{rows} x {cols} = {}", rows * cols),
                actual: format!("{} values", values.len()),
            });
        }
        Self::validate_values(&values)?;
        Ok(Weights::PerPair { rows, cols, values })
    }

    /// Creates per-position weights.
    ///
    /// # Errors
    ///
    /// Returns [`DistanceError::InvalidParameter`] if any weight is negative
    /// or non-finite.
    pub fn per_element(values: Vec<f64>) -> Result<Self, DistanceError> {
        Self::validate_values(&values)?;
        Ok(Weights::PerElement(values))
    }

    fn validate_values(values: &[f64]) -> Result<(), DistanceError> {
        if let Some(w) = values.iter().find(|w| !w.is_finite() || **w < 0.0) {
            return Err(DistanceError::InvalidParameter {
                name: "weights",
                reason: format!("weights must be finite and non-negative, got {w}"),
            });
        }
        Ok(())
    }

    /// The weight for the pair `(i, j)` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range for a non-uniform weight shape;
    /// shape compatibility is checked once by [`Weights::check_pair_shape`]
    /// before any lookups happen.
    pub fn pair(&self, i: usize, j: usize) -> f64 {
        match self {
            Weights::Uniform => 1.0,
            Weights::PerElement(v) => v[i],
            Weights::PerPair { cols, values, .. } => values[i * cols + j],
        }
    }

    /// The weight for position `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for [`Weights::PerElement`]; shape
    /// compatibility is checked once by [`Weights::check_element_shape`].
    pub fn element(&self, i: usize) -> f64 {
        match self {
            Weights::Uniform => 1.0,
            Weights::PerElement(v) => v[i],
            Weights::PerPair { cols, values, .. } => values[i * cols + i.min(cols - 1)],
        }
    }

    /// Validates that this weight shape can serve pairwise lookups over an
    /// `m x n` comparison.
    ///
    /// # Errors
    ///
    /// Returns [`DistanceError::WeightShape`] on mismatch.
    pub fn check_pair_shape(&self, m: usize, n: usize) -> Result<(), DistanceError> {
        match self {
            Weights::Uniform => Ok(()),
            Weights::PerElement(v) if v.len() >= m => Ok(()),
            Weights::PerElement(v) => Err(DistanceError::WeightShape {
                expected: format!("at least {m} element weights"),
                actual: format!("{} element weights", v.len()),
            }),
            Weights::PerPair { rows, cols, .. } if *rows >= m && *cols >= n => Ok(()),
            Weights::PerPair { rows, cols, .. } => Err(DistanceError::WeightShape {
                expected: format!("{m} x {n}"),
                actual: format!("{rows} x {cols}"),
            }),
        }
    }

    /// Validates that this weight shape can serve per-position lookups over
    /// `n` positions.
    ///
    /// # Errors
    ///
    /// Returns [`DistanceError::WeightShape`] on mismatch.
    pub fn check_element_shape(&self, n: usize) -> Result<(), DistanceError> {
        match self {
            Weights::Uniform => Ok(()),
            Weights::PerElement(v) if v.len() >= n => Ok(()),
            Weights::PerElement(v) => Err(DistanceError::WeightShape {
                expected: format!("at least {n} element weights"),
                actual: format!("{} element weights", v.len()),
            }),
            Weights::PerPair { rows, cols, .. } if *rows >= n && *cols >= n => Ok(()),
            Weights::PerPair { rows, cols, .. } => Err(DistanceError::WeightShape {
                expected: format!("{n} x {n}"),
                actual: format!("{rows} x {cols}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_always_one() {
        let w = Weights::Uniform;
        assert_eq!(w.pair(100, 3), 1.0);
        assert_eq!(w.element(7), 1.0);
        w.check_pair_shape(1000, 1000).unwrap();
        w.check_element_shape(1000).unwrap();
    }

    #[test]
    fn per_pair_row_major_lookup() {
        let w = Weights::per_pair(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(w.pair(0, 0), 1.0);
        assert_eq!(w.pair(0, 2), 3.0);
        assert_eq!(w.pair(1, 0), 4.0);
        assert_eq!(w.pair(1, 2), 6.0);
    }

    #[test]
    fn per_pair_shape_mismatch_rejected() {
        let err = Weights::per_pair(2, 2, vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, DistanceError::WeightShape { .. }));
    }

    #[test]
    fn negative_weight_rejected() {
        let err = Weights::per_element(vec![1.0, -0.5]).unwrap_err();
        assert!(matches!(err, DistanceError::InvalidParameter { .. }));
        let err = Weights::per_pair(1, 1, vec![f64::NAN]).unwrap_err();
        assert!(matches!(err, DistanceError::InvalidParameter { .. }));
    }

    #[test]
    fn per_element_serves_pairs_by_row() {
        let w = Weights::per_element(vec![0.5, 2.0]).unwrap();
        assert_eq!(w.pair(0, 5), 0.5);
        assert_eq!(w.pair(1, 0), 2.0);
        assert_eq!(w.element(1), 2.0);
    }

    #[test]
    fn shape_checks() {
        let w = Weights::per_element(vec![1.0; 4]).unwrap();
        w.check_element_shape(4).unwrap();
        assert!(w.check_element_shape(5).is_err());
        w.check_pair_shape(4, 10).unwrap();
        assert!(w.check_pair_shape(5, 1).is_err());

        let w = Weights::per_pair(3, 4, vec![1.0; 12]).unwrap();
        w.check_pair_shape(3, 4).unwrap();
        w.check_pair_shape(2, 2).unwrap();
        assert!(w.check_pair_shape(4, 4).is_err());
    }
}
