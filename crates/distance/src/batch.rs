//! Multi-core batched distance execution.
//!
//! The mining workloads (classification, clustering, motif discovery,
//! subsequence search) all reduce to *pairwise-distance batches*: evaluate a
//! kernel over a list of independent work items, then reduce. [`BatchEngine`]
//! shards such batches across scoped worker threads with three invariants:
//!
//! 1. **Determinism.** Work is split into fixed-size chunks whose boundaries
//!    depend only on the chunk size — never on the thread count or on
//!    scheduling. Results are stitched back together in item order, and every
//!    reduction the mining drivers perform on top runs serially over that
//!    ordered output, so an engine with 1 thread and an engine with N threads
//!    return bitwise-identical results (ties broken by lowest index, exactly
//!    as the serial code did).
//! 2. **No per-pair allocation.** Each worker owns one per-thread state value
//!    (typically a [`DpScratch`](crate::scratch::DpScratch) of reusable DP
//!    rows, or a cloned accelerator instance) created once when the worker
//!    starts and threaded through every item it processes.
//! 3. **Serial error semantics.** If items fail, the error reported is the
//!    one the serial loop would have hit first (lowest item index), chosen in
//!    the ordered reduction regardless of which worker saw it.
//!
//! Chunks are claimed dynamically from an atomic counter, so a chunk whose
//! items prune cheaply does not leave its worker idle while a neighbour
//! grinds through full DP computations.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::error::DistanceError;
use crate::scratch::DpScratch;

/// Default number of items per chunk. Chosen so per-chunk overhead (an atomic
/// fetch-add and a vec append) is negligible against even the cheapest kernel
/// while still exposing enough chunks for load balancing.
pub const DEFAULT_CHUNK_SIZE: usize = 64;

/// A deterministic multi-threaded executor for pairwise-distance batches.
///
/// ```
/// use mda_distance::batch::BatchEngine;
///
/// let engine = BatchEngine::new().with_threads(4);
/// let squares: Vec<usize> = engine
///     .try_map(&[1usize, 2, 3, 4], |_, &x| Ok::<_, ()>(x * x))
///     .unwrap();
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct BatchEngine {
    threads: usize,
    chunk_size: usize,
}

impl Default for BatchEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchEngine {
    /// An engine using every available core (as reported by
    /// [`std::thread::available_parallelism`]; 1 if unknown).
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        BatchEngine {
            threads,
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }

    /// A single-threaded engine (runs every chunk inline, in order).
    pub fn serial() -> Self {
        BatchEngine {
            threads: 1,
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }

    /// Sets the worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be at least 1");
        self.threads = threads;
        self
    }

    /// Sets the chunk size. The chunk size — not the thread count — defines
    /// the work decomposition, so changing it may change chunk-local
    /// statistics (e.g. pruning counters), while changing the thread count
    /// never does.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    #[must_use]
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be at least 1");
        self.chunk_size = chunk_size;
        self
    }

    /// Fallible [`Self::with_threads`], for configuration that arrives from
    /// users or the network: a zero thread count becomes a typed
    /// [`DistanceError::InvalidParameter`] instead of a panic.
    ///
    /// # Errors
    ///
    /// [`DistanceError::InvalidParameter`] when `threads` is 0.
    pub fn try_with_threads(self, threads: usize) -> Result<Self, DistanceError> {
        if threads == 0 {
            return Err(DistanceError::InvalidParameter {
                name: "threads",
                reason: "worker-thread count must be at least 1".into(),
            });
        }
        Ok(self.with_threads(threads))
    }

    /// Fallible [`Self::with_chunk_size`], the typed-error sibling of
    /// [`Self::try_with_threads`].
    ///
    /// # Errors
    ///
    /// [`DistanceError::InvalidParameter`] when `chunk_size` is 0.
    pub fn try_with_chunk_size(self, chunk_size: usize) -> Result<Self, DistanceError> {
        if chunk_size == 0 {
            return Err(DistanceError::InvalidParameter {
                name: "chunk_size",
                reason: "chunk size must be at least 1".into(),
            });
        }
        Ok(self.with_chunk_size(chunk_size))
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// The core primitive: runs `f` once per fixed-size chunk of `items`,
    /// threading a per-worker state value (from `init`) through every chunk a
    /// worker claims, and returns the concatenated per-chunk outputs in item
    /// order.
    ///
    /// `f` receives `(state, chunk_start_index, chunk_items)` and returns one
    /// output per chunk item. Chunk boundaries depend only on the chunk
    /// size, so outputs are identical for every thread count.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing chunk (within a chunk,
    /// `f` decides; the drivers short-circuit at the first failing item).
    pub fn try_map_chunks<S, T, R, E, I, F>(&self, items: &[T], init: I, f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &[T]) -> Result<Vec<R>, E> + Sync,
    {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let chunk_count = items.len().div_ceil(self.chunk_size);
        let workers = self.threads.min(chunk_count);

        // Inline fast path: nothing to gain from spawning.
        if workers == 1 {
            let mut state = init();
            let mut out = Vec::with_capacity(items.len());
            for (ci, chunk) in items.chunks(self.chunk_size).enumerate() {
                out.extend(f(&mut state, ci * self.chunk_size, chunk)?);
            }
            return Ok(out);
        }

        let next = AtomicUsize::new(0);
        let mut per_chunk: Vec<Option<Result<Vec<R>, E>>> =
            (0..chunk_count).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let init = &init;
                    let f = &f;
                    scope.spawn(move || {
                        let mut state = init();
                        let mut local: Vec<(usize, Result<Vec<R>, E>)> = Vec::new();
                        loop {
                            let ci = next.fetch_add(1, Ordering::Relaxed);
                            if ci >= chunk_count {
                                break;
                            }
                            let start = ci * self.chunk_size;
                            let end = (start + self.chunk_size).min(items.len());
                            local.push((ci, f(&mut state, start, &items[start..end])));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                let local = handle
                    .join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
                for (ci, result) in local {
                    per_chunk[ci] = Some(result);
                }
            }
        });

        // Ordered reduction: concatenate chunk outputs, surfacing the error
        // of the lowest-indexed failing chunk — what a serial loop hits.
        let mut out = Vec::with_capacity(items.len());
        for result in per_chunk {
            out.extend(result.expect("every chunk index was claimed exactly once")?);
        }
        Ok(out)
    }

    /// Maps `f` over every item with a per-worker state value, returning
    /// outputs in item order.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed item's error.
    pub fn try_map_with<S, T, R, E, I, F>(&self, items: &[T], init: I, f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> Result<R, E> + Sync,
    {
        self.try_map_chunks(items, init, |state, start, chunk| {
            chunk
                .iter()
                .enumerate()
                .map(|(k, item)| f(state, start + k, item))
                .collect()
        })
    }

    /// Maps a stateless `f` over every item, returning outputs in item order.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed item's error.
    pub fn try_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        self.try_map_with(items, || (), |(), i, item| f(i, item))
    }

    /// Maps `f` over every item with a per-worker [`DpScratch`] — the shape
    /// every DP-kernel batch uses.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed item's error.
    pub fn try_map_scratch<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(&mut DpScratch, usize, &T) -> Result<R, E> + Sync,
    {
        self.try_map_with(items, DpScratch::new, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_builders_reject_zero_with_typed_errors() {
        assert!(matches!(
            BatchEngine::new().try_with_threads(0),
            Err(DistanceError::InvalidParameter {
                name: "threads",
                ..
            })
        ));
        assert!(matches!(
            BatchEngine::new().try_with_chunk_size(0),
            Err(DistanceError::InvalidParameter {
                name: "chunk_size",
                ..
            })
        ));
        let engine = BatchEngine::serial()
            .try_with_threads(3)
            .unwrap()
            .try_with_chunk_size(5)
            .unwrap();
        assert_eq!((engine.threads(), engine.chunk_size()), (3, 5));
    }

    #[test]
    fn outputs_preserve_item_order() {
        let items: Vec<usize> = (0..1000).collect();
        let engine = BatchEngine::new().with_threads(8).with_chunk_size(7);
        let out: Vec<usize> = engine
            .try_map(&items, |i, &x| Ok::<_, ()>(i * 1000 + x))
            .unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 1000 + i);
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        let items: Vec<f64> = (0..500).map(|i| (i as f64 * 0.37).sin()).collect();
        let kernel = |_: usize, x: &f64| Ok::<f64, ()>(x * 1.0000001 + 0.25);
        let one = BatchEngine::serial().try_map(&items, kernel).unwrap();
        for threads in [2, 3, 8] {
            let many = BatchEngine::new()
                .with_threads(threads)
                .try_map(&items, kernel)
                .unwrap();
            assert_eq!(one, many, "thread count {threads} changed results");
        }
    }

    #[test]
    fn lowest_index_error_wins() {
        let items: Vec<usize> = (0..400).collect();
        let engine = BatchEngine::new().with_threads(4).with_chunk_size(16);
        // Items 37 and 251 fail; the serial loop would report 37 first.
        let err = engine
            .try_map(
                &items,
                |_, &x| {
                    if x == 37 || x == 251 {
                        Err(x)
                    } else {
                        Ok(x)
                    }
                },
            )
            .unwrap_err();
        assert_eq!(err, 37);
    }

    #[test]
    fn per_worker_state_is_reused_not_shared() {
        // Each worker counts the items it processed in its own state; the
        // total must cover every item exactly once.
        use std::sync::atomic::AtomicUsize;
        let total = AtomicUsize::new(0);
        struct Counter<'a>(usize, &'a AtomicUsize);
        impl Drop for Counter<'_> {
            fn drop(&mut self) {
                self.1.fetch_add(self.0, Ordering::Relaxed);
            }
        }
        let items: Vec<usize> = (0..300).collect();
        BatchEngine::new()
            .with_threads(4)
            .with_chunk_size(8)
            .try_map_with(
                &items,
                || Counter(0, &total),
                |c, _, &x| {
                    c.0 += 1;
                    Ok::<_, ()>(x)
                },
            )
            .unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 300);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<usize> = BatchEngine::new()
            .try_map(&[] as &[usize], |_, &x| Ok::<_, ()>(x))
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn chunk_callback_sees_fixed_boundaries() {
        let items: Vec<usize> = (0..100).collect();
        let engine = BatchEngine::serial().with_chunk_size(32);
        let starts: Vec<usize> = engine
            .try_map_chunks(
                &items,
                || (),
                |(), start, chunk| Ok::<_, ()>(vec![start; chunk.len()]),
            )
            .unwrap();
        assert_eq!(starts[0], 0);
        assert_eq!(starts[31], 0);
        assert_eq!(starts[32], 32);
        assert_eq!(starts[99], 96);
    }

    #[test]
    #[should_panic(expected = "thread count")]
    fn zero_threads_rejected() {
        let _ = BatchEngine::new().with_threads(0);
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_rejected() {
        let _ = BatchEngine::new().with_chunk_size(0);
    }
}
