//! Opt-in quantized DTW kernel mirroring the analog converter interface.
//!
//! The accelerator never sees f64 inputs: the DAC array quantizes every
//! sample to an 8-bit code before it reaches the crossbar (Section 4.3 of
//! the paper). This module reproduces that numeric regime digitally — inputs
//! are encoded to `i16` converter codes on a mid-tread grid, the point cost
//! `|p_i − q_j|` becomes an exact integer code difference, and the DP
//! accumulates in `f32` (integer sums stay exact in `f32` far beyond any
//! realistic path cost). The final distance is rescaled to sequence units by
//! one multiply with the LSB.
//!
//! This path is **opt-in** and deliberately separate from [`crate::Dtw`]:
//! the exact f64 kernels stay the golden reference, while
//! [`QuantizedDtw`] answers "what does converter resolution alone do to the
//! distance?" — its deviation from the reference is checked against the
//! calibrated behavioural bounds in `mda-conformance`, and its throughput is
//! reported by the `kernels` bench.

use crate::dtw::{Band, Dtw};
use crate::error::DistanceError;
use crate::validate::ensure_finite;

/// Mid-tread uniform quantization grid: `bits` of resolution over the
/// symmetric range `[-full_scale/2, +full_scale/2]`, in sequence units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantSpec {
    bits: u32,
    full_scale: f64,
}

impl QuantSpec {
    /// A grid with `bits` of resolution over `±full_scale/2`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=15` (codes must fit `i16`) or
    /// `full_scale` is not a positive finite number.
    pub fn new(bits: u32, full_scale: f64) -> Self {
        assert!((1..=15).contains(&bits), "bits must be in 1..=15");
        assert!(
            full_scale.is_finite() && full_scale > 0.0,
            "full_scale must be positive and finite"
        );
        QuantSpec { bits, full_scale }
    }

    /// The paper's converter interface in sequence units: the 8-bit
    /// reference DAC spans ±125 mV at a 20 mV/unit encoding, i.e. ±6.25
    /// sequence units — the ±6-sigma range of z-normalized inputs.
    pub fn paper_reference() -> Self {
        QuantSpec::new(8, 12.5)
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The quantization step in sequence units.
    pub fn lsb(&self) -> f64 {
        self.full_scale / (1u64 << self.bits) as f64
    }

    /// Encodes one finite sample to its converter code (mid-tread, clamped
    /// to full scale).
    pub fn encode(&self, v: f64) -> i16 {
        let half = self.full_scale / 2.0;
        (v.clamp(-half, half) / self.lsb()).round() as i16
    }

    /// Encodes a series into `out` (cleared first).
    pub fn encode_series(&self, xs: &[f64], out: &mut Vec<i16>) {
        out.clear();
        out.extend(xs.iter().map(|&v| self.encode(v)));
    }
}

/// Banded DTW over converter codes: `i16` inputs, integer point costs,
/// `f32` accumulation — the numeric regime of the analog datapath.
///
/// ```
/// use mda_distance::{Dtw, quantized::QuantizedDtw};
/// # fn main() -> Result<(), mda_distance::DistanceError> {
/// let p = [0.0, 1.0, 2.0, 1.0, 0.0];
/// let q = [0.0, 0.9, 2.1, 1.1, 0.1];
/// let exact = Dtw::new().distance(&p, &q)?;
/// let quant = QuantizedDtw::paper_reference().distance(&p, &q)?;
/// assert!((quant - exact).abs() < 0.2, "quant {quant} vs exact {exact}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizedDtw {
    spec: QuantSpec,
    band: Band,
}

impl QuantizedDtw {
    /// A quantized DTW on the given grid with no band constraint.
    pub fn new(spec: QuantSpec) -> Self {
        QuantizedDtw {
            spec,
            band: Band::Full,
        }
    }

    /// The paper's 8-bit converter grid, no band constraint.
    pub fn paper_reference() -> Self {
        QuantizedDtw::new(QuantSpec::paper_reference())
    }

    /// Restricts the warping path to `band`.
    #[must_use]
    pub fn with_band(mut self, band: Band) -> Self {
        self.band = band;
        self
    }

    /// The quantization grid.
    pub fn spec(&self) -> QuantSpec {
        self.spec
    }

    /// Quantized DTW distance in sequence units.
    ///
    /// # Errors
    ///
    /// Returns [`DistanceError::EmptySequence`] on empty input,
    /// [`DistanceError::InvalidParameter`] if an input contains a NaN or
    /// infinity or the band admits no warping path.
    pub fn distance(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        if p.is_empty() || q.is_empty() {
            return Err(DistanceError::EmptySequence);
        }
        ensure_finite("p", p)?;
        ensure_finite("q", q)?;
        let mut cp = Vec::new();
        let mut cq = Vec::new();
        self.spec.encode_series(p, &mut cp);
        self.spec.encode_series(q, &mut cq);
        let total = self.distance_codes(&cp, &cq)?;
        Ok(total * self.spec.lsb())
    }

    /// The DP over raw codes; the result is in LSB units.
    fn distance_codes(&self, cp: &[i16], cq: &[i16]) -> Result<f64, DistanceError> {
        let (m, n) = (cp.len(), cq.len());
        let mut prev = vec![f32::INFINITY; n + 1];
        let mut curr = vec![f32::INFINITY; n + 1];
        prev[0] = 0.0;
        // Written-segment bookkeeping exactly as in the exact early-abandon
        // kernel: wipe only what the recycled row held.
        let mut w_prev = (0usize, 0usize);
        let mut w_curr = (1usize, 0usize);
        for (i, &pi) in cp.iter().enumerate().map(|(i, v)| (i + 1, v)) {
            if w_curr.0 <= w_curr.1 {
                curr[w_curr.0..=w_curr.1].fill(f32::INFINITY);
            }
            curr[0] = f32::INFINITY;
            let (lo, hi) = self.band.row_range(i, m, n);
            for j in lo..=hi {
                let cost = f32::from((pi - cq[j - 1]).abs());
                let best = curr[j - 1].min(prev[j]).min(prev[j - 1]);
                curr[j] = if best.is_finite() {
                    cost + best
                } else {
                    f32::INFINITY
                };
            }
            w_curr = (lo, hi);
            std::mem::swap(&mut prev, &mut curr);
            std::mem::swap(&mut w_prev, &mut w_curr);
        }
        let total = prev[n];
        if !total.is_finite() {
            return Err(DistanceError::InvalidParameter {
                name: "band",
                reason: format!(
                    "band too narrow: no admissible warping path for lengths {m} and {n}"
                ),
            });
        }
        Ok(f64::from(total))
    }
}

/// The exact reference this path is measured against: same band, f64 kernel.
pub fn reference_dtw(band: Band) -> Dtw {
    Dtw::new().with_band(band)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_mid_tread_and_clamped() {
        let s = QuantSpec::paper_reference();
        assert_eq!(s.encode(0.0), 0);
        assert_eq!(s.encode(s.lsb()), 1);
        assert_eq!(s.encode(s.lsb() * 0.49), 0);
        assert_eq!(s.encode(-s.lsb() * 2.4), -2);
        // Far out of range clamps to full scale.
        assert_eq!(s.encode(1e9), s.encode(6.25));
        assert_eq!(s.encode(-1e9), s.encode(-6.25));
    }

    #[test]
    fn exact_on_grid_inputs() {
        // Inputs already on the grid quantize losslessly; integer f32 sums
        // are exact, so the quantized kernel reproduces the f64 reference
        // bit-for-bit.
        let s = QuantSpec::paper_reference();
        let p: Vec<f64> = [0, 3, -7, 12, 5, -1]
            .iter()
            .map(|&c| c as f64 * s.lsb())
            .collect();
        let q: Vec<f64> = [1, 2, -6, 10, 7, 0]
            .iter()
            .map(|&c| c as f64 * s.lsb())
            .collect();
        let exact = Dtw::new().distance(&p, &q).unwrap();
        let quant = QuantizedDtw::new(s).distance(&p, &q).unwrap();
        assert_eq!(quant, exact);
    }

    #[test]
    fn error_is_bounded_by_path_length_times_lsb() {
        let qd = QuantizedDtw::paper_reference();
        let lsb = qd.spec().lsb();
        for seed in 0..8u64 {
            let p: Vec<f64> = (0..24)
                .map(|i| ((i as f64 + seed as f64) * 0.7).sin() * 2.0)
                .collect();
            let q: Vec<f64> = (0..19)
                .map(|i| ((i as f64 * 1.3 + seed as f64) * 0.5).cos() * 2.0)
                .collect();
            let exact = Dtw::new().distance(&p, &q).unwrap();
            let quant = qd.distance(&p, &q).unwrap();
            // Each warped cell's cost moves by at most one LSB.
            let limit = (p.len() + q.len()) as f64 * lsb;
            assert!(
                (quant - exact).abs() <= limit,
                "seed {seed}: quant {quant} exact {exact} limit {limit}"
            );
        }
    }

    #[test]
    fn band_agrees_with_exact_kernel_banding() {
        let p: Vec<f64> = (0..16).map(|i| (i as f64 * 0.4).sin()).collect();
        let q: Vec<f64> = (0..16).map(|i| (i as f64 * 0.4 + 0.2).sin()).collect();
        let banded = QuantizedDtw::paper_reference()
            .with_band(Band::SakoeChiba(2))
            .distance(&p, &q)
            .unwrap();
        let full = QuantizedDtw::paper_reference().distance(&p, &q).unwrap();
        assert!(banded >= full, "banding can only restrict the path");
    }

    #[test]
    fn rejects_empty_and_non_finite() {
        let qd = QuantizedDtw::paper_reference();
        assert!(matches!(
            qd.distance(&[], &[1.0]),
            Err(DistanceError::EmptySequence)
        ));
        assert!(matches!(
            qd.distance(&[f64::NAN], &[1.0]),
            Err(DistanceError::InvalidParameter { name: "p", .. })
        ));
        assert!(matches!(
            qd.distance(&[1.0], &[f64::INFINITY]),
            Err(DistanceError::InvalidParameter { name: "q", .. })
        ));
    }

    #[test]
    fn narrow_band_on_unequal_lengths_errors() {
        let qd = QuantizedDtw::paper_reference().with_band(Band::SakoeChiba(0));
        let p = vec![0.0; 10];
        let q = vec![0.0; 3];
        assert!(matches!(
            qd.distance(&p, &q),
            Err(DistanceError::InvalidParameter { name: "band", .. })
        ));
    }
}
