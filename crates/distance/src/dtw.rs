//! Dynamic time warping (DTW), Eq. 2 of the paper.
//!
//! ```text
//! D[i][j] = w[i][j] * |P[i] - Q[j]| + min(D[i][j-1], D[i-1][j], D[i-1][j-1])
//! D[0][0] = 0,  D[0][j] = D[i][0] = inf
//! DTW(P, Q) = D[n][m]
//! ```
//!
//! Supports the Sakoe–Chiba band constraint the paper adopts from
//! Rakthanmanon et al. (the "UCR suite"), and per-cell weights for weighted
//! DTW (Jeong et al.).

use crate::error::DistanceError;
use crate::matrix::{DpMatrix, PathStep};
use crate::scratch::DpScratch;
use crate::weights::Weights;
use crate::{Distance, DistanceKind};

/// Global path constraint for DTW.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Band {
    /// No constraint: the warping path may wander anywhere in the matrix.
    #[default]
    Full,
    /// Sakoe–Chiba band of half-width `r`: cell `(i, j)` is admissible only
    /// if `|i - j| <= r` (after the usual length-difference correction for
    /// unequal lengths). The paper's power analysis uses `r = 5% * n`.
    SakoeChiba(usize),
}

impl Band {
    /// The paper's default band for the power analysis: `R = 5% * n`,
    /// rounded up so the band is never empty.
    pub fn five_percent(n: usize) -> Band {
        Band::SakoeChiba((n as f64 * 0.05).ceil().max(1.0) as usize)
    }

    /// Is cell `(i, j)` (1-based DP coordinates) inside the band for an
    /// `m x n` comparison?
    ///
    /// The diagonal is corrected for unequal lengths: row `i` maps onto the
    /// "ideal" column `i * n / m` and the band allows `±r` around it. The
    /// comparison `|j - i*n/m| <= r` is evaluated exactly in integers as
    /// `|j*m - i*n| <= r*m`, so cells exactly on the band edge are admitted
    /// regardless of sequence length — the previous float formulation leaned
    /// on a `1e-12` fudge whose slack is overtaken by `i*n` rounding once
    /// products exceed 2^53.
    #[inline]
    pub fn admissible(self, i: usize, j: usize, m: usize, n: usize) -> bool {
        match self {
            Band::Full => true,
            Band::SakoeChiba(r) => {
                let jm = j as i128 * m as i128;
                let i_n = i as i128 * n as i128;
                (jm - i_n).abs() <= r as i128 * m as i128
            }
        }
    }

    /// Number of admissible cells for an `m x n` comparison — the count of
    /// PEs that must be powered on the accelerator.
    pub fn active_cells(self, m: usize, n: usize) -> usize {
        (1..=m)
            .map(|i| (1..=n).filter(|&j| self.admissible(i, j, m, n)).count())
            .sum()
    }
}

/// Dynamic time warping distance.
///
/// ```
/// use mda_distance::{Dtw, Distance};
/// # fn main() -> Result<(), mda_distance::DistanceError> {
/// // A shifted copy of a ramp warps onto itself with zero cost at the
/// // overlapping portion.
/// let d = Dtw::new().evaluate(&[0.0, 1.0, 2.0, 3.0], &[0.0, 0.0, 1.0, 2.0, 3.0])?;
/// assert_eq!(d, 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dtw {
    band: Band,
    weights: Weights,
}

impl Dtw {
    /// DTW with no band constraint and uniform weights.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the global path constraint.
    #[must_use]
    pub fn with_band(mut self, band: Band) -> Self {
        self.band = band;
        self
    }

    /// Sets per-cell weights (weighted DTW).
    #[must_use]
    pub fn with_weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// The configured band.
    pub fn band(&self) -> Band {
        self.band
    }

    /// The configured weights.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// Computes the full DP matrix (including the infinite boundary row and
    /// column). Cell `(i, j)` of the result is `D[i][j]` of Eq. 2.
    ///
    /// # Errors
    ///
    /// Returns [`DistanceError::EmptySequence`] for empty inputs or
    /// [`DistanceError::WeightShape`] if the weights don't cover `m x n`.
    pub fn matrix(&self, p: &[f64], q: &[f64]) -> Result<DpMatrix, DistanceError> {
        if p.is_empty() || q.is_empty() {
            return Err(DistanceError::EmptySequence);
        }
        let (m, n) = (p.len(), q.len());
        self.weights.check_pair_shape(m, n)?;

        let mut d = DpMatrix::filled(m + 1, n + 1, f64::INFINITY);
        d.set(0, 0, 0.0);
        for i in 1..=m {
            for j in 1..=n {
                if !self.band.admissible(i, j, m, n) {
                    continue;
                }
                let cost = self.weights.pair(i - 1, j - 1) * (p[i - 1] - q[j - 1]).abs();
                let best = d.at(i, j - 1).min(d.at(i - 1, j)).min(d.at(i - 1, j - 1));
                if best.is_finite() {
                    d.set(i, j, cost + best);
                }
            }
        }
        Ok(d)
    }

    /// Computes the DTW distance using O(n) memory (two DP rows).
    ///
    /// This is the variant benchmarked as the CPU baseline — it is what an
    /// optimized software implementation (the paper's MSVC `-O2` C code)
    /// would use.
    ///
    /// # Errors
    ///
    /// Same as [`Dtw::matrix`].
    pub fn distance(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        self.distance_with(p, q, &mut DpScratch::new())
    }

    /// [`Dtw::distance`] with caller-provided scratch rows: batch workloads
    /// reuse one [`DpScratch`] per worker thread instead of allocating two
    /// DP rows per pair.
    ///
    /// # Errors
    ///
    /// Same as [`Dtw::matrix`].
    pub fn distance_with(
        &self,
        p: &[f64],
        q: &[f64],
        scratch: &mut DpScratch,
    ) -> Result<f64, DistanceError> {
        if p.is_empty() || q.is_empty() {
            return Err(DistanceError::EmptySequence);
        }
        let (m, n) = (p.len(), q.len());
        self.weights.check_pair_shape(m, n)?;

        let (mut prev, mut curr) = scratch.rows(n + 1, f64::INFINITY);
        prev[0] = 0.0;
        for i in 1..=m {
            curr.fill(f64::INFINITY);
            for j in 1..=n {
                if !self.band.admissible(i, j, m, n) {
                    continue;
                }
                let cost = self.weights.pair(i - 1, j - 1) * (p[i - 1] - q[j - 1]).abs();
                let best = curr[j - 1].min(prev[j]).min(prev[j - 1]);
                if best.is_finite() {
                    curr[j] = cost + best;
                }
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        let v = prev[n];
        if v.is_finite() {
            Ok(v)
        } else {
            Err(DistanceError::InvalidParameter {
                name: "band",
                reason: format!(
                    "band too narrow: no admissible warping path for lengths {m} and {n}"
                ),
            })
        }
    }

    /// Computes the DTW distance with **early abandoning**: if every cell of
    /// some DP row already exceeds `best_so_far`, no warping path can beat
    /// it, and the computation stops, returning `None`.
    ///
    /// This is the row-wise abandoning of the UCR suite (the paper's
    /// reference \[24\]); [`crate::lower_bounds::cascading_dtw`] uses the
    /// cheaper LB_Kim/LB_Keogh first, and a search loop would call this as
    /// the final stage.
    ///
    /// # Errors
    ///
    /// Same as [`Dtw::matrix`].
    pub fn distance_early_abandon(
        &self,
        p: &[f64],
        q: &[f64],
        best_so_far: f64,
    ) -> Result<Option<f64>, DistanceError> {
        self.distance_early_abandon_with(p, q, best_so_far, &mut DpScratch::new())
    }

    /// [`Dtw::distance_early_abandon`] with caller-provided scratch rows.
    ///
    /// # Errors
    ///
    /// Same as [`Dtw::matrix`].
    pub fn distance_early_abandon_with(
        &self,
        p: &[f64],
        q: &[f64],
        best_so_far: f64,
        scratch: &mut DpScratch,
    ) -> Result<Option<f64>, DistanceError> {
        if p.is_empty() || q.is_empty() {
            return Err(DistanceError::EmptySequence);
        }
        let (m, n) = (p.len(), q.len());
        self.weights.check_pair_shape(m, n)?;

        let (mut prev, mut curr) = scratch.rows(n + 1, f64::INFINITY);
        prev[0] = 0.0;
        for i in 1..=m {
            curr.fill(f64::INFINITY);
            let mut row_min = f64::INFINITY;
            for j in 1..=n {
                if !self.band.admissible(i, j, m, n) {
                    continue;
                }
                let cost = self.weights.pair(i - 1, j - 1) * (p[i - 1] - q[j - 1]).abs();
                let best = curr[j - 1].min(prev[j]).min(prev[j - 1]);
                if best.is_finite() {
                    curr[j] = cost + best;
                    row_min = row_min.min(curr[j]);
                }
            }
            // DP values only grow down the matrix (non-negative costs), so
            // a fully-over-budget row can never recover.
            if row_min > best_so_far {
                return Ok(None);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        let v = prev[n];
        if !v.is_finite() {
            return Err(DistanceError::InvalidParameter {
                name: "band",
                reason: format!(
                    "band too narrow: no admissible warping path for lengths {m} and {n}"
                ),
            });
        }
        Ok((v <= best_so_far).then_some(v))
    }

    /// The path-length-normalized DTW distance: `DTW(P, Q) / |path|`.
    ///
    /// Normalization makes distances comparable across sequence lengths — a
    /// common post-processing step in classification pipelines (the
    /// accelerator's ADC read-out can be scaled identically in digital).
    ///
    /// # Errors
    ///
    /// Same as [`Dtw::matrix`].
    pub fn normalized_distance(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        let path = self.warping_path(p, q)?;
        let d = self.distance(p, q)?;
        Ok(d / path.len() as f64)
    }

    /// Recovers an optimal warping path from the DP matrix, as a sequence of
    /// `(i, j)` steps from `(1, 1)` to `(m, n)`.
    ///
    /// # Errors
    ///
    /// Same as [`Dtw::matrix`].
    pub fn warping_path(&self, p: &[f64], q: &[f64]) -> Result<Vec<PathStep>, DistanceError> {
        let d = self.matrix(p, q)?;
        let (mut i, mut j) = (p.len(), q.len());
        let mut path = vec![(i, j)];
        while (i, j) != (1, 1) {
            let diag = if i > 1 && j > 1 {
                d.at(i - 1, j - 1)
            } else {
                f64::INFINITY
            };
            let up = if i > 1 { d.at(i - 1, j) } else { f64::INFINITY };
            let left = if j > 1 { d.at(i, j - 1) } else { f64::INFINITY };
            // Prefer the diagonal on ties — shortest path, matching the
            // accelerator's analog min which has no tie-break preference but
            // produces the same scalar distance.
            if diag <= up && diag <= left {
                i -= 1;
                j -= 1;
            } else if up <= left {
                i -= 1;
            } else {
                j -= 1;
            }
            path.push((i, j));
        }
        path.reverse();
        Ok(path)
    }
}

impl Distance for Dtw {
    fn evaluate(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        self.distance(p, q)
    }

    fn evaluate_with(
        &self,
        p: &[f64],
        q: &[f64],
        scratch: &mut DpScratch,
    ) -> Result<f64, DistanceError> {
        self.distance_with(p, q, scratch)
    }

    fn kind(&self) -> DistanceKind {
        DistanceKind::Dtw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_have_zero_distance() {
        let p = [1.0, 2.0, 3.0, 2.5];
        assert_eq!(Dtw::new().distance(&p, &p).unwrap(), 0.0);
    }

    #[test]
    fn single_elements_reduce_to_absolute_difference() {
        assert_eq!(Dtw::new().distance(&[3.0], &[5.5]).unwrap(), 2.5);
    }

    #[test]
    fn known_small_example() {
        // P = [0, 1], Q = [0, 1, 1]: the extra 1 warps onto P's 1 for free.
        assert_eq!(
            Dtw::new().distance(&[0.0, 1.0], &[0.0, 1.0, 1.0]).unwrap(),
            0.0
        );
        // P = [0, 2], Q = [1]: both elements align to 1 -> |0-1| + |2-1| = 2.
        assert_eq!(Dtw::new().distance(&[0.0, 2.0], &[1.0]).unwrap(), 2.0);
    }

    #[test]
    fn symmetric_for_equal_band() {
        let p = [0.1, 0.9, 0.4, -0.3, 0.0];
        let q = [0.0, 1.0, 0.5, -0.5, 0.2];
        let dtw = Dtw::new();
        assert_eq!(dtw.distance(&p, &q).unwrap(), dtw.distance(&q, &p).unwrap());
    }

    #[test]
    fn matrix_final_value_matches_distance() {
        let p = [0.0, 1.5, 0.3, 2.2];
        let q = [0.1, 1.2, 0.0];
        let dtw = Dtw::new();
        let m = dtw.matrix(&p, &q).unwrap();
        assert!((m.final_value() - dtw.distance(&p, &q).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn band_constraint_never_decreases_distance() {
        let p: Vec<f64> = (0..20).map(|i| ((i as f64) * 0.7).sin()).collect();
        let q: Vec<f64> = (0..20).map(|i| ((i as f64) * 0.7 + 1.0).sin()).collect();
        let full = Dtw::new().distance(&p, &q).unwrap();
        for r in 1..20 {
            let banded = Dtw::new()
                .with_band(Band::SakoeChiba(r))
                .distance(&p, &q)
                .unwrap();
            assert!(
                banded >= full - 1e-12,
                "banded DTW (r={r}) must be >= unconstrained DTW"
            );
        }
    }

    #[test]
    fn wide_band_equals_full() {
        let p = [0.0, 1.0, 0.5, 0.2, 0.9];
        let q = [0.1, 0.8, 0.6, 0.0, 1.0];
        let full = Dtw::new().distance(&p, &q).unwrap();
        let wide = Dtw::new()
            .with_band(Band::SakoeChiba(5))
            .distance(&p, &q)
            .unwrap();
        assert_eq!(full, wide);
    }

    #[test]
    fn weighted_dtw_scales_costs() {
        let p = [0.0, 1.0];
        let q = [1.0, 1.0];
        // Unweighted: |0-1| + min path = 1.0
        let unweighted = Dtw::new().distance(&p, &q).unwrap();
        assert_eq!(unweighted, 1.0);
        // Double every weight: distance doubles.
        let w = Weights::per_pair(2, 2, vec![2.0; 4]).unwrap();
        let weighted = Dtw::new().with_weights(w).distance(&p, &q).unwrap();
        assert_eq!(weighted, 2.0);
    }

    #[test]
    fn normalized_distance_is_scale_stable() {
        // Doubling the length of a pair (by repetition) roughly preserves
        // the normalized distance while the raw distance doubles.
        let p = [0.0, 1.0, 0.0, 1.0];
        let q = [0.2, 0.8, 0.2, 0.8];
        let p2: Vec<f64> = p.iter().chain(&p).copied().collect();
        let q2: Vec<f64> = q.iter().chain(&q).copied().collect();
        let dtw = Dtw::new();
        let raw1 = dtw.distance(&p, &q).unwrap();
        let raw2 = dtw.distance(&p2, &q2).unwrap();
        assert!(raw2 > raw1 * 1.5);
        let n1 = dtw.normalized_distance(&p, &q).unwrap();
        let n2 = dtw.normalized_distance(&p2, &q2).unwrap();
        assert!((n1 - n2).abs() < n1 * 0.5, "normalized {n1} vs {n2}");
    }

    #[test]
    fn early_abandon_agrees_with_full_distance() {
        let p: Vec<f64> = (0..16).map(|i| (i as f64 * 0.45).sin() * 2.0).collect();
        let q: Vec<f64> = (0..16)
            .map(|i| (i as f64 * 0.45 + 0.7).sin() * 2.0)
            .collect();
        let dtw = Dtw::new();
        let full = dtw.distance(&p, &q).unwrap();
        // Generous budget: must return the exact value.
        assert_eq!(
            dtw.distance_early_abandon(&p, &q, full + 1.0).unwrap(),
            Some(full)
        );
        // Exact budget: still returned (<=).
        assert_eq!(
            dtw.distance_early_abandon(&p, &q, full).unwrap(),
            Some(full)
        );
        // Budget below the true distance: abandoned.
        assert_eq!(
            dtw.distance_early_abandon(&p, &q, full * 0.5).unwrap(),
            None
        );
    }

    #[test]
    fn early_abandon_never_false_abandons() {
        // Across a sweep of budgets, abandoning must happen exactly when the
        // true distance exceeds the budget.
        let p: Vec<f64> = (0..12).map(|i| ((i * 3) % 7) as f64 * 0.4).collect();
        let q: Vec<f64> = (0..12).map(|i| ((i * 5) % 6) as f64 * 0.5).collect();
        let dtw = Dtw::new().with_band(Band::SakoeChiba(3));
        let full = dtw.distance(&p, &q).unwrap();
        for k in 0..10 {
            let budget = full * (0.2 + 0.2 * k as f64);
            let result = dtw.distance_early_abandon(&p, &q, budget).unwrap();
            if budget >= full {
                assert_eq!(result, Some(full), "budget {budget}");
            } else {
                assert_eq!(result, None, "budget {budget}");
            }
        }
    }

    #[test]
    fn warping_path_endpoints_and_monotonicity() {
        let p = [0.0, 1.0, 2.0, 1.0];
        let q = [0.0, 2.0, 1.0];
        let path = Dtw::new().warping_path(&p, &q).unwrap();
        assert_eq!(*path.first().unwrap(), (1, 1));
        assert_eq!(*path.last().unwrap(), (4, 3));
        for w in path.windows(2) {
            let (i0, j0) = w[0];
            let (i1, j1) = w[1];
            assert!(i1 >= i0 && j1 >= j0, "path must be monotone");
            assert!(i1 - i0 <= 1 && j1 - j0 <= 1, "path must be contiguous");
        }
    }

    #[test]
    fn path_cost_equals_distance() {
        let p = [0.2, 1.3, -0.4, 0.8, 0.0];
        let q = [0.0, 1.0, 0.0, 1.0];
        let dtw = Dtw::new();
        let path = dtw.warping_path(&p, &q).unwrap();
        let cost: f64 = path.iter().map(|&(i, j)| (p[i - 1] - q[j - 1]).abs()).sum();
        assert!((cost - dtw.distance(&p, &q).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(
            Dtw::new().distance(&[], &[1.0]).unwrap_err(),
            DistanceError::EmptySequence
        );
    }

    #[test]
    fn too_narrow_band_on_unequal_lengths_is_an_error_not_infinity() {
        // m = 10 vs n = 1: with the diagonal correction a radius-1 band still
        // admits a path, so pick an extreme case via admissibility itself.
        let p = vec![0.0; 4];
        let q = vec![0.0; 4];
        // Radius 0 still admits the main diagonal for equal lengths.
        let d = Dtw::new()
            .with_band(Band::SakoeChiba(0))
            .distance(&p, &q)
            .unwrap();
        assert_eq!(d, 0.0);
    }

    #[test]
    fn five_percent_band_matches_paper_power_analysis() {
        // R = 5% * n, minimum 1.
        assert_eq!(Band::five_percent(128), Band::SakoeChiba(7));
        assert_eq!(Band::five_percent(40), Band::SakoeChiba(2));
        assert_eq!(Band::five_percent(10), Band::SakoeChiba(1));
    }

    #[test]
    fn active_cells_counts_band_area() {
        // Full band over 4x4 = 16 cells.
        assert_eq!(Band::Full.active_cells(4, 4), 16);
        // Radius-0 band over equal lengths = the diagonal.
        assert_eq!(Band::SakoeChiba(0).active_cells(4, 4), 4);
        let r1 = Band::SakoeChiba(1).active_cells(4, 4);
        assert!(r1 > 4 && r1 < 16);
    }

    #[test]
    fn band_edge_is_exact_on_unequal_lengths() {
        // For every small (m, n, r), admissibility must equal the exact
        // rational predicate |j - i*n/m| <= r — in particular cells landing
        // exactly ON the edge are in, and one past it are out.
        for m in 1usize..=12 {
            for n in 1usize..=12 {
                for r in 0usize..=6 {
                    let band = Band::SakoeChiba(r);
                    for i in 1..=m {
                        for j in 1..=n {
                            let exact = (j as i64 * m as i64 - i as i64 * n as i64).abs()
                                <= r as i64 * m as i64;
                            assert_eq!(
                                band.admissible(i, j, m, n),
                                exact,
                                "m={m} n={n} r={r} cell ({i}, {j})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn band_edge_exact_at_large_lengths() {
        // Products i*n beyond 2^53 lose integer precision in f64; the exact
        // integer predicate must still classify edge cells correctly. Cell
        // (i, j) with j*m - i*n == r*m sits exactly on the edge; j+1 is out.
        let (m, n, r) = (123_456_791usize, 987_654_321usize, 5usize);
        let i = m / 2;
        // Pick the exact-edge column for this row: j*m = i*n + r*m requires
        // divisibility, so instead test the outermost admissible column and
        // its neighbour straddling the edge.
        let num = i as i128 * n as i128;
        let rm = r as i128 * m as i128;
        let j_in = ((num + rm) / m as i128) as usize; // floor -> inside
        let j_out = j_in + 1; // strictly past the upper edge
        let band = Band::SakoeChiba(r);
        assert!(band.admissible(i, j_in, m, n));
        assert!(!band.admissible(i, j_out, m, n));
    }

    #[test]
    fn wide_band_equals_full_on_unequal_lengths() {
        // r >= max(m, n) admits every cell, so banded == unbanded even when
        // the lengths differ.
        let p = [0.0, 1.0, 0.5, 0.2, 0.9, -0.3, 0.7];
        let q = [0.1, 0.8, 0.6, 0.0];
        let (m, n) = (p.len(), q.len());
        let r = m.max(n);
        assert_eq!(
            Band::SakoeChiba(r).active_cells(m, n),
            Band::Full.active_cells(m, n)
        );
        let full = Dtw::new().distance(&p, &q).unwrap();
        let banded = Dtw::new()
            .with_band(Band::SakoeChiba(r))
            .distance(&p, &q)
            .unwrap();
        assert_eq!(full, banded);
    }
}
