//! Dynamic time warping (DTW), Eq. 2 of the paper.
//!
//! ```text
//! D[i][j] = w[i][j] * |P[i] - Q[j]| + min(D[i][j-1], D[i-1][j], D[i-1][j-1])
//! D[0][0] = 0,  D[0][j] = D[i][0] = inf
//! DTW(P, Q) = D[n][m]
//! ```
//!
//! Supports the Sakoe–Chiba band constraint the paper adopts from
//! Rakthanmanon et al. (the "UCR suite"), and per-cell weights for weighted
//! DTW (Jeong et al.).
//!
//! Two serial layouts of the same recurrence are used:
//!
//! * [`Dtw::distance_with`] walks the matrix **anti-diagonally** (wavefront
//!   order). Cells on one anti-diagonal have no data dependencies between
//!   them — exactly the property the paper's memristor array exploits to
//!   evaluate a whole diagonal of PEs at once (Section 3.3) — so the inner
//!   loop is a straight-line min/add over contiguous slices that the
//!   compiler can autovectorize, unlike row-major order whose `D[i][j-1]`
//!   term serializes the row.
//! * [`Dtw::distance_early_abandon_with`] stays **row-major**, because early
//!   abandonment is a per-row decision, but iterates only the admissible
//!   column segment of each row ([`Band::row_range`]) instead of testing
//!   every cell against the band.
//!
//! Both produce bitwise-identical results to the full-matrix reference
//! ([`Dtw::matrix`]): the per-cell operation order
//! `cost + min(min(left, up), diag)` is preserved exactly.

use crate::error::DistanceError;
use crate::matrix::{DpMatrix, PathStep};
use crate::scratch::DpScratch;
use crate::weights::Weights;
use crate::{Distance, DistanceKind};

/// `floor(a / b)` for `b > 0`.
#[inline]
fn floor_div(a: i128, b: i128) -> i128 {
    a.div_euclid(b)
}

/// `ceil(a / b)` for `b > 0`.
#[inline]
fn ceil_div(a: i128, b: i128) -> i128 {
    -((-a).div_euclid(b))
}

/// Global path constraint for DTW.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Band {
    /// No constraint: the warping path may wander anywhere in the matrix.
    #[default]
    Full,
    /// Sakoe–Chiba band of half-width `r`: cell `(i, j)` is admissible only
    /// if `|i - j| <= r` (after the usual length-difference correction for
    /// unequal lengths). The paper's power analysis uses `r = 5% * n`.
    SakoeChiba(usize),
}

impl Band {
    /// The paper's default band for the power analysis: `R = 5% * n`,
    /// rounded up so the band is never empty.
    pub fn five_percent(n: usize) -> Band {
        Band::SakoeChiba((n as f64 * 0.05).ceil().max(1.0) as usize)
    }

    /// Is cell `(i, j)` (1-based DP coordinates) inside the band for an
    /// `m x n` comparison?
    ///
    /// The diagonal is corrected for unequal lengths: row `i` maps onto the
    /// "ideal" column `i * n / m` and the band allows `±r` around it. The
    /// comparison `|j - i*n/m| <= r` is evaluated exactly in integers as
    /// `|j*m - i*n| <= r*m`, so cells exactly on the band edge are admitted
    /// regardless of sequence length — the previous float formulation leaned
    /// on a `1e-12` fudge whose slack is overtaken by `i*n` rounding once
    /// products exceed 2^53.
    #[inline]
    pub fn admissible(self, i: usize, j: usize, m: usize, n: usize) -> bool {
        match self {
            Band::Full => true,
            Band::SakoeChiba(r) => {
                let jm = j as i128 * m as i128;
                let i_n = i as i128 * n as i128;
                (jm - i_n).abs() <= r as i128 * m as i128
            }
        }
    }

    /// The inclusive range of admissible columns `(j_lo, j_hi)` in row `i`
    /// (1-based DP coordinates) for an `m x n` comparison. `j_lo > j_hi`
    /// means the row has no admissible cell.
    ///
    /// The admissible cells of a row are contiguous (the band predicate is
    /// an interval in `j*m`), and both endpoints are non-decreasing in `i`,
    /// which the row-major kernels rely on when recycling DP rows. The range
    /// is derived from the same exact integer predicate as
    /// [`Band::admissible`]: `j_lo = ceil((i*n - r*m) / m)`,
    /// `j_hi = floor((i*n + r*m) / m)`, clamped to `[1, n]`.
    #[inline]
    pub fn row_range(self, i: usize, m: usize, n: usize) -> (usize, usize) {
        match self {
            Band::Full => (1, n),
            Band::SakoeChiba(r) => {
                let i_n = i as i128 * n as i128;
                let rm = r as i128 * m as i128;
                let lo = ceil_div(i_n - rm, m as i128).max(1) as usize;
                let hi = floor_div(i_n + rm, m as i128).min(n as i128).max(0) as usize;
                (lo, hi)
            }
        }
    }

    /// The inclusive range of admissible rows `(i_lo, i_hi)` on the
    /// anti-diagonal `k = i + j` (interior cells only, `1 <= i <= m`,
    /// `1 <= j <= n`) for an `m x n` comparison. `i_lo > i_hi` means the
    /// diagonal has no admissible interior cell.
    ///
    /// Substituting `j = k - i` into the band predicate gives
    /// `|k*m - i*(m+n)| <= r*m`, an interval in `i`, intersected with the
    /// structural range `[max(1, k-n), min(m, k-1)]`.
    #[inline]
    pub fn diag_range(self, k: usize, m: usize, n: usize) -> (usize, usize) {
        let ilo = k.saturating_sub(n).max(1);
        let ihi = m.min(k.saturating_sub(1));
        match self {
            Band::Full => (ilo, ihi),
            Band::SakoeChiba(r) => {
                let km = k as i128 * m as i128;
                let rm = r as i128 * m as i128;
                let den = (m + n) as i128;
                let lo = ceil_div(km - rm, den).max(ilo as i128) as usize;
                let hi = floor_div(km + rm, den).min(ihi as i128).max(0) as usize;
                (lo, hi)
            }
        }
    }

    /// Number of admissible cells for an `m x n` comparison — the count of
    /// PEs that must be powered on the accelerator.
    pub fn active_cells(self, m: usize, n: usize) -> usize {
        (1..=m)
            .map(|i| {
                let (lo, hi) = self.row_range(i, m, n);
                (hi + 1).saturating_sub(lo)
            })
            .sum()
    }
}

/// Dynamic time warping distance.
///
/// ```
/// use mda_distance::{Dtw, Distance};
/// # fn main() -> Result<(), mda_distance::DistanceError> {
/// // A shifted copy of a ramp warps onto itself with zero cost at the
/// // overlapping portion.
/// let d = Dtw::new().evaluate(&[0.0, 1.0, 2.0, 3.0], &[0.0, 0.0, 1.0, 2.0, 3.0])?;
/// assert_eq!(d, 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dtw {
    band: Band,
    weights: Weights,
}

/// Anti-diagonal (wavefront) evaluation of Eq. 2 using three rotating
/// diagonal buffers from `scratch`. Generic over the weight lookup so the
/// uniform-weight case monomorphizes to a closed-form `1.0` the optimizer
/// folds away, leaving a branch-free min/add loop over contiguous slices.
///
/// Returns `D[m][n]`, which is non-finite iff the band admits no complete
/// warping path. Bitwise-identical to the row-major reference: each cell
/// still computes `cost + left.min(up).min(diag)` in that order.
fn wavefront_dtw<F: Fn(usize, usize) -> f64>(
    p: &[f64],
    q: &[f64],
    band: Band,
    scratch: &mut DpScratch,
    wpair: &F,
) -> f64 {
    let (m, n) = (p.len(), q.len());
    // Diagonal k stores cell (i, j = k - i) at slot i; slots 0..=m.
    let ([mut d0, mut d1, mut d2], rev) = scratch.wavefront(m + 1, f64::INFINITY, q);
    // d0 holds diagonal k-2, d1 holds k-1, d2 receives k. w* track the slot
    // ranges each buffer has valid (non-INF) data in, so recycled buffers
    // can be wiped in O(band width) instead of O(m).
    d0[0] = 0.0; // D[0][0]
    let (mut w0, mut w1, mut w2) = ((0usize, 0usize), (1usize, 0usize), (1usize, 0usize));
    for k in 2..=(m + n) {
        // Wipe the stale diagonal (k - 3) this buffer last held: afterwards
        // every slot outside the freshly written range reads as INF, which
        // is exactly the value of boundary and out-of-band cells.
        if w2.0 <= w2.1 {
            d2[w2.0..=w2.1].fill(f64::INFINITY);
        }
        let (lo, hi) = band.diag_range(k, m, n);
        if lo <= hi {
            let w = hi - lo + 1;
            // Reversed q makes both series read forward along the diagonal:
            // q[j-1] = q[k-i-1] = rev[i + n - k].
            let dst = &mut d2[lo..lo + w];
            let lefts = &d1[lo..lo + w]; // D[i][j-1]
            let ups = &d1[lo - 1..lo - 1 + w]; // D[i-1][j]
            let diags = &d0[lo - 1..lo - 1 + w]; // D[i-1][j-1]
            let ps = &p[lo - 1..lo - 1 + w];
            let qs = &rev[lo + n - k..lo + n - k + w];
            for t in 0..w {
                let i = lo + t;
                let cost = wpair(i - 1, k - i - 1) * (ps[t] - qs[t]).abs();
                let best = lefts[t].min(ups[t]).min(diags[t]);
                dst[t] = if best.is_finite() {
                    cost + best
                } else {
                    f64::INFINITY
                };
            }
        }
        w2 = (lo, hi);
        // Rotate: (k-1, k, stale) become (k-2, k-1, target) of the next k.
        let (td, tw) = (d0, w0);
        d0 = d1;
        w0 = w1;
        d1 = d2;
        w1 = w2;
        d2 = td;
        w2 = tw;
    }
    d1[m] // diagonal m + n, cell (m, n)
}

impl Dtw {
    /// DTW with no band constraint and uniform weights.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the global path constraint.
    #[must_use]
    pub fn with_band(mut self, band: Band) -> Self {
        self.band = band;
        self
    }

    /// Sets per-cell weights (weighted DTW).
    #[must_use]
    pub fn with_weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// The configured band.
    pub fn band(&self) -> Band {
        self.band
    }

    /// The configured weights.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// Computes the full DP matrix (including the infinite boundary row and
    /// column). Cell `(i, j)` of the result is `D[i][j]` of Eq. 2.
    ///
    /// This row-major full-matrix form is the semantic reference the
    /// wavefront kernels are checked against (bitwise, by the `kernels`
    /// bench identity gate).
    ///
    /// # Errors
    ///
    /// Returns [`DistanceError::EmptySequence`] for empty inputs or
    /// [`DistanceError::WeightShape`] if the weights don't cover `m x n`.
    pub fn matrix(&self, p: &[f64], q: &[f64]) -> Result<DpMatrix, DistanceError> {
        if p.is_empty() || q.is_empty() {
            return Err(DistanceError::EmptySequence);
        }
        let (m, n) = (p.len(), q.len());
        self.weights.check_pair_shape(m, n)?;

        let mut d = DpMatrix::filled(m + 1, n + 1, f64::INFINITY);
        d.set(0, 0, 0.0);
        for i in 1..=m {
            for j in 1..=n {
                if !self.band.admissible(i, j, m, n) {
                    continue;
                }
                let cost = self.weights.pair(i - 1, j - 1) * (p[i - 1] - q[j - 1]).abs();
                let best = d.at(i, j - 1).min(d.at(i - 1, j)).min(d.at(i - 1, j - 1));
                if best.is_finite() {
                    d.set(i, j, cost + best);
                }
            }
        }
        Ok(d)
    }

    /// Computes the DTW distance using O(n) memory (three anti-diagonal
    /// buffers, wavefront order).
    ///
    /// This is the variant benchmarked as the CPU baseline — what an
    /// optimized software implementation (the paper's MSVC `-O2` C code)
    /// would use. Bitwise-identical to [`Dtw::matrix`]'s final value.
    ///
    /// # Errors
    ///
    /// Same as [`Dtw::matrix`].
    pub fn distance(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        self.distance_with(p, q, &mut DpScratch::new())
    }

    /// [`Dtw::distance`] with caller-provided scratch buffers: batch
    /// workloads reuse one [`DpScratch`] per worker thread instead of
    /// allocating DP buffers per pair.
    ///
    /// # Errors
    ///
    /// Same as [`Dtw::matrix`].
    pub fn distance_with(
        &self,
        p: &[f64],
        q: &[f64],
        scratch: &mut DpScratch,
    ) -> Result<f64, DistanceError> {
        if p.is_empty() || q.is_empty() {
            return Err(DistanceError::EmptySequence);
        }
        let (m, n) = (p.len(), q.len());
        self.weights.check_pair_shape(m, n)?;

        let v = match &self.weights {
            Weights::Uniform => wavefront_dtw(p, q, self.band, scratch, &|_, _| 1.0),
            w => wavefront_dtw(p, q, self.band, scratch, &|i, j| w.pair(i, j)),
        };
        if v.is_finite() {
            Ok(v)
        } else {
            Err(DistanceError::InvalidParameter {
                name: "band",
                reason: format!(
                    "band too narrow: no admissible warping path for lengths {m} and {n}"
                ),
            })
        }
    }

    /// Computes the DTW distance with **early abandoning**: if every cell of
    /// some DP row already exceeds `best_so_far`, no warping path can beat
    /// it, and the computation stops, returning `None`.
    ///
    /// This is the row-wise abandoning of the UCR suite (the paper's
    /// reference \[24\]); [`crate::lower_bounds::cascading_dtw`] uses the
    /// cheaper LB_Kim/LB_Keogh first, and a search loop would call this as
    /// the final stage.
    ///
    /// # Errors
    ///
    /// Same as [`Dtw::matrix`].
    pub fn distance_early_abandon(
        &self,
        p: &[f64],
        q: &[f64],
        best_so_far: f64,
    ) -> Result<Option<f64>, DistanceError> {
        self.distance_early_abandon_with(p, q, best_so_far, &mut DpScratch::new())
    }

    /// [`Dtw::distance_early_abandon`] with caller-provided scratch rows.
    ///
    /// Stays row-major (abandonment is a per-row decision) but touches only
    /// the admissible column segment of each row ([`Band::row_range`]) —
    /// no per-cell band test and no full-row re-initialization: wiping the
    /// recycled row buffer's previously written segment restores the
    /// all-INF invariant in O(segment) time. Results are bitwise-identical
    /// to the previous per-cell formulation.
    ///
    /// # Errors
    ///
    /// Same as [`Dtw::matrix`].
    pub fn distance_early_abandon_with(
        &self,
        p: &[f64],
        q: &[f64],
        best_so_far: f64,
        scratch: &mut DpScratch,
    ) -> Result<Option<f64>, DistanceError> {
        if p.is_empty() || q.is_empty() {
            return Err(DistanceError::EmptySequence);
        }
        let (m, n) = (p.len(), q.len());
        self.weights.check_pair_shape(m, n)?;

        let (mut prev, mut curr) = scratch.rows(n + 1, f64::INFINITY);
        prev[0] = 0.0;
        // Slot ranges each row buffer holds valid data in (row 0: slot 0).
        let mut w_prev = (0usize, 0usize);
        let mut w_curr = (1usize, 0usize);
        for i in 1..=m {
            // Wipe the stale row i-2 this buffer last held; every slot
            // outside the segment written below then reads as INF.
            if w_curr.0 <= w_curr.1 {
                curr[w_curr.0..=w_curr.1].fill(f64::INFINITY);
            }
            let (lo, hi) = self.band.row_range(i, m, n);
            let mut row_min = f64::INFINITY;
            for j in lo..=hi {
                let cost = self.weights.pair(i - 1, j - 1) * (p[i - 1] - q[j - 1]).abs();
                let best = curr[j - 1].min(prev[j]).min(prev[j - 1]);
                if best.is_finite() {
                    curr[j] = cost + best;
                    row_min = row_min.min(curr[j]);
                }
            }
            // DP values only grow down the matrix (non-negative costs), so
            // a fully-over-budget row can never recover.
            if row_min > best_so_far {
                return Ok(None);
            }
            w_curr = (lo, hi);
            std::mem::swap(&mut prev, &mut curr);
            std::mem::swap(&mut w_prev, &mut w_curr);
        }
        let v = prev[n];
        if !v.is_finite() {
            return Err(DistanceError::InvalidParameter {
                name: "band",
                reason: format!(
                    "band too narrow: no admissible warping path for lengths {m} and {n}"
                ),
            });
        }
        Ok((v <= best_so_far).then_some(v))
    }

    /// The path-length-normalized DTW distance: `DTW(P, Q) / |path|`.
    ///
    /// Normalization makes distances comparable across sequence lengths — a
    /// common post-processing step in classification pipelines (the
    /// accelerator's ADC read-out can be scaled identically in digital).
    ///
    /// # Errors
    ///
    /// Same as [`Dtw::matrix`].
    pub fn normalized_distance(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        let path = self.warping_path(p, q)?;
        let d = self.distance(p, q)?;
        Ok(d / path.len() as f64)
    }

    /// Recovers an optimal warping path from the DP matrix, as a sequence of
    /// `(i, j)` steps from `(1, 1)` to `(m, n)`.
    ///
    /// # Errors
    ///
    /// Same as [`Dtw::matrix`].
    pub fn warping_path(&self, p: &[f64], q: &[f64]) -> Result<Vec<PathStep>, DistanceError> {
        let d = self.matrix(p, q)?;
        let (mut i, mut j) = (p.len(), q.len());
        let mut path = vec![(i, j)];
        while (i, j) != (1, 1) {
            let diag = if i > 1 && j > 1 {
                d.at(i - 1, j - 1)
            } else {
                f64::INFINITY
            };
            let up = if i > 1 { d.at(i - 1, j) } else { f64::INFINITY };
            let left = if j > 1 { d.at(i, j - 1) } else { f64::INFINITY };
            // Prefer the diagonal on ties — shortest path, matching the
            // accelerator's analog min which has no tie-break preference but
            // produces the same scalar distance.
            if diag <= up && diag <= left {
                i -= 1;
                j -= 1;
            } else if up <= left {
                i -= 1;
            } else {
                j -= 1;
            }
            path.push((i, j));
        }
        path.reverse();
        Ok(path)
    }
}

impl Distance for Dtw {
    fn evaluate(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        self.distance(p, q)
    }

    fn evaluate_with(
        &self,
        p: &[f64],
        q: &[f64],
        scratch: &mut DpScratch,
    ) -> Result<f64, DistanceError> {
        self.distance_with(p, q, scratch)
    }

    fn kind(&self) -> DistanceKind {
        DistanceKind::Dtw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_have_zero_distance() {
        let p = [1.0, 2.0, 3.0, 2.5];
        assert_eq!(Dtw::new().distance(&p, &p).unwrap(), 0.0);
    }

    #[test]
    fn single_elements_reduce_to_absolute_difference() {
        assert_eq!(Dtw::new().distance(&[3.0], &[5.5]).unwrap(), 2.5);
    }

    #[test]
    fn known_small_example() {
        // P = [0, 1], Q = [0, 1, 1]: the extra 1 warps onto P's 1 for free.
        assert_eq!(
            Dtw::new().distance(&[0.0, 1.0], &[0.0, 1.0, 1.0]).unwrap(),
            0.0
        );
        // P = [0, 2], Q = [1]: both elements align to 1 -> |0-1| + |2-1| = 2.
        assert_eq!(Dtw::new().distance(&[0.0, 2.0], &[1.0]).unwrap(), 2.0);
    }

    #[test]
    fn symmetric_for_equal_band() {
        let p = [0.1, 0.9, 0.4, -0.3, 0.0];
        let q = [0.0, 1.0, 0.5, -0.5, 0.2];
        let dtw = Dtw::new();
        assert_eq!(dtw.distance(&p, &q).unwrap(), dtw.distance(&q, &p).unwrap());
    }

    #[test]
    fn matrix_final_value_matches_distance() {
        let p = [0.0, 1.5, 0.3, 2.2];
        let q = [0.1, 1.2, 0.0];
        let dtw = Dtw::new();
        let m = dtw.matrix(&p, &q).unwrap();
        assert!((m.final_value() - dtw.distance(&p, &q).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn wavefront_matches_matrix_bitwise() {
        // The anti-diagonal kernel must reproduce the row-major reference
        // exactly (same op order per cell), across lengths, length skews and
        // band radii — including bands so narrow some rows are empty.
        let series: Vec<f64> = (0..40)
            .map(|i| ((i * 37 % 17) as f64 - 8.0) * 0.37 + ((i * 11 % 5) as f64) * 0.11)
            .collect();
        for (m, n) in [
            (1usize, 1usize),
            (1, 7),
            (7, 1),
            (2, 2),
            (5, 5),
            (8, 3),
            (3, 8),
            (17, 17),
            (17, 40),
            (40, 17),
        ] {
            let p = &series[..m];
            let q = &series[40 - n..];
            for band in [
                Band::Full,
                Band::SakoeChiba(0),
                Band::SakoeChiba(1),
                Band::SakoeChiba(2),
                Band::SakoeChiba(5),
                Band::SakoeChiba(50),
            ] {
                let dtw = Dtw::new().with_band(band);
                let reference = dtw.matrix(p, q).unwrap().final_value();
                match dtw.distance(p, q) {
                    Ok(v) => assert_eq!(
                        v.to_bits(),
                        reference.to_bits(),
                        "m={m} n={n} band={band:?}: wavefront {v} != reference {reference}"
                    ),
                    Err(_) => assert!(
                        !reference.is_finite(),
                        "m={m} n={n} band={band:?}: wavefront errored but reference finite"
                    ),
                }
            }
        }
    }

    #[test]
    fn wavefront_matches_matrix_bitwise_weighted() {
        let p = [0.2, 1.3, -0.4, 0.8, 0.0];
        let q = [0.0, 1.0, 0.0, 1.0];
        let w = Weights::per_pair(5, 4, (0..20).map(|i| 0.5 + (i % 3) as f64).collect()).unwrap();
        for band in [Band::Full, Band::SakoeChiba(1), Band::SakoeChiba(2)] {
            let dtw = Dtw::new().with_band(band).with_weights(w.clone());
            let reference = dtw.matrix(&p, &q).unwrap().final_value();
            match dtw.distance(&p, &q) {
                Ok(v) => assert_eq!(v.to_bits(), reference.to_bits(), "band={band:?}"),
                Err(_) => assert!(!reference.is_finite(), "band={band:?}"),
            }
        }
    }

    #[test]
    fn scratch_reuse_across_shapes_is_clean() {
        // A large evaluation must not leave state that corrupts a smaller
        // one (and vice versa) when the same scratch is reused.
        let mut scratch = DpScratch::new();
        let big_p: Vec<f64> = (0..33).map(|i| (i as f64 * 0.21).sin()).collect();
        let big_q: Vec<f64> = (0..29).map(|i| (i as f64 * 0.19).cos()).collect();
        let small_p = [0.5, -1.0];
        let small_q = [0.25];
        let dtw = Dtw::new();
        let b1 = dtw.distance(&big_p, &big_q).unwrap();
        let s1 = dtw.distance(&small_p, &small_q).unwrap();
        for _ in 0..3 {
            assert_eq!(dtw.distance_with(&big_p, &big_q, &mut scratch).unwrap(), b1);
            assert_eq!(
                dtw.distance_with(&small_p, &small_q, &mut scratch).unwrap(),
                s1
            );
        }
    }

    #[test]
    fn row_and_diag_ranges_match_admissible() {
        // The closed-form ranges must enumerate exactly the admissible
        // cells, for every small (m, n, r) and for the full band.
        for m in 1usize..=12 {
            for n in 1usize..=12 {
                let mut bands = vec![Band::Full];
                bands.extend((0usize..=6).map(Band::SakoeChiba));
                for band in bands {
                    for i in 1..=m {
                        let (lo, hi) = band.row_range(i, m, n);
                        for j in 1..=n {
                            assert_eq!(
                                lo <= j && j <= hi,
                                band.admissible(i, j, m, n),
                                "row_range {band:?} m={m} n={n} cell ({i}, {j})"
                            );
                        }
                    }
                    for k in 2..=(m + n) {
                        let (lo, hi) = band.diag_range(k, m, n);
                        for i in 1..=m {
                            let in_range = lo <= i && i <= hi;
                            let interior = k > i && k - i <= n;
                            let admissible = interior && band.admissible(i, k - i, m, n);
                            assert_eq!(
                                in_range, admissible,
                                "diag_range {band:?} m={m} n={n} k={k} i={i}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn band_constraint_never_decreases_distance() {
        let p: Vec<f64> = (0..20).map(|i| ((i as f64) * 0.7).sin()).collect();
        let q: Vec<f64> = (0..20).map(|i| ((i as f64) * 0.7 + 1.0).sin()).collect();
        let full = Dtw::new().distance(&p, &q).unwrap();
        for r in 1..20 {
            let banded = Dtw::new()
                .with_band(Band::SakoeChiba(r))
                .distance(&p, &q)
                .unwrap();
            assert!(
                banded >= full - 1e-12,
                "banded DTW (r={r}) must be >= unconstrained DTW"
            );
        }
    }

    #[test]
    fn wide_band_equals_full() {
        let p = [0.0, 1.0, 0.5, 0.2, 0.9];
        let q = [0.1, 0.8, 0.6, 0.0, 1.0];
        let full = Dtw::new().distance(&p, &q).unwrap();
        let wide = Dtw::new()
            .with_band(Band::SakoeChiba(5))
            .distance(&p, &q)
            .unwrap();
        assert_eq!(full, wide);
    }

    #[test]
    fn weighted_dtw_scales_costs() {
        let p = [0.0, 1.0];
        let q = [1.0, 1.0];
        // Unweighted: |0-1| + min path = 1.0
        let unweighted = Dtw::new().distance(&p, &q).unwrap();
        assert_eq!(unweighted, 1.0);
        // Double every weight: distance doubles.
        let w = Weights::per_pair(2, 2, vec![2.0; 4]).unwrap();
        let weighted = Dtw::new().with_weights(w).distance(&p, &q).unwrap();
        assert_eq!(weighted, 2.0);
    }

    #[test]
    fn normalized_distance_is_scale_stable() {
        // Doubling the length of a pair (by repetition) roughly preserves
        // the normalized distance while the raw distance doubles.
        let p = [0.0, 1.0, 0.0, 1.0];
        let q = [0.2, 0.8, 0.2, 0.8];
        let p2: Vec<f64> = p.iter().chain(&p).copied().collect();
        let q2: Vec<f64> = q.iter().chain(&q).copied().collect();
        let dtw = Dtw::new();
        let raw1 = dtw.distance(&p, &q).unwrap();
        let raw2 = dtw.distance(&p2, &q2).unwrap();
        assert!(raw2 > raw1 * 1.5);
        let n1 = dtw.normalized_distance(&p, &q).unwrap();
        let n2 = dtw.normalized_distance(&p2, &q2).unwrap();
        assert!((n1 - n2).abs() < n1 * 0.5, "normalized {n1} vs {n2}");
    }

    #[test]
    fn early_abandon_agrees_with_full_distance() {
        let p: Vec<f64> = (0..16).map(|i| (i as f64 * 0.45).sin() * 2.0).collect();
        let q: Vec<f64> = (0..16)
            .map(|i| (i as f64 * 0.45 + 0.7).sin() * 2.0)
            .collect();
        let dtw = Dtw::new();
        let full = dtw.distance(&p, &q).unwrap();
        // Generous budget: must return the exact value.
        assert_eq!(
            dtw.distance_early_abandon(&p, &q, full + 1.0).unwrap(),
            Some(full)
        );
        // Exact budget: still returned (<=).
        assert_eq!(
            dtw.distance_early_abandon(&p, &q, full).unwrap(),
            Some(full)
        );
        // Budget below the true distance: abandoned.
        assert_eq!(
            dtw.distance_early_abandon(&p, &q, full * 0.5).unwrap(),
            None
        );
    }

    #[test]
    fn early_abandon_never_false_abandons() {
        // Across a sweep of budgets, abandoning must happen exactly when the
        // true distance exceeds the budget.
        let p: Vec<f64> = (0..12).map(|i| ((i * 3) % 7) as f64 * 0.4).collect();
        let q: Vec<f64> = (0..12).map(|i| ((i * 5) % 6) as f64 * 0.5).collect();
        let dtw = Dtw::new().with_band(Band::SakoeChiba(3));
        let full = dtw.distance(&p, &q).unwrap();
        for k in 0..10 {
            let budget = full * (0.2 + 0.2 * k as f64);
            let result = dtw.distance_early_abandon(&p, &q, budget).unwrap();
            if budget >= full {
                assert_eq!(result, Some(full), "budget {budget}");
            } else {
                assert_eq!(result, None, "budget {budget}");
            }
        }
    }

    #[test]
    fn early_abandon_matches_distance_on_unequal_lengths_and_bands() {
        // The segment-walking early-abandon kernel must agree exactly with
        // the wavefront distance when given an infinite budget, including on
        // skewed shapes and narrow bands.
        let series: Vec<f64> = (0..30)
            .map(|i| ((i * 13 % 23) as f64 - 11.0) * 0.29)
            .collect();
        for (m, n) in [(1usize, 1usize), (4, 9), (9, 4), (15, 15), (30, 7)] {
            let p = &series[..m];
            let q = &series[30 - n..];
            for band in [Band::Full, Band::SakoeChiba(2), Band::SakoeChiba(6)] {
                let dtw = Dtw::new().with_band(band);
                match dtw.distance(p, q) {
                    Ok(full) => {
                        let ea = dtw
                            .distance_early_abandon(p, q, f64::INFINITY)
                            .unwrap()
                            .unwrap();
                        assert_eq!(ea.to_bits(), full.to_bits(), "m={m} n={n} band={band:?}");
                    }
                    Err(_) => {
                        assert!(
                            dtw.distance_early_abandon(p, q, f64::INFINITY).is_err(),
                            "m={m} n={n} band={band:?}: error paths must agree"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn warping_path_endpoints_and_monotonicity() {
        let p = [0.0, 1.0, 2.0, 1.0];
        let q = [0.0, 2.0, 1.0];
        let path = Dtw::new().warping_path(&p, &q).unwrap();
        assert_eq!(*path.first().unwrap(), (1, 1));
        assert_eq!(*path.last().unwrap(), (4, 3));
        for w in path.windows(2) {
            let (i0, j0) = w[0];
            let (i1, j1) = w[1];
            assert!(i1 >= i0 && j1 >= j0, "path must be monotone");
            assert!(i1 - i0 <= 1 && j1 - j0 <= 1, "path must be contiguous");
        }
    }

    #[test]
    fn path_cost_equals_distance() {
        let p = [0.2, 1.3, -0.4, 0.8, 0.0];
        let q = [0.0, 1.0, 0.0, 1.0];
        let dtw = Dtw::new();
        let path = dtw.warping_path(&p, &q).unwrap();
        let cost: f64 = path.iter().map(|&(i, j)| (p[i - 1] - q[j - 1]).abs()).sum();
        assert!((cost - dtw.distance(&p, &q).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(
            Dtw::new().distance(&[], &[1.0]).unwrap_err(),
            DistanceError::EmptySequence
        );
    }

    #[test]
    fn too_narrow_band_on_unequal_lengths_is_an_error_not_infinity() {
        // m = 10 vs n = 1: with the diagonal correction a radius-1 band still
        // admits a path, so pick an extreme case via admissibility itself.
        let p = vec![0.0; 4];
        let q = vec![0.0; 4];
        // Radius 0 still admits the main diagonal for equal lengths.
        let d = Dtw::new()
            .with_band(Band::SakoeChiba(0))
            .distance(&p, &q)
            .unwrap();
        assert_eq!(d, 0.0);
    }

    #[test]
    fn five_percent_band_matches_paper_power_analysis() {
        // R = 5% * n, minimum 1.
        assert_eq!(Band::five_percent(128), Band::SakoeChiba(7));
        assert_eq!(Band::five_percent(40), Band::SakoeChiba(2));
        assert_eq!(Band::five_percent(10), Band::SakoeChiba(1));
    }

    #[test]
    fn active_cells_counts_band_area() {
        // Full band over 4x4 = 16 cells.
        assert_eq!(Band::Full.active_cells(4, 4), 16);
        // Radius-0 band over equal lengths = the diagonal.
        assert_eq!(Band::SakoeChiba(0).active_cells(4, 4), 4);
        let r1 = Band::SakoeChiba(1).active_cells(4, 4);
        assert!(r1 > 4 && r1 < 16);
    }

    #[test]
    fn band_edge_is_exact_on_unequal_lengths() {
        // For every small (m, n, r), admissibility must equal the exact
        // rational predicate |j - i*n/m| <= r — in particular cells landing
        // exactly ON the edge are in, and one past it are out.
        for m in 1usize..=12 {
            for n in 1usize..=12 {
                for r in 0usize..=6 {
                    let band = Band::SakoeChiba(r);
                    for i in 1..=m {
                        for j in 1..=n {
                            let exact = (j as i64 * m as i64 - i as i64 * n as i64).abs()
                                <= r as i64 * m as i64;
                            assert_eq!(
                                band.admissible(i, j, m, n),
                                exact,
                                "m={m} n={n} r={r} cell ({i}, {j})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn band_edge_exact_at_large_lengths() {
        // Products i*n beyond 2^53 lose integer precision in f64; the exact
        // integer predicate must still classify edge cells correctly. Cell
        // (i, j) with j*m - i*n == r*m sits exactly on the edge; j+1 is out.
        let (m, n, r) = (123_456_791usize, 987_654_321usize, 5usize);
        let i = m / 2;
        // Pick the exact-edge column for this row: j*m = i*n + r*m requires
        // divisibility, so instead test the outermost admissible column and
        // its neighbour straddling the edge.
        let num = i as i128 * n as i128;
        let rm = r as i128 * m as i128;
        let j_in = ((num + rm) / m as i128) as usize; // floor -> inside
        let j_out = j_in + 1; // strictly past the upper edge
        let band = Band::SakoeChiba(r);
        assert!(band.admissible(i, j_in, m, n));
        assert!(!band.admissible(i, j_out, m, n));
        // row_range must agree with the straddle.
        let (lo, hi) = band.row_range(i, m, n);
        assert!(lo <= j_in && j_in <= hi);
        assert!(j_out > hi);
    }

    #[test]
    fn wide_band_equals_full_on_unequal_lengths() {
        // r >= max(m, n) admits every cell, so banded == unbanded even when
        // the lengths differ.
        let p = [0.0, 1.0, 0.5, 0.2, 0.9, -0.3, 0.7];
        let q = [0.1, 0.8, 0.6, 0.0];
        let (m, n) = (p.len(), q.len());
        let r = m.max(n);
        assert_eq!(
            Band::SakoeChiba(r).active_cells(m, n),
            Band::Full.active_cells(m, n)
        );
        let full = Dtw::new().distance(&p, &q).unwrap();
        let banded = Dtw::new()
            .with_band(Band::SakoeChiba(r))
            .distance(&p, &q)
            .unwrap();
        assert_eq!(full, banded);
    }
}
