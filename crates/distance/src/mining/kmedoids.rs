//! k-medoids clustering (PAM-style) over a precomputed distance matrix.
//!
//! Unlike k-means, k-medoids only needs pairwise distances, so it works with
//! every one of the six accelerator distance functions — the clustering
//! workload of the paper's Section 1.

use crate::batch::BatchEngine;
use crate::error::DistanceError;
use crate::validate::ensure_finite;
use crate::Distance;

/// Result of a k-medoids run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMedoidsResult {
    /// Indices (into the input set) of the final medoids, one per cluster.
    pub medoids: Vec<usize>,
    /// Cluster assignment for every input series (index into `medoids`).
    pub assignments: Vec<usize>,
    /// Sum of distances from every series to its medoid.
    pub total_cost: f64,
    /// Number of swap iterations performed before convergence.
    pub iterations: usize,
}

/// PAM-style k-medoids clusterer parameterised by any [`Distance`].
///
/// Similarities (LCS) are negated internally so "closest" is well-defined.
///
/// ```
/// use mda_distance::{Manhattan, mining::KMedoids};
/// # fn main() -> Result<(), mda_distance::DistanceError> {
/// let series = vec![
///     vec![0.0, 0.0], vec![0.1, 0.1],      // cluster A
///     vec![9.0, 9.0], vec![9.1, 8.9],      // cluster B
/// ];
/// let km = KMedoids::new(Box::new(Manhattan::new()), 2);
/// let result = km.cluster(&series)?;
/// assert_eq!(result.assignments[0], result.assignments[1]);
/// assert_eq!(result.assignments[2], result.assignments[3]);
/// assert_ne!(result.assignments[0], result.assignments[2]);
/// # Ok(())
/// # }
/// ```
pub struct KMedoids {
    distance: Box<dyn Distance + Send + Sync>,
    k: usize,
    max_iterations: usize,
    engine: BatchEngine,
}

impl std::fmt::Debug for KMedoids {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KMedoids")
            .field("kind", &self.distance.kind())
            .field("k", &self.k)
            .field("max_iterations", &self.max_iterations)
            .field("engine", &self.engine)
            .finish()
    }
}

impl KMedoids {
    /// Creates a clusterer with `k` clusters and a 100-iteration cap.
    /// The pairwise distance matrix is filled on a default (all-cores)
    /// [`BatchEngine`].
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(distance: Box<dyn Distance + Send + Sync>, k: usize) -> Self {
        assert!(k > 0, "k must be at least 1");
        KMedoids {
            distance,
            k,
            max_iterations: 100,
            engine: BatchEngine::new(),
        }
    }

    /// Caps the number of swap iterations.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Replaces the batch engine. Results are identical for every engine
    /// configuration; only wall-clock time changes.
    #[must_use]
    pub fn with_engine(mut self, engine: BatchEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Precomputes the full pairwise distance matrix — the clusterer's hot
    /// path (`n(n-1)/2` distance evaluations), sharded over the engine.
    fn distance_matrix(&self, series: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, DistanceError> {
        let n = series.len();
        let invert = self.distance.is_similarity();
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        let values = self.engine.try_map_scratch(&pairs, |scratch, _, &(i, j)| {
            let raw = self
                .distance
                .evaluate_with(&series[i], &series[j], scratch)?;
            // `0.0 - raw` (not `-raw`) so a zero similarity negates to +0.0;
            // `total_cmp` orders -0.0 below +0.0, which would otherwise
            // perturb tie-breaking against the matrix's +0.0 diagonal.
            Ok(if invert { 0.0 - raw } else { raw })
        })?;
        let mut m = vec![vec![0.0; n]; n];
        for (&(i, j), d) in pairs.iter().zip(values) {
            m[i][j] = d;
            m[j][i] = d;
        }
        Ok(m)
    }

    fn assign(dist: &[Vec<f64>], medoids: &[usize]) -> (Vec<usize>, f64) {
        let mut assignments = vec![0usize; dist.len()];
        let mut cost = 0.0;
        for i in 0..dist.len() {
            let (best_c, best_d) = medoids
                .iter()
                .enumerate()
                .map(|(c, &m)| (c, dist[i][m]))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("k >= 1");
            assignments[i] = best_c;
            cost += best_d;
        }
        (assignments, cost)
    }

    /// Runs the clustering.
    ///
    /// Initial medoids are chosen deterministically with a greedy max-min
    /// (farthest-first) sweep so results are reproducible.
    ///
    /// # Errors
    ///
    /// Returns [`DistanceError::InvalidParameter`] if fewer series than
    /// clusters are supplied or any series contains a NaN or infinity, or
    /// any error from the underlying distance.
    pub fn cluster(&self, series: &[Vec<f64>]) -> Result<KMedoidsResult, DistanceError> {
        let n = series.len();
        if n < self.k {
            return Err(DistanceError::InvalidParameter {
                name: "series",
                reason: format!("need at least k = {} series, got {n}", self.k),
            });
        }
        for s in series {
            ensure_finite("series", s)?;
        }
        let dist = self.distance_matrix(series)?;

        // Farthest-first initialisation.
        let mut medoids = vec![0usize];
        while medoids.len() < self.k {
            let next = (0..n)
                .filter(|i| !medoids.contains(i))
                .max_by(|&a, &b| {
                    let da = medoids
                        .iter()
                        .map(|&m| dist[a][m])
                        .fold(f64::INFINITY, f64::min);
                    let db = medoids
                        .iter()
                        .map(|&m| dist[b][m])
                        .fold(f64::INFINITY, f64::min);
                    da.total_cmp(&db)
                })
                .expect("n >= k");
            medoids.push(next);
        }

        let (mut assignments, mut cost) = Self::assign(&dist, &medoids);
        let mut iterations = 0;
        for _ in 0..self.max_iterations {
            iterations += 1;
            let mut improved = false;
            for c in 0..self.k {
                for candidate in 0..n {
                    if medoids.contains(&candidate) {
                        continue;
                    }
                    let mut trial = medoids.clone();
                    trial[c] = candidate;
                    let (a, new_cost) = Self::assign(&dist, &trial);
                    if new_cost + 1e-12 < cost {
                        medoids = trial;
                        assignments = a;
                        cost = new_cost;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        Ok(KMedoidsResult {
            medoids,
            assignments,
            total_cost: cost,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dtw, Lcs, Manhattan};

    fn blobs() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.1, 0.0],
            vec![0.1, 0.0, 0.1],
            vec![0.05, 0.05, 0.0],
            vec![10.0, 10.1, 9.9],
            vec![10.1, 9.9, 10.0],
            vec![9.95, 10.0, 10.05],
        ]
    }

    #[test]
    fn separates_two_blobs() {
        let km = KMedoids::new(Box::new(Manhattan::new()), 2);
        let r = km.cluster(&blobs()).unwrap();
        let a = r.assignments;
        assert_eq!(a[0], a[1]);
        assert_eq!(a[1], a[2]);
        assert_eq!(a[3], a[4]);
        assert_eq!(a[4], a[5]);
        assert_ne!(a[0], a[3]);
    }

    #[test]
    fn works_with_dtw() {
        let km = KMedoids::new(Box::new(Dtw::new()), 2);
        let r = km.cluster(&blobs()).unwrap();
        assert_eq!(r.medoids.len(), 2);
        assert_ne!(r.assignments[0], r.assignments[5]);
    }

    #[test]
    fn works_with_similarity_function() {
        let km = KMedoids::new(Box::new(Lcs::new(0.5)), 2);
        let r = km.cluster(&blobs()).unwrap();
        assert_ne!(r.assignments[0], r.assignments[3]);
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let series = vec![vec![0.0], vec![1.0], vec![2.0]];
        let km = KMedoids::new(Box::new(Manhattan::new()), 3);
        let r = km.cluster(&series).unwrap();
        assert_eq!(r.total_cost, 0.0);
        let mut sorted = r.medoids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn too_few_series_rejected() {
        let km = KMedoids::new(Box::new(Manhattan::new()), 5);
        assert!(km.cluster(&[vec![0.0]]).is_err());
    }

    /// Regression: a NaN series used to panic in the farthest-first
    /// initialisation (`partial_cmp(..).expect("finite distances")`).
    #[test]
    fn non_finite_series_is_typed_error_not_panic() {
        let km = KMedoids::new(Box::new(Manhattan::new()), 2);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut data = blobs();
            data[3][1] = bad;
            let err = km.cluster(&data).unwrap_err();
            assert!(
                matches!(err, DistanceError::InvalidParameter { name: "series", .. }),
                "{err:?}"
            );
        }
    }

    #[test]
    fn cost_never_increases_with_more_clusters() {
        let data = blobs();
        let c2 = KMedoids::new(Box::new(Manhattan::new()), 2)
            .cluster(&data)
            .unwrap()
            .total_cost;
        let c3 = KMedoids::new(Box::new(Manhattan::new()), 3)
            .cluster(&data)
            .unwrap()
            .total_cost;
        assert!(c3 <= c2 + 1e-9);
    }
}
