//! k-nearest-neighbour classification over time series.
//!
//! 1-NN with an elastic distance is the standard strong baseline in
//! time-series classification and the workload behind the paper's
//! vehicle-classification (DTW) and iris-authentication (HamD) motivating
//! examples.

use crate::batch::BatchEngine;
use crate::error::DistanceError;
use crate::mining::prefilter::CandidateFilter;
use crate::scratch::DpScratch;
use crate::validate::ensure_finite;
use crate::Distance;

/// A labelled training instance.
#[derive(Debug, Clone)]
struct Instance {
    label: usize,
    series: Vec<f64>,
}

/// Outcome of classifying one query.
#[derive(Debug, Clone, PartialEq)]
pub struct Classified {
    /// The predicted class label.
    pub label: usize,
    /// Distance (or negated similarity) to the deciding neighbour.
    pub score: f64,
    /// Index of the nearest training instance.
    pub nearest_index: usize,
}

/// A k-NN classifier parameterised by any [`Distance`].
///
/// For similarity functions (LCS) the neighbour ordering is inverted
/// automatically, so "nearest" always means "most similar".
///
/// ```
/// use mda_distance::{Manhattan, mining::KnnClassifier};
/// # fn main() -> Result<(), mda_distance::DistanceError> {
/// let mut knn = KnnClassifier::new(Box::new(Manhattan::new()), 1);
/// knn.fit(0, vec![0.0, 0.0, 0.0]);
/// knn.fit(1, vec![5.0, 5.0, 5.0]);
/// assert_eq!(knn.classify(&[0.2, -0.1, 0.1])?.label, 0);
/// # Ok(())
/// # }
/// ```
pub struct KnnClassifier {
    distance: Box<dyn Distance + Send + Sync>,
    k: usize,
    train: Vec<Instance>,
    engine: BatchEngine,
    prefilter: Option<Box<dyn CandidateFilter>>,
}

impl std::fmt::Debug for KnnClassifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KnnClassifier")
            .field("kind", &self.distance.kind())
            .field("k", &self.k)
            .field("train_size", &self.train.len())
            .field("engine", &self.engine)
            .field("prefilter", &self.prefilter.is_some())
            .finish()
    }
}

impl KnnClassifier {
    /// Creates a classifier with the given distance and neighbour count `k`.
    /// Distance batches run on a default (all-cores) [`BatchEngine`].
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(distance: Box<dyn Distance + Send + Sync>, k: usize) -> Self {
        assert!(k > 0, "k must be at least 1");
        KnnClassifier {
            distance,
            k,
            train: Vec::new(),
            engine: BatchEngine::new(),
            prefilter: None,
        }
    }

    /// Replaces the batch engine (e.g. [`BatchEngine::serial`] for
    /// single-threaded runs). Results are identical for every engine
    /// configuration; only wall-clock time changes.
    #[must_use]
    pub fn with_engine(mut self, engine: BatchEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Installs a stage-0 candidate pre-filter (e.g. an aCAM array model),
    /// consulted per training instance before its distance is evaluated.
    /// The first `k` instances seed a certified pruning threshold; a
    /// filter rejection then proves the instance is outside the final
    /// neighbour set, so the classification (label, score, nearest index)
    /// stays bitwise-identical with or without a filter.
    #[must_use]
    pub fn with_candidate_filter(mut self, filter: Box<dyn CandidateFilter>) -> Self {
        self.prefilter = Some(filter);
        self
    }

    /// Adds one labelled training series.
    pub fn fit(&mut self, label: usize, series: Vec<f64>) {
        self.train.push(Instance { label, series });
    }

    /// Adds many labelled training series.
    pub fn fit_all<I: IntoIterator<Item = (usize, Vec<f64>)>>(&mut self, items: I) {
        for (label, series) in items {
            self.fit(label, series);
        }
    }

    /// Number of stored training instances.
    pub fn train_size(&self) -> usize {
        self.train.len()
    }

    /// Classifies a query by majority vote over its `k` nearest neighbours
    /// (ties broken by the single nearest neighbour's label).
    ///
    /// # Errors
    ///
    /// Returns [`DistanceError::InvalidParameter`] if no training data has
    /// been fitted or the query or a training series contains a NaN or
    /// infinity, or any error from the underlying distance.
    pub fn classify(&self, query: &[f64]) -> Result<Classified, DistanceError> {
        if self.train.is_empty() {
            return Err(DistanceError::InvalidParameter {
                name: "train",
                reason: "classifier has no training data".into(),
            });
        }
        ensure_finite("query", query)?;
        for inst in &self.train {
            ensure_finite("train", &inst.series)?;
        }
        let invert = self.distance.is_similarity();
        // Stage 0: with a pre-filter installed (and scores that are plain
        // distances), the first k instances are evaluated up front and the
        // largest of their distances becomes the programmed threshold. The
        // final k-th best score can only be <= that threshold, so a filter
        // rejection — certified `distance > threshold` — proves the
        // instance lands strictly past position k in the sort below and
        // its exact score is never consulted.
        let head = self.k.min(self.train.len());
        let predicate = match &self.prefilter {
            Some(filter) if !invert && self.train.len() > head => {
                let mut scratch = DpScratch::new();
                let mut threshold = f64::NEG_INFINITY;
                for inst in &self.train[..head] {
                    let raw = self
                        .distance
                        .evaluate_with(query, &inst.series, &mut scratch)?;
                    threshold = threshold.max(raw);
                }
                if threshold.is_finite() && threshold >= 0.0 {
                    filter.program(self.distance.kind(), query, query.len(), threshold)
                } else {
                    None
                }
            }
            _ => None,
        };
        // One distance per training instance, sharded over the engine's
        // workers; scores come back in training-index order, so the stable
        // sort below breaks ties by index exactly as the serial loop did.
        let scores = self
            .engine
            .try_map_scratch(&self.train, |scratch, idx, inst| {
                if idx >= head {
                    if let Some(p) = &predicate {
                        if !p.admit(&inst.series) {
                            // Certified out of the neighbour set: an +inf
                            // placeholder sorts after every finite score, of
                            // which the k head instances guarantee at least k.
                            return Ok(f64::INFINITY);
                        }
                    }
                }
                // `0.0 - raw` so a zero similarity negates to +0.0, keeping
                // `total_cmp` ties identical to the old partial_cmp ordering.
                let raw = self.distance.evaluate_with(query, &inst.series, scratch)?;
                Ok(if invert { 0.0 - raw } else { raw })
            })?;
        let mut scored: Vec<(usize, f64)> = scores.into_iter().enumerate().collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        let k = self.k.min(scored.len());
        let mut votes = std::collections::HashMap::new();
        for &(idx, _) in &scored[..k] {
            *votes.entry(self.train[idx].label).or_insert(0usize) += 1;
        }
        let nearest = scored[0];
        let best_count = *votes.values().max().expect("k >= 1");
        let winners: Vec<usize> = votes
            .iter()
            .filter(|(_, &c)| c == best_count)
            .map(|(&l, _)| l)
            .collect();
        let label = if winners.len() == 1 {
            winners[0]
        } else {
            self.train[nearest.0].label
        };
        Ok(Classified {
            label,
            score: nearest.1,
            nearest_index: nearest.0,
        })
    }

    /// Leave-one-out accuracy over the training set — the standard UCR
    /// evaluation protocol.
    ///
    /// # Errors
    ///
    /// Propagates distance errors.
    pub fn leave_one_out_accuracy(&self) -> Result<f64, DistanceError> {
        if self.train.len() < 2 {
            return Err(DistanceError::InvalidParameter {
                name: "train",
                reason: "leave-one-out needs at least two instances".into(),
            });
        }
        for inst in &self.train {
            ensure_finite("train", &inst.series)?;
        }
        let invert = self.distance.is_similarity();
        // One work item per held-out query; each worker scans the full train
        // set serially (deterministic strict-< argmin, ties to lowest index).
        let hits = self.engine.try_map_scratch(&self.train, |scratch, qi, q| {
            let mut best: Option<(usize, f64)> = None;
            for (ti, t) in self.train.iter().enumerate() {
                if ti == qi {
                    continue;
                }
                let raw = self.distance.evaluate_with(&q.series, &t.series, scratch)?;
                let score = if invert { 0.0 - raw } else { raw };
                if best.is_none_or(|(_, b)| score < b) {
                    best = Some((ti, score));
                }
            }
            let (bi, _) = best.expect("at least one other instance");
            Ok(usize::from(self.train[bi].label == q.label))
        })?;
        let correct: usize = hits.iter().sum();
        Ok(correct as f64 / self.train.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dtw, Lcs, Manhattan};

    fn two_class_data() -> Vec<(usize, Vec<f64>)> {
        vec![
            (0, vec![0.0, 0.1, 0.0, -0.1]),
            (0, vec![0.1, 0.0, -0.1, 0.0]),
            (1, vec![5.0, 5.1, 4.9, 5.0]),
            (1, vec![4.9, 5.0, 5.1, 5.0]),
        ]
    }

    #[test]
    fn one_nn_separates_well_separated_classes() {
        let mut knn = KnnClassifier::new(Box::new(Dtw::new()), 1);
        knn.fit_all(two_class_data());
        assert_eq!(knn.classify(&[0.05, 0.05, 0.0, 0.0]).unwrap().label, 0);
        assert_eq!(knn.classify(&[5.05, 4.95, 5.0, 5.0]).unwrap().label, 1);
    }

    #[test]
    fn k3_majority_vote() {
        let mut knn = KnnClassifier::new(Box::new(Manhattan::new()), 3);
        knn.fit(0, vec![0.0, 0.0]);
        knn.fit(0, vec![0.2, 0.2]);
        knn.fit(1, vec![0.3, 0.3]);
        knn.fit(1, vec![10.0, 10.0]);
        // Nearest 3 of query (0.25, 0.25): the two 0s and one 1 -> class 0.
        assert_eq!(knn.classify(&[0.1, 0.1]).unwrap().label, 0);
    }

    #[test]
    fn similarity_function_inverts_ordering() {
        // With LCS, the training series sharing MORE elements must win.
        let mut knn = KnnClassifier::new(Box::new(Lcs::new(0.05)), 1);
        knn.fit(0, vec![1.0, 2.0, 3.0, 4.0]);
        knn.fit(1, vec![9.0, 8.0, 7.0, 6.0]);
        assert_eq!(knn.classify(&[1.0, 2.0, 3.0, 9.9]).unwrap().label, 0);
    }

    #[test]
    fn leave_one_out_perfect_on_separated_data() {
        let mut knn = KnnClassifier::new(Box::new(Dtw::new()), 1);
        knn.fit_all(two_class_data());
        assert_eq!(knn.leave_one_out_accuracy().unwrap(), 1.0);
    }

    #[test]
    fn empty_classifier_errors() {
        let knn = KnnClassifier::new(Box::new(Manhattan::new()), 1);
        assert!(knn.classify(&[0.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_panics() {
        let _ = KnnClassifier::new(Box::new(Manhattan::new()), 0);
    }

    /// The identity filter must leave the classification bitwise as the
    /// unfiltered run produced it.
    #[test]
    fn admit_all_filter_changes_nothing() {
        use crate::mining::prefilter::AdmitAll;
        for k in [1, 3] {
            let mut plain = KnnClassifier::new(Box::new(Dtw::new()), k);
            plain.fit_all(two_class_data());
            let mut filtered = KnnClassifier::new(Box::new(Dtw::new()), k)
                .with_candidate_filter(Box::new(AdmitAll));
            filtered.fit_all(two_class_data());
            for query in [[0.05, 0.05, 0.0, 0.0], [5.05, 4.95, 5.0, 5.0]] {
                assert_eq!(
                    plain.classify(&query).unwrap(),
                    filtered.classify(&query).unwrap()
                );
            }
        }
    }

    /// Regression: a NaN query or training series used to panic in the
    /// score sort (`partial_cmp(..).expect("scores are finite")`).
    #[test]
    fn non_finite_inputs_are_typed_errors_not_panics() {
        let mut knn = KnnClassifier::new(Box::new(Dtw::new()), 1);
        knn.fit_all(two_class_data());
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = knn.classify(&[0.0, bad, 0.0, 0.0]).unwrap_err();
            assert!(
                matches!(err, DistanceError::InvalidParameter { name: "query", .. }),
                "{err:?}"
            );
        }
        knn.fit(0, vec![0.0, f64::NAN, 0.0, 0.0]);
        let err = knn.classify(&[0.0; 4]).unwrap_err();
        assert!(
            matches!(err, DistanceError::InvalidParameter { name: "train", .. }),
            "{err:?}"
        );
        assert!(knn.leave_one_out_accuracy().is_err());
    }
}
