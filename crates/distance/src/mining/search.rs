//! Subsequence similarity search under DTW — the workload for which
//! "the computation of distance function takes up to more than 99% of the
//! runtime" (Section 1, citing Rakthanmanon et al.).
//!
//! Slides a query over a long series and returns the best-matching window,
//! using the cascading lower bounds of [`crate::lower_bounds`] to prune.

use std::sync::Arc;

use crate::batch::BatchEngine;
use crate::dtw::{Band, Dtw};
use crate::error::DistanceError;
use crate::lower_bounds::{cascading_dtw_with, lb_kim, PruneDecision};
use crate::mining::prefilter::CandidateFilter;
use crate::scratch::DpScratch;
use crate::validate::ensure_finite;
use crate::znorm::{z_normalize_in_place, z_normalized};
use crate::DistanceKind;

/// Statistics from one search run — used by the benches to report pruning
/// power alongside wall-clock numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Windows examined in total.
    pub windows: usize,
    /// Windows rejected by the stage-0 candidate pre-filter (one analog
    /// match-line cycle each), before any digital lower bound ran.
    pub pruned_by_prefilter: usize,
    /// Windows discarded by LB_Kim (O(1) each).
    pub pruned_by_kim: usize,
    /// Windows discarded by LB_Keogh (O(n) each).
    pub pruned_by_keogh: usize,
    /// Windows whose DTW was abandoned row-wise mid-computation.
    pub abandoned_early: usize,
    /// Windows that required a full DTW computation (O(n·r) each).
    pub full_computations: usize,
}

impl SearchStats {
    /// Fraction of windows that avoided the full DTW.
    pub fn prune_rate(&self) -> f64 {
        if self.windows == 0 {
            return 0.0;
        }
        (self.pruned_by_prefilter
            + self.pruned_by_kim
            + self.pruned_by_keogh
            + self.abandoned_early) as f64
            / self.windows as f64
    }
}

/// Best match found by a search.
#[derive(Debug, Clone, PartialEq)]
pub struct Match {
    /// Start offset of the best window in the haystack.
    pub offset: usize,
    /// Banded DTW distance of the best window.
    pub distance: f64,
}

/// Sliding-window DTW subsequence search with cascading lower bounds.
///
/// ```
/// use mda_distance::mining::SubsequenceSearch;
/// # fn main() -> Result<(), mda_distance::DistanceError> {
/// let haystack: Vec<f64> = (0..64).map(|i| (i as f64 * 0.4).sin()).collect();
/// let query: Vec<f64> = haystack[20..28].to_vec();
/// let search = SubsequenceSearch::new(8, 1);
/// let (best, _stats) = search.run(&query, &haystack)?;
/// assert_eq!(best.offset, 20);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct SubsequenceSearch {
    window: usize,
    band_radius: usize,
    z_normalize: bool,
    engine: BatchEngine,
    prefilter: Option<Arc<dyn CandidateFilter>>,
}

impl std::fmt::Debug for SubsequenceSearch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubsequenceSearch")
            .field("window", &self.window)
            .field("band_radius", &self.band_radius)
            .field("z_normalize", &self.z_normalize)
            .field("engine", &self.engine)
            .field("prefilter", &self.prefilter.is_some())
            .finish()
    }
}

impl SubsequenceSearch {
    /// Creates a search over windows of `window` elements with Sakoe–Chiba
    /// radius `band_radius`. Window batches run on a default (all-cores)
    /// [`BatchEngine`].
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize, band_radius: usize) -> Self {
        assert!(window > 0, "window must be positive");
        SubsequenceSearch {
            window,
            band_radius,
            z_normalize: false,
            engine: BatchEngine::new(),
            prefilter: None,
        }
    }

    /// Replaces the batch engine. The best match (and the pruning
    /// statistics) are identical for every thread count; only wall-clock
    /// time changes.
    #[must_use]
    pub fn with_engine(mut self, engine: BatchEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Enables UCR-suite-style z-normalization of the query and every
    /// window before comparison.
    #[must_use]
    pub fn with_z_normalization(mut self, enabled: bool) -> Self {
        self.z_normalize = enabled;
        self
    }

    /// Installs a stage-0 candidate pre-filter (e.g. an aCAM array model),
    /// consulted per window before any digital lower bound. Because the
    /// [`CandidateFilter`] contract only permits certified rejections, the
    /// returned match and every surviving window's decision are
    /// bitwise-identical with or without a filter; only the pruning
    /// statistics shift between stages.
    #[must_use]
    pub fn with_prefilter(mut self, filter: Arc<dyn CandidateFilter>) -> Self {
        self.prefilter = Some(filter);
        self
    }

    /// The window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Copies the window at `offset` into `buf`, z-normalizing if enabled,
    /// so workers reuse one buffer instead of allocating per window.
    fn window_into<'a>(
        &self,
        haystack: &'a [f64],
        offset: usize,
        buf: &'a mut Vec<f64>,
    ) -> &'a [f64] {
        let window = &haystack[offset..offset + self.window];
        if self.z_normalize {
            buf.clear();
            buf.extend_from_slice(window);
            z_normalize_in_place(buf);
            buf
        } else {
            window
        }
    }

    /// Runs the search, returning the best match and pruning statistics.
    ///
    /// The window batch runs in three deterministic stages on the engine:
    /// an O(1)-per-window LB_Kim **scout pass** picks the most promising
    /// window (ties to lowest offset); its full banded DTW becomes a fixed
    /// pruning threshold every chunk starts from (tightened chunk-locally);
    /// and an ordered reduction takes the minimum computed distance, ties
    /// broken by the lowest offset — exactly like the serial scan. Match and
    /// statistics are therefore identical for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`DistanceError::InvalidParameter`] if the haystack is shorter
    /// than the window or either input contains a NaN or infinity, or
    /// propagates distance errors.
    pub fn run(
        &self,
        query: &[f64],
        haystack: &[f64],
    ) -> Result<(Match, SearchStats), DistanceError> {
        if haystack.len() < self.window {
            return Err(DistanceError::InvalidParameter {
                name: "haystack",
                reason: format!(
                    "haystack length {} shorter than window {}",
                    haystack.len(),
                    self.window
                ),
            });
        }
        ensure_finite("query", query)?;
        ensure_finite("haystack", haystack)?;
        let query_owned: Vec<f64> = if self.z_normalize {
            z_normalized(query)
        } else {
            query.to_vec()
        };
        let offsets: Vec<usize> = (0..=(haystack.len() - self.window)).collect();
        let mut stats = SearchStats {
            windows: offsets.len(),
            ..SearchStats::default()
        };

        // Stage 1: scout. LB_Kim is admissible, so the window with the
        // smallest bound is the best guess at the match.
        let kims =
            self.engine
                .try_map_with(&offsets, Vec::new, |buf: &mut Vec<f64>, _, &off| {
                    lb_kim(&query_owned, self.window_into(haystack, off, buf))
                })?;
        let scout = kims
            .iter()
            .enumerate()
            .min_by(|x, y| x.1.total_cmp(y.1))
            .map(|(i, _)| i)
            .expect("haystack holds at least one window");
        let scout_off = offsets[scout];
        let mut scout_buf = Vec::new();
        let best_ub = Dtw::new()
            .with_band(Band::SakoeChiba(self.band_radius))
            .distance(
                &query_owned,
                self.window_into(haystack, scout_off, &mut scout_buf),
            )?;

        // Stage 1b: program the stage-0 pre-filter for the (z-normalized)
        // query at the fixed scout threshold. A rejection certifies
        // `LB_Keogh(window) > best_ub >= local_best`, i.e. a window the
        // stage-2 cascade would have discarded at its Keogh layer without
        // touching `local_best` — so skipping its cascade call leaves every
        // other window's decision bitwise-unchanged.
        let predicate = self.prefilter.as_ref().and_then(|filter| {
            filter.program(DistanceKind::Dtw, &query_owned, self.band_radius, best_ub)
        });

        // Stage 2: cascade every window against the fixed scout threshold,
        // tightening chunk-locally. The true best window always survives:
        // its distance is <= every threshold the cascade can hold.
        let decisions = self.engine.try_map_chunks(
            &offsets,
            || (DpScratch::new(), Vec::new()),
            |(scratch, buf), _, chunk| {
                let mut local_best = best_ub;
                chunk
                    .iter()
                    .map(|&off| {
                        let window = if self.z_normalize {
                            buf.clear();
                            buf.extend_from_slice(&haystack[off..off + self.window]);
                            z_normalize_in_place(buf);
                            &buf[..]
                        } else {
                            &haystack[off..off + self.window]
                        };
                        let decision = if off == scout_off {
                            // The scout window's full DTW is already known —
                            // it is the stage-1 threshold. Reusing it (instead
                            // of cascading, which chunk-local tightening could
                            // abandon) guarantees stage 3 always sees at least
                            // one `Computed` decision, so the returned match
                            // is a real, fully evaluated window.
                            PruneDecision::Computed(best_ub)
                        } else {
                            match &predicate {
                                Some(p) if !p.admit(window) => return Ok(None),
                                _ => {}
                            }
                            cascading_dtw_with(
                                &query_owned,
                                window,
                                self.band_radius,
                                local_best,
                                scratch,
                            )?
                        };
                        if let PruneDecision::Computed(d) = decision {
                            if d < local_best {
                                local_best = d;
                            }
                        }
                        Ok(Some(decision))
                    })
                    .collect()
            },
        )?;

        // Stage 3: ordered reduction. The scout window is always `Computed`,
        // so `best` is never the infinite placeholder on return.
        let mut best = Match {
            offset: 0,
            distance: f64::INFINITY,
        };
        for (&offset, decision) in offsets.iter().zip(decisions) {
            match decision {
                None => stats.pruned_by_prefilter += 1,
                Some(PruneDecision::PrunedByKim(_)) => stats.pruned_by_kim += 1,
                Some(PruneDecision::PrunedByKeogh(_)) => stats.pruned_by_keogh += 1,
                Some(PruneDecision::AbandonedEarly) => stats.abandoned_early += 1,
                Some(PruneDecision::Computed(d)) => {
                    stats.full_computations += 1;
                    if d < best.distance {
                        best = Match {
                            offset,
                            distance: d,
                        };
                    }
                }
            }
        }
        debug_assert!(
            best.distance.is_finite(),
            "scout window must yield a Computed decision"
        );
        Ok((best, stats))
    }

    /// Brute-force search without any pruning — used to verify that the
    /// cascading bounds never change the answer, and as the unoptimized
    /// baseline in the benches.
    ///
    /// # Errors
    ///
    /// Same as [`SubsequenceSearch::run`].
    pub fn run_brute_force(&self, query: &[f64], haystack: &[f64]) -> Result<Match, DistanceError> {
        if haystack.len() < self.window {
            return Err(DistanceError::InvalidParameter {
                name: "haystack",
                reason: format!(
                    "haystack length {} shorter than window {}",
                    haystack.len(),
                    self.window
                ),
            });
        }
        ensure_finite("query", query)?;
        ensure_finite("haystack", haystack)?;
        let dtw = Dtw::new().with_band(Band::SakoeChiba(self.band_radius));
        let query_owned: Vec<f64> = if self.z_normalize {
            z_normalized(query)
        } else {
            query.to_vec()
        };
        let mut best = Match {
            offset: 0,
            distance: f64::INFINITY,
        };
        for offset in 0..=(haystack.len() - self.window) {
            let window = &haystack[offset..offset + self.window];
            let window_owned: Vec<f64>;
            let window_ref: &[f64] = if self.z_normalize {
                window_owned = z_normalized(window);
                &window_owned
            } else {
                window
            };
            let d = dtw.distance(&query_owned, window_ref)?;
            if d < best.distance {
                best = Match {
                    offset,
                    distance: d,
                };
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn haystack() -> Vec<f64> {
        (0..128)
            .map(|i| (i as f64 * 0.3).sin() * (1.0 + i as f64 / 128.0))
            .collect()
    }

    #[test]
    fn finds_exact_planted_match() {
        let hay = haystack();
        let query = hay[40..56].to_vec();
        let s = SubsequenceSearch::new(16, 2);
        let (m, _) = s.run(&query, &hay).unwrap();
        assert_eq!(m.offset, 40);
        assert_eq!(m.distance, 0.0);
    }

    #[test]
    fn pruned_and_brute_force_agree() {
        let hay = haystack();
        let query: Vec<f64> = (0..16).map(|i| (i as f64 * 0.29 + 0.4).sin()).collect();
        let s = SubsequenceSearch::new(16, 2);
        let (pruned, stats) = s.run(&query, &hay).unwrap();
        let brute = s.run_brute_force(&query, &hay).unwrap();
        assert_eq!(pruned.offset, brute.offset);
        assert!((pruned.distance - brute.distance).abs() < 1e-12);
        assert_eq!(stats.windows, hay.len() - 16 + 1);
    }

    #[test]
    fn pruning_actually_happens_on_structured_data() {
        let mut hay = vec![0.0; 200];
        // One matching region, the rest flat at a large offset.
        for (i, v) in hay.iter_mut().enumerate() {
            *v = if (80..96).contains(&i) {
                ((i - 80) as f64 * 0.5).sin()
            } else {
                7.0
            };
        }
        let query: Vec<f64> = (0..16).map(|i| (i as f64 * 0.5).sin()).collect();
        let s = SubsequenceSearch::new(16, 1);
        let (m, stats) = s.run(&query, &hay).unwrap();
        assert_eq!(m.offset, 80);
        assert!(
            stats.prune_rate() > 0.5,
            "prune rate {}",
            stats.prune_rate()
        );
    }

    #[test]
    fn z_normalized_search_is_amplitude_invariant() {
        let hay: Vec<f64> = haystack().iter().map(|x| x * 10.0 + 3.0).collect();
        let query: Vec<f64> = haystack()[40..56].to_vec();
        let s = SubsequenceSearch::new(16, 2).with_z_normalization(true);
        let (m, _) = s.run(&query, &hay).unwrap();
        assert_eq!(m.offset, 40);
        assert!(m.distance < 1e-9);
    }

    #[test]
    fn short_haystack_rejected() {
        let s = SubsequenceSearch::new(16, 1);
        assert!(s.run(&[0.0; 16], &[0.0; 8]).is_err());
    }

    /// Regression: a NaN anywhere in the input used to panic inside the
    /// scout pass (`partial_cmp(..).expect("finite bounds")`). It must be a
    /// typed error instead — for both the pruned and brute-force paths.
    #[test]
    fn non_finite_inputs_are_typed_errors_not_panics() {
        let s = SubsequenceSearch::new(4, 1);
        let good = vec![0.0, 1.0, 2.0, 1.0, 0.0, -1.0, 0.5, 1.5];
        for bad_value in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut bad = good.clone();
            bad[3] = bad_value;

            // NaN/∞ in the query.
            let err = s.run(&bad[..4], &good).unwrap_err();
            assert!(
                matches!(err, DistanceError::InvalidParameter { name: "query", .. }),
                "query case: {err:?}"
            );
            // NaN/∞ in the haystack.
            let err = s.run(&good[..4], &bad).unwrap_err();
            assert!(
                matches!(
                    err,
                    DistanceError::InvalidParameter {
                        name: "haystack",
                        ..
                    }
                ),
                "haystack case: {err:?}"
            );
            // NaN/∞ in both (query is validated first).
            let err = s.run(&bad[..4], &bad).unwrap_err();
            assert!(
                matches!(err, DistanceError::InvalidParameter { name: "query", .. }),
                "both case: {err:?}"
            );
            assert!(s.run_brute_force(&bad[..4], &good).is_err());
            assert!(s.run_brute_force(&good[..4], &bad).is_err());
        }
    }

    /// Regression: when every window ties the scout threshold exactly, the
    /// search must still return a real, fully computed window — never the
    /// fabricated `Match { offset: 0, distance: ∞ }` placeholder.
    #[test]
    fn equal_threshold_tie_returns_real_match() {
        // Constant query vs constant haystack: every window has the exact
        // same DTW distance as the scout threshold (8 cells × |1 - 0| = 8).
        let s = SubsequenceSearch::new(8, 1);
        let (m, stats) = s.run(&[1.0; 8], &[0.0; 32]).unwrap();
        assert!(m.distance.is_finite());
        assert_eq!(m.distance, 8.0);
        assert_eq!(m.offset, 0);
        assert!(
            stats.full_computations >= 1,
            "at least the scout window must be Computed, stats: {stats:?}"
        );
        let brute = s.run_brute_force(&[1.0; 8], &[0.0; 32]).unwrap();
        assert_eq!((m.offset, m.distance), (brute.offset, brute.distance));
    }

    #[test]
    fn stats_partition_windows() {
        let hay = haystack();
        let query: Vec<f64> = (0..16).map(|i| (i as f64 * 0.31).cos()).collect();
        let (_, stats) = SubsequenceSearch::new(16, 2).run(&query, &hay).unwrap();
        assert_eq!(
            stats.windows,
            stats.pruned_by_prefilter
                + stats.pruned_by_kim
                + stats.pruned_by_keogh
                + stats.abandoned_early
                + stats.full_computations
        );
        assert_eq!(stats.pruned_by_prefilter, 0, "no filter installed");
    }

    /// The identity filter must leave the match AND the statistics exactly
    /// as the unfiltered run produced them — it admits everything, so every
    /// window still flows through the cascade.
    #[test]
    fn admit_all_prefilter_changes_nothing() {
        use crate::mining::prefilter::AdmitAll;
        use std::sync::Arc;
        let hay = haystack();
        let query: Vec<f64> = (0..16).map(|i| (i as f64 * 0.31).cos()).collect();
        let plain = SubsequenceSearch::new(16, 2);
        let filtered = plain.clone().with_prefilter(Arc::new(AdmitAll));
        let (m0, s0) = plain.run(&query, &hay).unwrap();
        let (m1, s1) = filtered.run(&query, &hay).unwrap();
        assert_eq!(m0, m1);
        assert_eq!(s0, s1);
    }
}
