//! Motif discovery — the "frequency pattern mining" task of the paper's
//! Section 1.
//!
//! A *motif* is the most similar pair of non-overlapping subsequences in a
//! series: the primitive behind frequent-pattern mining on time series.
//! The classic brute-force algorithm compares all O(n²) window pairs; the
//! pruned variant rejects candidates with the cascading DTW lower bounds,
//! and both must return identical answers (tested below).

use crate::batch::BatchEngine;
use crate::dtw::{Band, Dtw};
use crate::error::DistanceError;
use crate::lower_bounds::{cascading_dtw_with, lb_kim, PruneDecision};
use crate::scratch::DpScratch;
use crate::validate::ensure_finite;

/// A discovered motif: the best-matching pair of non-overlapping windows.
#[derive(Debug, Clone, PartialEq)]
pub struct Motif {
    /// Start offset of the first occurrence.
    pub first: usize,
    /// Start offset of the second occurrence.
    pub second: usize,
    /// Banded DTW distance between the two occurrences.
    pub distance: f64,
}

/// Statistics from a pruned motif search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MotifStats {
    /// Window pairs considered.
    pub pairs: usize,
    /// Pairs discarded by a lower bound.
    pub pruned: usize,
    /// Pairs fully evaluated with DTW.
    pub full_computations: usize,
}

/// Motif discovery over sliding windows with a DTW distance.
///
/// ```
/// use mda_distance::mining::MotifDiscovery;
/// # fn main() -> Result<(), mda_distance::DistanceError> {
/// // A ramp background (no exact repeats) with one bump planted twice.
/// let mut xs: Vec<f64> = (0..64).map(|i| i as f64 * 0.2).collect();
/// for i in 0..8 {
///     let bump = ((i as f64) * 0.8).sin() * 20.0;
///     xs[10 + i] = bump;
///     xs[40 + i] = bump;
/// }
/// let motif = MotifDiscovery::new(8, 1).find(&xs)?;
/// assert_eq!((motif.first, motif.second), (10, 40));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MotifDiscovery {
    window: usize,
    band_radius: usize,
    stride: usize,
    engine: BatchEngine,
}

impl MotifDiscovery {
    /// Discovery over windows of `window` points with Sakoe–Chiba radius
    /// `band_radius`, stride 1. Pair batches run on a default (all-cores)
    /// [`BatchEngine`].
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize, band_radius: usize) -> Self {
        assert!(window > 0, "window must be positive");
        MotifDiscovery {
            window,
            band_radius,
            stride: 1,
            engine: BatchEngine::new(),
        }
    }

    /// Replaces the batch engine. The discovered motif (and the pruning
    /// statistics) are identical for every thread count; only wall-clock
    /// time changes.
    #[must_use]
    pub fn with_engine(mut self, engine: BatchEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the window stride (coarser = faster, may miss offsets).
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    #[must_use]
    pub fn with_stride(mut self, stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        self.stride = stride;
        self
    }

    fn offsets(&self, n: usize) -> Vec<usize> {
        (0..=(n - self.window)).step_by(self.stride).collect()
    }

    /// Finds the motif with cascading lower-bound pruning.
    ///
    /// # Errors
    ///
    /// Returns [`DistanceError::InvalidParameter`] if the series cannot hold
    /// two non-overlapping windows.
    pub fn find(&self, xs: &[f64]) -> Result<Motif, DistanceError> {
        Ok(self.find_with_stats(xs)?.0)
    }

    /// Finds the motif, also returning pruning statistics.
    ///
    /// The pair batch runs in three deterministic stages on the engine:
    ///
    /// 1. a **scout pass** computes the O(1) LB_Kim of every pair and picks
    ///    the most promising one (smallest bound, ties to lowest pair index);
    /// 2. the scout pair's full banded DTW becomes a fixed pruning threshold
    ///    every chunk starts from (tightened chunk-locally as better pairs
    ///    are computed), so prune decisions depend only on the chunk
    ///    contents — never on thread scheduling;
    /// 3. an ordered reduction takes the minimum computed distance, ties
    ///    broken by the lowest pair index, exactly like the serial scan.
    ///
    /// # Errors
    ///
    /// Same as [`MotifDiscovery::find`].
    pub fn find_with_stats(&self, xs: &[f64]) -> Result<(Motif, MotifStats), DistanceError> {
        if xs.len() < 2 * self.window {
            return Err(DistanceError::InvalidParameter {
                name: "series",
                reason: format!(
                    "need at least two non-overlapping windows of {}, got length {}",
                    self.window,
                    xs.len()
                ),
            });
        }
        ensure_finite("series", xs)?;
        let offsets = self.offsets(xs.len());
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for (ai, &a) in offsets.iter().enumerate() {
            for &b in &offsets[ai + 1..] {
                if b >= a + self.window {
                    pairs.push((a, b));
                }
            }
        }
        let mut stats = MotifStats {
            pairs: pairs.len(),
            ..MotifStats::default()
        };
        let mut best = Motif {
            first: 0,
            second: self.window,
            distance: f64::INFINITY,
        };
        if pairs.is_empty() {
            return Ok((best, stats));
        }
        let win = |o: usize| &xs[o..o + self.window];

        // Stage 1: scout. LB_Kim is admissible, so the pair with the
        // smallest bound is the best guess at the motif.
        let kims = self
            .engine
            .try_map(&pairs, |_, &(a, b)| lb_kim(win(a), win(b)))?;
        let scout = kims
            .iter()
            .enumerate()
            .min_by(|x, y| x.1.total_cmp(y.1))
            .map(|(i, _)| i)
            .expect("at least one pair");
        let (sa, sb) = pairs[scout];
        let best_ub = Dtw::new()
            .with_band(Band::SakoeChiba(self.band_radius))
            .distance(win(sa), win(sb))?;

        // Stage 2: cascade every pair against the fixed scout threshold,
        // tightening chunk-locally. The true motif always survives: its
        // distance is <= every threshold the cascade can hold.
        let decisions =
            self.engine
                .try_map_chunks(&pairs, DpScratch::new, |scratch, _, chunk| {
                    let mut local_best = best_ub;
                    chunk
                        .iter()
                        .map(|&(a, b)| {
                            let decision = if (a, b) == (sa, sb) {
                                // The scout pair's full DTW is the stage-1
                                // threshold; reusing it guarantees stage 3
                                // always sees at least one `Computed`
                                // decision, so the returned motif is real.
                                PruneDecision::Computed(best_ub)
                            } else {
                                cascading_dtw_with(
                                    win(a),
                                    win(b),
                                    self.band_radius,
                                    local_best,
                                    scratch,
                                )?
                            };
                            if let PruneDecision::Computed(d) = decision {
                                if d < local_best {
                                    local_best = d;
                                }
                            }
                            Ok(decision)
                        })
                        .collect()
                })?;

        // Stage 3: ordered reduction. The scout pair is always `Computed`,
        // so `best` is never the infinite placeholder on return.
        for (&(a, b), decision) in pairs.iter().zip(decisions) {
            match decision {
                PruneDecision::PrunedByKim(_)
                | PruneDecision::PrunedByKeogh(_)
                | PruneDecision::AbandonedEarly => {
                    stats.pruned += 1;
                }
                PruneDecision::Computed(d) => {
                    stats.full_computations += 1;
                    if d < best.distance {
                        best = Motif {
                            first: a,
                            second: b,
                            distance: d,
                        };
                    }
                }
            }
        }
        Ok((best, stats))
    }

    /// Brute-force reference (no pruning) — must agree with
    /// [`MotifDiscovery::find`].
    ///
    /// # Errors
    ///
    /// Same as [`MotifDiscovery::find`].
    pub fn find_brute_force(&self, xs: &[f64]) -> Result<Motif, DistanceError> {
        if xs.len() < 2 * self.window {
            return Err(DistanceError::InvalidParameter {
                name: "series",
                reason: format!(
                    "need at least two non-overlapping windows of {}, got length {}",
                    self.window,
                    xs.len()
                ),
            });
        }
        ensure_finite("series", xs)?;
        let dtw = Dtw::new().with_band(Band::SakoeChiba(self.band_radius));
        let offsets = self.offsets(xs.len());
        let mut best = Motif {
            first: 0,
            second: self.window,
            distance: f64::INFINITY,
        };
        for (ai, &a) in offsets.iter().enumerate() {
            for &b in &offsets[ai + 1..] {
                if b < a + self.window {
                    continue;
                }
                let d = dtw.distance(&xs[a..a + self.window], &xs[b..b + self.window])?;
                if d < best.distance {
                    best = Motif {
                        first: a,
                        second: b,
                        distance: d,
                    };
                }
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted_series() -> Vec<f64> {
        // Aperiodic background (ramp + irrational-frequency sine) so no two
        // background windows repeat exactly; the planted bump pair is the
        // unique motif.
        let mut xs: Vec<f64> = (0..96)
            .map(|i| i as f64 * 0.15 + (i as f64 * 0.618).sin() * 0.4)
            .collect();
        for i in 0..10 {
            let bump = (i as f64 * 0.7).sin() * 30.0;
            xs[12 + i] = bump;
            xs[70 + i] = bump + 0.01;
        }
        xs
    }

    #[test]
    fn finds_planted_motif() {
        let motif = MotifDiscovery::new(10, 1).find(&planted_series()).unwrap();
        assert_eq!(motif.first, 12);
        assert_eq!(motif.second, 70);
        assert!(motif.distance < 0.2);
    }

    #[test]
    fn pruned_agrees_with_brute_force() {
        let d = MotifDiscovery::new(10, 2);
        let xs = planted_series();
        let (pruned, stats) = d.find_with_stats(&xs).unwrap();
        let brute = d.find_brute_force(&xs).unwrap();
        assert_eq!((pruned.first, pruned.second), (brute.first, brute.second));
        assert!((pruned.distance - brute.distance).abs() < 1e-12);
        assert_eq!(stats.pairs, stats.pruned + stats.full_computations);
        assert!(stats.pruned > 0, "expected some pruning");
    }

    #[test]
    fn occurrences_never_overlap() {
        let motif = MotifDiscovery::new(16, 1).find(&planted_series()).unwrap();
        assert!(motif.second >= motif.first + 16);
    }

    #[test]
    fn stride_reduces_pair_count() {
        let xs = planted_series();
        let (_, dense) = MotifDiscovery::new(10, 1).find_with_stats(&xs).unwrap();
        let (_, strided) = MotifDiscovery::new(10, 1)
            .with_stride(4)
            .find_with_stats(&xs)
            .unwrap();
        assert!(strided.pairs < dense.pairs / 4);
    }

    #[test]
    fn too_short_series_rejected() {
        assert!(MotifDiscovery::new(10, 1).find(&[0.0; 15]).is_err());
    }

    /// Regression: a NaN in the series used to panic inside the scout pass.
    #[test]
    fn non_finite_series_is_typed_error_not_panic() {
        let d = MotifDiscovery::new(4, 1);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut xs = vec![0.0; 16];
            xs[7] = bad;
            let err = d.find(&xs).unwrap_err();
            assert!(
                matches!(err, DistanceError::InvalidParameter { name: "series", .. }),
                "{err:?}"
            );
            assert!(d.find_brute_force(&xs).is_err());
        }
    }

    /// Regression: when every pair ties the scout threshold exactly, the
    /// discovery must still return a real, fully computed pair.
    #[test]
    fn all_tied_pairs_return_real_motif() {
        let d = MotifDiscovery::new(4, 1);
        let (m, stats) = d.find_with_stats(&[2.0; 16]).unwrap();
        assert!(m.distance.is_finite());
        assert_eq!(m.distance, 0.0);
        assert!(m.second >= m.first + 4);
        assert!(stats.full_computations >= 1, "stats: {stats:?}");
    }
}
