//! The three time-series data-mining tasks that motivate the paper
//! (Section 1: "Classification, clustering and frequency pattern mining are
//! three main data mining tasks for time series"), each built on the
//! distance functions of this crate:
//!
//! * [`knn`] — 1-NN / k-NN classification (e.g. vehicle classification with
//!   DTW, iris authentication with HamD);
//! * [`kmedoids`] — k-medoids clustering (distance-matrix based, so any of
//!   the six functions plugs in);
//! * [`motif`] — motif discovery, the primitive behind frequency pattern
//!   mining;
//! * [`search`] — subsequence similarity search with cascading lower-bound
//!   pruning, the workload whose runtime is ">99% distance computation";
//! * [`prefilter`] — the pluggable stage-0 candidate filter (admissible,
//!   certified-prune) that search and kNN consult before any digital work.

pub mod kmedoids;
pub mod knn;
pub mod motif;
pub mod prefilter;
pub mod search;

pub use kmedoids::{KMedoids, KMedoidsResult};
pub use knn::{Classified, KnnClassifier};
pub use motif::{Motif, MotifDiscovery, MotifStats};
pub use prefilter::{AdmitAll, CandidateFilter, CandidatePredicate};
pub use search::{SearchStats, SubsequenceSearch};
