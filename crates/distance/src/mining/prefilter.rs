//! Stage-0 candidate filtering: a pluggable admissible pre-filter that
//! sits *ahead* of the cascading lower bounds.
//!
//! The mining workloads ([`crate::mining::search`], [`crate::mining::knn`])
//! accept an optional [`CandidateFilter`]. Once a pruning threshold is
//! known (the scout window's DTW in search, the running k-th best in kNN),
//! the filter is *programmed* for the query and yields a
//! [`CandidatePredicate`] that is consulted per candidate before any
//! digital work.
//!
//! ## The admissibility contract
//!
//! A predicate rejection (`admit == false`) must **certify** that the
//! candidate's true distance to the query is *strictly greater* than the
//! programmed threshold. Under that contract the caller may skip the
//! candidate without changing its final answer — not approximately, but
//! bitwise: every rejected candidate is one the exact pipeline would have
//! discarded anyway, and skipping it perturbs no intermediate state the
//! surviving candidates observe. False *accepts* are always allowed (the
//! candidate just proceeds to the exact pipeline); false *rejects* are
//! never allowed.
//!
//! The motivating implementation is the aCAM array of the `mda-acam`
//! crate, which answers the predicate for a whole window in one analog
//! match-line cycle; the trait lives here so the mining layer stays free
//! of any accelerator dependency.

use crate::DistanceKind;

/// A filter programmed for one (query, threshold) pair.
pub trait CandidatePredicate: Send + Sync {
    /// Whether the candidate may still beat the programmed threshold.
    ///
    /// `false` is a **certified rejection**: the candidate's true distance
    /// is strictly above the threshold. Implementations must return `true`
    /// whenever they cannot certify that — e.g. for a candidate whose
    /// length does not fit the programmed word.
    fn admit(&self, candidate: &[f64]) -> bool;
}

/// A factory of stage-0 predicates, programmable per query.
pub trait CandidateFilter: Send + Sync {
    /// Programs the filter for `query` under distance `kind`.
    ///
    /// `band_radius` is the Sakoe–Chiba radius the caller will use for DTW
    /// (callers that cannot know the band pass `query.len()`, which is
    /// always admissible); `prune_threshold` is the non-negative distance
    /// above which candidates are discardable.
    ///
    /// Returns `None` when the filter cannot serve this kind/query/threshold
    /// combination — the caller then runs completely unfiltered, which must
    /// always remain correct.
    fn program(
        &self,
        kind: DistanceKind,
        query: &[f64],
        band_radius: usize,
        prune_threshold: f64,
    ) -> Option<Box<dyn CandidatePredicate>>;
}

/// A trivial filter that admits everything — the identity element, useful
/// for exercising the filtered code path without an accelerator model.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmitAll;

struct AdmitAllPredicate;

impl CandidatePredicate for AdmitAllPredicate {
    fn admit(&self, _candidate: &[f64]) -> bool {
        true
    }
}

impl CandidateFilter for AdmitAll {
    fn program(
        &self,
        _kind: DistanceKind,
        _query: &[f64],
        _band_radius: usize,
        _prune_threshold: f64,
    ) -> Option<Box<dyn CandidatePredicate>> {
        Some(Box::new(AdmitAllPredicate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_all_admits_everything() {
        let pred = AdmitAll
            .program(DistanceKind::Dtw, &[0.0, 1.0], 1, 0.5)
            .unwrap();
        assert!(pred.admit(&[9.0, -9.0]));
        assert!(pred.admit(&[]));
    }
}
