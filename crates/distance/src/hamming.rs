//! Thresholded Hamming distance (HamD), Eq. 6 of the paper.
//!
//! The number of positions whose elements differ by more than a threshold:
//!
//! ```text
//! H[i] = H[i-1]                 if |P[i] - Q[i]| <= threshold
//!      = H[i-1] + w[i] * Vstep  otherwise
//! H[0] = 0, HamD(P, Q) = H[n]    (requires n == m)
//! ```

use crate::error::DistanceError;
use crate::weights::Weights;
use crate::{Distance, DistanceKind};

/// Thresholded Hamming distance.
///
/// ```
/// use mda_distance::Hamming;
/// # fn main() -> Result<(), mda_distance::DistanceError> {
/// let ham = Hamming::new(0.5);
/// // Positions 1 and 3 differ by more than 0.5.
/// assert_eq!(ham.distance(&[0.0, 1.0, 2.0, 3.0], &[0.2, 2.0, 2.1, 9.0])?, 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Hamming {
    threshold: f64,
    v_step: f64,
    weights: Weights,
}

impl Hamming {
    /// Hamming distance with match threshold `threshold`, unit step 1 and
    /// uniform weights.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or non-finite.
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "threshold must be finite and non-negative"
        );
        Hamming {
            threshold,
            v_step: 1.0,
            weights: Weights::Uniform,
        }
    }

    /// Sets the contribution `Vstep` of each mismatched position.
    #[must_use]
    pub fn with_step(mut self, v_step: f64) -> Self {
        self.v_step = v_step;
        self
    }

    /// Sets per-position weights (weighted HamD, Zhang et al.). On the
    /// accelerator these are the `M0/Mk` memristor ratios of the row
    /// structure's analog adder.
    #[must_use]
    pub fn with_weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// The configured match threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The configured step value.
    pub fn v_step(&self) -> f64 {
        self.v_step
    }

    /// Per-position contributions `Ham[i]` — the outputs of the row
    /// structure's PEs *before* the analog adder. Exposed for stage-by-stage
    /// validation of the analog model.
    ///
    /// # Errors
    ///
    /// Returns [`DistanceError::LengthMismatch`] for unequal lengths,
    /// [`DistanceError::EmptySequence`] for empty inputs, or
    /// [`DistanceError::WeightShape`] on weight-shape mismatch.
    pub fn contributions(&self, p: &[f64], q: &[f64]) -> Result<Vec<f64>, DistanceError> {
        if p.len() != q.len() {
            return Err(DistanceError::LengthMismatch {
                left: p.len(),
                right: q.len(),
            });
        }
        if p.is_empty() {
            return Err(DistanceError::EmptySequence);
        }
        self.weights.check_element_shape(p.len())?;
        Ok(p.iter()
            .zip(q)
            .enumerate()
            .map(|(i, (a, b))| {
                if (a - b).abs() <= self.threshold {
                    0.0
                } else {
                    self.weights.element(i) * self.v_step
                }
            })
            .collect())
    }

    /// Computes the Hamming distance.
    ///
    /// # Errors
    ///
    /// Same as [`Hamming::contributions`].
    pub fn distance(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        Ok(self.contributions(p, q)?.iter().sum())
    }
}

impl Distance for Hamming {
    fn evaluate(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        self.distance(p, q)
    }

    fn kind(&self) -> DistanceKind {
        DistanceKind::Hamming
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_binary_hamming() {
        let p = [1.0, 0.0, 1.0, 1.0, 0.0];
        let q = [0.0, 0.0, 1.0, 0.0, 1.0];
        assert_eq!(Hamming::new(0.5).distance(&p, &q).unwrap(), 3.0);
    }

    #[test]
    fn self_distance_zero() {
        let p = [0.4, 2.0, -1.0];
        assert_eq!(Hamming::new(0.0).distance(&p, &p).unwrap(), 0.0);
    }

    #[test]
    fn symmetric() {
        let p = [0.0, 1.0, 2.0];
        let q = [0.3, 0.9, 5.0];
        let h = Hamming::new(0.2);
        assert_eq!(h.distance(&p, &q).unwrap(), h.distance(&q, &p).unwrap());
    }

    #[test]
    fn bounded_by_length() {
        let p = [10.0; 6];
        let q = [-10.0; 6];
        assert_eq!(Hamming::new(0.1).distance(&p, &q).unwrap(), 6.0);
    }

    #[test]
    fn threshold_is_inclusive() {
        // |0.5 - 0.0| == threshold -> counts as a match (Eq. 6 uses <=).
        assert_eq!(Hamming::new(0.5).distance(&[0.5], &[0.0]).unwrap(), 0.0);
    }

    #[test]
    fn length_mismatch_rejected() {
        assert_eq!(
            Hamming::new(0.1).distance(&[0.0], &[0.0, 1.0]).unwrap_err(),
            DistanceError::LengthMismatch { left: 1, right: 2 }
        );
    }

    #[test]
    fn weighted_contributions() {
        let p = [0.0, 0.0, 0.0];
        let q = [1.0, 1.0, 0.0];
        let w = Weights::per_element(vec![2.0, 0.5, 9.0]).unwrap();
        let h = Hamming::new(0.1).with_weights(w);
        assert_eq!(h.contributions(&p, &q).unwrap(), vec![2.0, 0.5, 0.0]);
        assert_eq!(h.distance(&p, &q).unwrap(), 2.5);
    }

    #[test]
    fn v_step_scales() {
        let p = [0.0, 0.0];
        let q = [1.0, 1.0];
        let d = Hamming::new(0.1).with_step(0.01).distance(&p, &q).unwrap();
        assert!((d - 0.02).abs() < 1e-15);
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            Hamming::new(0.1).distance(&[], &[]).unwrap_err(),
            DistanceError::EmptySequence
        );
    }
}
