//! Z-normalization and basic statistics for time series.
//!
//! The UCR-suite methodology (Rakthanmanon et al., the paper's reference
//! \[24\]) z-normalizes every subsequence before distance computation; the
//! datasets crate uses these utilities when formalizing series "with
//! different lengths" as the paper's experimental setup does.

/// Mean of a slice. Returns `0.0` for an empty slice.
///
/// Computed incrementally (Welford), so a constant series of any
/// representable magnitude yields that constant exactly — a naive
/// `sum / n` overflows to `inf` for values near `f64::MAX`.
pub fn mean(xs: &[f64]) -> f64 {
    let mut m = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        m += (x - m) / (i + 1) as f64;
    }
    m
}

/// Population standard deviation. Returns `0.0` for slices shorter than 1.
///
/// Uses Welford's single-pass update, which is overflow-immune for
/// constant and near-constant series regardless of magnitude.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut m = 0.0;
    let mut m2 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let delta = x - m;
        m += delta / (i + 1) as f64;
        m2 += delta * (x - m);
    }
    (m2 / xs.len() as f64).sqrt()
}

/// Z-normalizes a series in place: zero mean, unit variance.
///
/// Degenerate inputs never produce `NaN`/`Inf`:
///
/// * a constant series (σ = 0) maps to all zeros — UCR-suite practice —
///   at *any* magnitude, including values near `f64::MAX` where naive
///   mean/variance accumulation overflows;
/// * a near-constant series whose σ is below numerical resolution
///   relative to its mean (σ ≤ 1e-12·max(1, |mean|)) also maps to zeros
///   instead of amplifying cancellation noise;
/// * if the statistics themselves are not finite (e.g. a series mixing
///   `±f64::MAX`, whose variance is unrepresentable), the series maps to
///   zeros rather than propagating `Inf`.
pub fn z_normalize_in_place(xs: &mut [f64]) {
    if xs.is_empty() {
        return;
    }
    // Bitwise-constant fast path: exact at any magnitude.
    let first = xs[0].to_bits();
    if xs.iter().all(|x| x.to_bits() == first) {
        xs.iter_mut().for_each(|x| *x = 0.0);
        return;
    }
    let m = mean(xs);
    let s = std_dev(xs);
    if !m.is_finite() || !s.is_finite() || s <= 1e-12 * m.abs().max(1.0) {
        xs.iter_mut().for_each(|x| *x = 0.0);
    } else {
        xs.iter_mut().for_each(|x| *x = (*x - m) / s);
    }
}

/// Returns a z-normalized copy of a series.
///
/// ```
/// use mda_distance::znorm::z_normalized;
/// let z = z_normalized(&[1.0, 2.0, 3.0]);
/// assert!(z[0] < 0.0 && z[1].abs() < 1e-12 && z[2] > 0.0);
/// ```
pub fn z_normalized(xs: &[f64]) -> Vec<f64> {
    let mut v = xs.to_vec();
    z_normalize_in_place(&mut v);
    v
}

/// Linearly resamples a series to `target_len` points, preserving endpoints.
///
/// Used to "formalize the sequences with different lengths" (Section 4.1 of
/// the paper) from datasets with a fixed native length.
///
/// # Panics
///
/// Panics if `xs` is empty or `target_len` is zero.
pub fn resample(xs: &[f64], target_len: usize) -> Vec<f64> {
    assert!(!xs.is_empty(), "cannot resample an empty series");
    assert!(target_len > 0, "target length must be positive");
    if target_len == 1 {
        return vec![xs[0]];
    }
    if xs.len() == 1 {
        return vec![xs[0]; target_len];
    }
    let scale = (xs.len() - 1) as f64 / (target_len - 1) as f64;
    (0..target_len)
        .map(|i| {
            let t = i as f64 * scale;
            let lo = t.floor() as usize;
            let hi = (lo + 1).min(xs.len() - 1);
            let frac = t - lo as f64;
            xs[lo] * (1.0 - frac) + xs[hi] * frac
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[1.0, 2.0, 3.0]) - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn z_normalized_has_zero_mean_unit_variance() {
        let z = z_normalized(&[3.0, 7.0, 1.0, -4.0, 2.5]);
        assert!(mean(&z).abs() < 1e-12);
        assert!((std_dev(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_maps_to_zeros() {
        assert_eq!(z_normalized(&[5.0, 5.0, 5.0]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn huge_constant_series_maps_to_zeros_not_nan() {
        // Regression: the naive sum overflowed to inf for values near
        // f64::MAX, turning (x - mean) / sigma into NaN.
        for v in [1.0e308, f64::MAX, -1.0e308, 1.0e-308] {
            let z = z_normalized(&[v; 4]);
            assert_eq!(z, vec![0.0; 4], "constant {v} must map to zeros");
        }
    }

    #[test]
    fn mean_of_huge_constant_does_not_overflow() {
        assert_eq!(mean(&[1.0e308; 3]), 1.0e308);
        assert_eq!(std_dev(&[1.0e308; 3]), 0.0);
        assert_eq!(mean(&[f64::MAX, f64::MAX]), f64::MAX);
    }

    #[test]
    fn unrepresentable_variance_maps_to_zeros_not_inf() {
        // ±f64::MAX has a variance beyond f64 range; the output must be
        // the degenerate all-zeros series, never Inf/NaN.
        let z = z_normalized(&[f64::MAX, -f64::MAX]);
        assert!(z.iter().all(|x| x.is_finite()), "{z:?}");
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn near_constant_large_scale_is_not_amplified() {
        // Sigma below numerical resolution at this magnitude: cancellation
        // noise must not be blown up to unit variance.
        let z = z_normalized(&[1.0e9, 1.0e9 + 1.0e-5, 1.0e9 - 1.0e-5]);
        assert!(z.iter().all(|x| x.is_finite()));
        assert_eq!(z, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn signed_zero_series_maps_to_zeros() {
        assert_eq!(z_normalized(&[-0.0, 0.0, -0.0]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn single_element_and_empty_series_are_safe() {
        assert_eq!(z_normalized(&[42.0]), vec![0.0]);
        assert_eq!(z_normalized(&[]), Vec::<f64>::new());
    }

    #[test]
    fn normalization_never_emits_non_finite_across_magnitudes() {
        for exp in (-300i32..=300).step_by(50) {
            let scale = 10.0f64.powi(exp);
            let z = z_normalized(&[scale, 2.0 * scale, -scale, 0.5 * scale]);
            assert!(
                z.iter().all(|x| x.is_finite()),
                "scale 1e{exp} emitted non-finite: {z:?}"
            );
        }
    }

    #[test]
    fn resample_preserves_endpoints() {
        let xs = [0.0, 1.0, 4.0, 9.0];
        for len in [2, 3, 4, 7, 40] {
            let r = resample(&xs, len);
            assert_eq!(r.len(), len);
            assert_eq!(r[0], 0.0);
            assert_eq!(*r.last().unwrap(), 9.0);
        }
    }

    #[test]
    fn resample_identity_length_is_identity() {
        let xs = [0.5, -1.0, 2.0];
        assert_eq!(resample(&xs, 3), xs.to_vec());
    }

    #[test]
    fn resample_linear_interpolation() {
        // Doubling a linear ramp stays on the ramp.
        let xs = [0.0, 2.0];
        let r = resample(&xs, 3);
        assert_eq!(r, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn resample_to_one_takes_first() {
        assert_eq!(resample(&[7.0, 8.0], 1), vec![7.0]);
    }
}
