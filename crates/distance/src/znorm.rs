//! Z-normalization and basic statistics for time series.
//!
//! The UCR-suite methodology (Rakthanmanon et al., the paper's reference
//! \[24\]) z-normalizes every subsequence before distance computation; the
//! datasets crate uses these utilities when formalizing series "with
//! different lengths" as the paper's experimental setup does.

/// Mean of a slice. Returns `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation. Returns `0.0` for slices shorter than 1.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Z-normalizes a series in place: zero mean, unit variance.
///
/// A constant series (σ = 0) is mapped to all zeros rather than dividing by
/// zero, matching UCR-suite practice.
pub fn z_normalize_in_place(xs: &mut [f64]) {
    let m = mean(xs);
    let s = std_dev(xs);
    if s < 1e-12 {
        xs.iter_mut().for_each(|x| *x = 0.0);
    } else {
        xs.iter_mut().for_each(|x| *x = (*x - m) / s);
    }
}

/// Returns a z-normalized copy of a series.
///
/// ```
/// use mda_distance::znorm::z_normalized;
/// let z = z_normalized(&[1.0, 2.0, 3.0]);
/// assert!(z[0] < 0.0 && z[1].abs() < 1e-12 && z[2] > 0.0);
/// ```
pub fn z_normalized(xs: &[f64]) -> Vec<f64> {
    let mut v = xs.to_vec();
    z_normalize_in_place(&mut v);
    v
}

/// Linearly resamples a series to `target_len` points, preserving endpoints.
///
/// Used to "formalize the sequences with different lengths" (Section 4.1 of
/// the paper) from datasets with a fixed native length.
///
/// # Panics
///
/// Panics if `xs` is empty or `target_len` is zero.
pub fn resample(xs: &[f64], target_len: usize) -> Vec<f64> {
    assert!(!xs.is_empty(), "cannot resample an empty series");
    assert!(target_len > 0, "target length must be positive");
    if target_len == 1 {
        return vec![xs[0]];
    }
    if xs.len() == 1 {
        return vec![xs[0]; target_len];
    }
    let scale = (xs.len() - 1) as f64 / (target_len - 1) as f64;
    (0..target_len)
        .map(|i| {
            let t = i as f64 * scale;
            let lo = t.floor() as usize;
            let hi = (lo + 1).min(xs.len() - 1);
            let frac = t - lo as f64;
            xs[lo] * (1.0 - frac) + xs[hi] * frac
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[1.0, 2.0, 3.0]) - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn z_normalized_has_zero_mean_unit_variance() {
        let z = z_normalized(&[3.0, 7.0, 1.0, -4.0, 2.5]);
        assert!(mean(&z).abs() < 1e-12);
        assert!((std_dev(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_maps_to_zeros() {
        assert_eq!(z_normalized(&[5.0, 5.0, 5.0]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn resample_preserves_endpoints() {
        let xs = [0.0, 1.0, 4.0, 9.0];
        for len in [2, 3, 4, 7, 40] {
            let r = resample(&xs, len);
            assert_eq!(r.len(), len);
            assert_eq!(r[0], 0.0);
            assert_eq!(*r.last().unwrap(), 9.0);
        }
    }

    #[test]
    fn resample_identity_length_is_identity() {
        let xs = [0.5, -1.0, 2.0];
        assert_eq!(resample(&xs, 3), xs.to_vec());
    }

    #[test]
    fn resample_linear_interpolation() {
        // Doubling a linear ramp stays on the ramp.
        let xs = [0.0, 2.0];
        let r = resample(&xs, 3);
        assert_eq!(r, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn resample_to_one_takes_first() {
        assert_eq!(resample(&[7.0, 8.0], 1), vec![7.0]);
    }
}
