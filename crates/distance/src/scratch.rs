//! Reusable dynamic-programming scratch buffers.
//!
//! The two-row DP kernels ([`crate::Dtw::distance`] and friends) need two
//! `n + 1`-element rows per evaluation. Allocating them per pair is invisible
//! for a single distance call but dominates small-kernel batch workloads
//! (millions of pairs in a motif search). A [`DpScratch`] owns the rows and
//! hands them out re-initialized, so a worker thread can stream an arbitrary
//! number of pairs through one pair of allocations.

/// Reusable two-row DP buffer.
///
/// ```
/// use mda_distance::{Dtw, DpScratch};
/// # fn main() -> Result<(), mda_distance::DistanceError> {
/// let dtw = Dtw::new();
/// let mut scratch = DpScratch::new();
/// // Both calls reuse the same backing allocations.
/// let a = dtw.distance_with(&[0.0, 1.0, 2.0], &[0.0, 1.0, 2.0], &mut scratch)?;
/// let b = dtw.distance_with(&[0.0, 1.0], &[2.0, 3.0], &mut scratch)?;
/// assert_eq!(a, 0.0);
/// assert_eq!(b, 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct DpScratch {
    prev: Vec<f64>,
    curr: Vec<f64>,
}

impl DpScratch {
    /// An empty scratch; rows grow on first use and are retained afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-sized for sequences up to `n` elements.
    pub fn with_capacity(n: usize) -> Self {
        DpScratch {
            prev: Vec::with_capacity(n + 1),
            curr: Vec::with_capacity(n + 1),
        }
    }

    /// Two rows of `len` elements, every cell set to `fill`. Reuses the
    /// backing allocations; only grows when `len` exceeds the capacity.
    pub fn rows(&mut self, len: usize, fill: f64) -> (&mut Vec<f64>, &mut Vec<f64>) {
        self.prev.clear();
        self.prev.resize(len, fill);
        self.curr.clear();
        self.curr.resize(len, fill);
        (&mut self.prev, &mut self.curr)
    }

    /// Current row capacity (elements held without reallocating).
    pub fn capacity(&self) -> usize {
        self.prev.capacity().min(self.curr.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_reinitialized_each_time() {
        let mut s = DpScratch::new();
        {
            let (prev, curr) = s.rows(4, f64::INFINITY);
            prev[0] = 0.0;
            curr[3] = 7.0;
        }
        let (prev, curr) = s.rows(4, f64::INFINITY);
        assert!(prev.iter().all(|v| v.is_infinite()));
        assert!(curr.iter().all(|v| v.is_infinite()));
    }

    #[test]
    fn capacity_is_retained_across_smaller_requests() {
        let mut s = DpScratch::new();
        s.rows(100, 0.0);
        let cap = s.capacity();
        s.rows(5, 0.0);
        assert_eq!(
            s.capacity(),
            cap,
            "shrinking a request must not shrink capacity"
        );
    }

    #[test]
    fn with_capacity_presizes() {
        let s = DpScratch::with_capacity(64);
        assert!(s.capacity() >= 65);
    }
}
