//! Reusable dynamic-programming scratch buffers.
//!
//! The DP kernels ([`crate::Dtw::distance`] and friends) need a handful of
//! working rows per evaluation. Allocating them per pair is invisible for a
//! single distance call but dominates small-kernel batch workloads (millions
//! of pairs in a motif search). A [`DpScratch`] owns every working buffer the
//! kernels and the pruning cascade need and hands them out re-initialized, so
//! a worker thread can stream an arbitrary number of pairs through one set of
//! allocations:
//!
//! * two (row-major early abandoning) or three (anti-diagonal wavefront)
//!   DP rows,
//! * a reversed copy of the second series, so wavefront kernels read both
//!   series forward along an anti-diagonal,
//! * the **cached query envelope** of the UCR pruning cascade: the upper and
//!   lower Sakoe–Chiba envelope of the query is computed once (O(n), Lemire's
//!   monotonic deque) and revalidated with a cheap bitwise compare, so a
//!   search evaluating thousands of windows against one query never
//!   re-envelopes it,
//! * candidate-envelope and deque buffers for the O(n) envelope pass itself.

/// Reusable DP buffer set shared by the kernels and the pruning cascade.
///
/// ```
/// use mda_distance::{Dtw, DpScratch};
/// # fn main() -> Result<(), mda_distance::DistanceError> {
/// let dtw = Dtw::new();
/// let mut scratch = DpScratch::new();
/// // Both calls reuse the same backing allocations.
/// let a = dtw.distance_with(&[0.0, 1.0, 2.0], &[0.0, 1.0, 2.0], &mut scratch)?;
/// let b = dtw.distance_with(&[0.0, 1.0], &[2.0, 3.0], &mut scratch)?;
/// assert_eq!(a, 0.0);
/// assert_eq!(b, 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct DpScratch {
    pub(crate) prev: Vec<f64>,
    pub(crate) curr: Vec<f64>,
    /// Third row for the anti-diagonal wavefront kernels (diagonal `k - 2`).
    pub(crate) diag: Vec<f64>,
    /// Reversed copy of the second series for wavefront kernels.
    pub(crate) rev: Vec<f64>,
    /// Cached query envelope: upper/lower bounds, the query it was built
    /// from (bitwise key) and the band radius it was built for.
    pub(crate) qe_upper: Vec<f64>,
    pub(crate) qe_lower: Vec<f64>,
    pub(crate) qe_key: Vec<f64>,
    pub(crate) qe_radius: usize,
    pub(crate) qe_valid: bool,
    /// Candidate envelope buffers (recomputed per candidate, reused).
    pub(crate) ce_upper: Vec<f64>,
    pub(crate) ce_lower: Vec<f64>,
    /// Index deque for the Lemire monotonic-deque envelope pass.
    pub(crate) deque: Vec<usize>,
}

impl DpScratch {
    /// An empty scratch; buffers grow on first use and are retained
    /// afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-sized for sequences up to `n` elements.
    pub fn with_capacity(n: usize) -> Self {
        DpScratch {
            prev: Vec::with_capacity(n + 2),
            curr: Vec::with_capacity(n + 2),
            diag: Vec::with_capacity(n + 2),
            rev: Vec::with_capacity(n),
            ..Self::default()
        }
    }

    /// Two rows of `len` elements, every cell set to `fill`. Reuses the
    /// backing allocations; only grows when `len` exceeds the capacity.
    pub fn rows(&mut self, len: usize, fill: f64) -> (&mut Vec<f64>, &mut Vec<f64>) {
        self.prev.clear();
        self.prev.resize(len, fill);
        self.curr.clear();
        self.curr.resize(len, fill);
        (&mut self.prev, &mut self.curr)
    }

    /// Three wavefront diagonals of `len` elements plus a reversed copy of
    /// `q`, every diagonal cell set to `fill`.
    pub(crate) fn wavefront(
        &mut self,
        len: usize,
        fill: f64,
        q: &[f64],
    ) -> ([&mut Vec<f64>; 3], &[f64]) {
        for buf in [&mut self.prev, &mut self.curr, &mut self.diag] {
            buf.clear();
            buf.resize(len, fill);
        }
        self.rev.clear();
        self.rev.extend(q.iter().rev());
        ([&mut self.prev, &mut self.curr, &mut self.diag], &self.rev)
    }

    /// `true` when the cached query envelope was built from exactly this
    /// query (bitwise) at exactly this band radius.
    pub(crate) fn query_envelope_matches(&self, q: &[f64], r: usize) -> bool {
        self.qe_valid
            && self.qe_radius == r
            && self.qe_key.len() == q.len()
            && self
                .qe_key
                .iter()
                .zip(q)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Invalidates the cached query envelope (e.g. after the buffers were
    /// borrowed for something else).
    pub fn invalidate_envelope_cache(&mut self) {
        self.qe_valid = false;
    }

    /// Current row capacity (elements held without reallocating).
    pub fn capacity(&self) -> usize {
        self.prev.capacity().min(self.curr.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_reinitialized_each_time() {
        let mut s = DpScratch::new();
        {
            let (prev, curr) = s.rows(4, f64::INFINITY);
            prev[0] = 0.0;
            curr[3] = 7.0;
        }
        let (prev, curr) = s.rows(4, f64::INFINITY);
        assert!(prev.iter().all(|v| v.is_infinite()));
        assert!(curr.iter().all(|v| v.is_infinite()));
    }

    #[test]
    fn capacity_is_retained_across_smaller_requests() {
        let mut s = DpScratch::new();
        s.rows(100, 0.0);
        let cap = s.capacity();
        s.rows(5, 0.0);
        assert_eq!(
            s.capacity(),
            cap,
            "shrinking a request must not shrink capacity"
        );
    }

    #[test]
    fn with_capacity_presizes() {
        let s = DpScratch::with_capacity(64);
        assert!(s.capacity() >= 65);
    }

    #[test]
    fn wavefront_reinitializes_and_reverses() {
        let mut s = DpScratch::new();
        {
            let ([d0, _, _], rev) = s.wavefront(5, f64::INFINITY, &[1.0, 2.0, 3.0]);
            assert_eq!(rev, &[3.0, 2.0, 1.0]);
            d0[0] = 0.0;
        }
        let ([d0, d1, d2], _) = s.wavefront(5, f64::INFINITY, &[4.0]);
        assert!(d0.iter().all(|v| v.is_infinite()));
        assert!(d1.iter().all(|v| v.is_infinite()));
        assert!(d2.iter().all(|v| v.is_infinite()));
    }

    #[test]
    fn envelope_cache_matches_bitwise() {
        let mut s = DpScratch::new();
        assert!(!s.query_envelope_matches(&[1.0, 2.0], 2));
        s.qe_key = vec![1.0, 2.0];
        s.qe_radius = 2;
        s.qe_valid = true;
        assert!(s.query_envelope_matches(&[1.0, 2.0], 2));
        assert!(!s.query_envelope_matches(&[1.0, 2.0], 3), "radius mismatch");
        assert!(!s.query_envelope_matches(&[1.0, 2.5], 2), "value mismatch");
        assert!(!s.query_envelope_matches(&[1.0], 2), "length mismatch");
        s.invalidate_envelope_cache();
        assert!(!s.query_envelope_matches(&[1.0, 2.0], 2));
    }
}
