//! Input validation shared by the mining drivers.
//!
//! The DP kernels themselves are IEEE-754-total: a NaN or infinity flows
//! through `min`/`abs` arithmetic without panicking and yields a NaN/∞
//! distance. The *drivers* (search, motif, k-NN, k-medoids) are not: they
//! rank windows by comparing bounds and distances, and a NaN there used to
//! either panic (`partial_cmp(..).expect(..)`) or poison every comparison so
//! the driver fabricated a nonsense answer. Rejecting non-finite input at the
//! driver boundary turns both failure modes into a typed
//! [`DistanceError::InvalidParameter`].

use crate::error::DistanceError;

/// Returns [`DistanceError::InvalidParameter`] naming `name` if any element
/// of `xs` is NaN or infinite.
pub(crate) fn ensure_finite(name: &'static str, xs: &[f64]) -> Result<(), DistanceError> {
    if let Some(i) = xs.iter().position(|v| !v.is_finite()) {
        return Err(DistanceError::InvalidParameter {
            name,
            reason: format!("element {i} is {}; every element must be finite", xs[i]),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_slices_pass() {
        assert!(ensure_finite("xs", &[]).is_ok());
        assert!(ensure_finite("xs", &[0.0, -1.5, f64::MAX, f64::MIN_POSITIVE]).is_ok());
    }

    #[test]
    fn non_finite_elements_are_named() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = ensure_finite("query", &[0.0, bad, 1.0]).unwrap_err();
            match err {
                DistanceError::InvalidParameter { name, reason } => {
                    assert_eq!(name, "query");
                    assert!(reason.contains("element 1"), "reason: {reason}");
                }
                other => panic!("expected InvalidParameter, got {other:?}"),
            }
        }
    }
}
