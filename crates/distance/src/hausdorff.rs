//! Hausdorff distance (HauD), Eq. 5 of the paper.
//!
//! The circuit of Fig. 2(d2) computes the *directed* Hausdorff distance: for
//! each `Q[j]`, the column of PEs finds `min_i w[i][j] * |P[i] - Q[j]|`, and
//! the final diode stage takes the maximum over `j`:
//!
//! ```text
//! HauD(P, Q) = max_j min_i  w[i][j] * |P[i] - Q[j]|
//! ```
//!
//! [`Hausdorff`] defaults to this directed form to match the hardware, and
//! also offers the symmetric variant `max(h(P→Q), h(Q→P))` commonly used in
//! the literature.

use crate::error::DistanceError;
use crate::weights::Weights;
use crate::{Distance, DistanceKind};

/// Which directed component(s) of the Hausdorff distance to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    /// `max_j min_i w|P[i] - Q[j]|` — how far the worst point of `Q` is from
    /// `P`. This is what the accelerator's PE connection (Fig. 2(d2))
    /// computes.
    #[default]
    QToP,
    /// `max_i min_j w|P[i] - Q[j]|`.
    PToQ,
    /// `max` of both directed distances (the classical symmetric Hausdorff).
    Symmetric,
}

/// Hausdorff distance between two series viewed as point sets.
///
/// ```
/// use mda_distance::{Hausdorff, Direction};
/// # fn main() -> Result<(), mda_distance::DistanceError> {
/// let h = Hausdorff::new().with_direction(Direction::Symmetric);
/// // Every point of one set is within 0.5 of the other.
/// let d = h.distance(&[0.0, 1.0, 2.0], &[0.5, 1.5, 2.5])?;
/// assert_eq!(d, 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Hausdorff {
    direction: Direction,
    weights: Weights,
}

impl Hausdorff {
    /// Directed (`Q -> P`) Hausdorff distance with uniform weights, matching
    /// the accelerator circuit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the directed or symmetric variant.
    #[must_use]
    pub fn with_direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// Sets pairwise weights (weighted HauD, Lu et al.).
    #[must_use]
    pub fn with_weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// The configured direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// `min_i w[i][j] |P[i] - Q[j]|` for a fixed `j` — the output of one PE
    /// column in Fig. 2(d2) after the converter stage.
    fn min_over_p(&self, p: &[f64], q: &[f64], j: usize) -> f64 {
        (0..p.len())
            .map(|i| self.weights.pair(i, j) * (p[i] - q[j]).abs())
            .fold(f64::INFINITY, f64::min)
    }

    /// `min_j w[i][j] |P[i] - Q[j]|` for a fixed `i`.
    fn min_over_q(&self, p: &[f64], q: &[f64], i: usize) -> f64 {
        (0..q.len())
            .map(|j| self.weights.pair(i, j) * (p[i] - q[j]).abs())
            .fold(f64::INFINITY, f64::min)
    }

    /// Computes the Hausdorff distance.
    ///
    /// # Errors
    ///
    /// Returns [`DistanceError::EmptySequence`] for empty inputs or
    /// [`DistanceError::WeightShape`] on weight-shape mismatch.
    pub fn distance(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        if p.is_empty() || q.is_empty() {
            return Err(DistanceError::EmptySequence);
        }
        self.weights.check_pair_shape(p.len(), q.len())?;

        let q_to_p = || {
            (0..q.len())
                .map(|j| self.min_over_p(p, q, j))
                .fold(0.0f64, f64::max)
        };
        let p_to_q = || {
            (0..p.len())
                .map(|i| self.min_over_q(p, q, i))
                .fold(0.0f64, f64::max)
        };
        Ok(match self.direction {
            Direction::QToP => q_to_p(),
            Direction::PToQ => p_to_q(),
            Direction::Symmetric => q_to_p().max(p_to_q()),
        })
    }

    /// The per-column minima `min_i w|P[i] - Q[j]|` for every `j` — the
    /// intermediate values at the converter outputs of Fig. 2(d2). Exposed
    /// so the analog model can be validated stage-by-stage.
    ///
    /// # Errors
    ///
    /// Same as [`Hausdorff::distance`].
    pub fn column_minima(&self, p: &[f64], q: &[f64]) -> Result<Vec<f64>, DistanceError> {
        if p.is_empty() || q.is_empty() {
            return Err(DistanceError::EmptySequence);
        }
        self.weights.check_pair_shape(p.len(), q.len())?;
        Ok((0..q.len()).map(|j| self.min_over_p(p, q, j)).collect())
    }
}

impl Distance for Hausdorff {
    fn evaluate(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        self.distance(p, q)
    }

    fn kind(&self) -> DistanceKind {
        DistanceKind::Hausdorff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_distance_is_zero_all_directions() {
        let p = [0.5, -1.0, 3.0];
        for dir in [Direction::QToP, Direction::PToQ, Direction::Symmetric] {
            let h = Hausdorff::new().with_direction(dir);
            assert_eq!(h.distance(&p, &p).unwrap(), 0.0);
        }
    }

    #[test]
    fn known_asymmetric_example() {
        // P = {0}, Q = {0, 10}: every q must reach P -> farthest is 10.
        let h_qp = Hausdorff::new().distance(&[0.0], &[0.0, 10.0]).unwrap();
        assert_eq!(h_qp, 10.0);
        // P -> Q: the single p=0 is distance 0 from q=0.
        let h_pq = Hausdorff::new()
            .with_direction(Direction::PToQ)
            .distance(&[0.0], &[0.0, 10.0])
            .unwrap();
        assert_eq!(h_pq, 0.0);
    }

    #[test]
    fn symmetric_is_max_of_directed() {
        let p = [0.0, 2.0, 5.0];
        let q = [1.0, 6.5];
        let qp = Hausdorff::new().distance(&p, &q).unwrap();
        let pq = Hausdorff::new()
            .with_direction(Direction::PToQ)
            .distance(&p, &q)
            .unwrap();
        let sym = Hausdorff::new()
            .with_direction(Direction::Symmetric)
            .distance(&p, &q)
            .unwrap();
        assert_eq!(sym, qp.max(pq));
    }

    #[test]
    fn symmetric_variant_is_symmetric() {
        let p = [0.3, 1.1, -0.4, 2.0];
        let q = [0.0, 1.5];
        let h = Hausdorff::new().with_direction(Direction::Symmetric);
        assert_eq!(h.distance(&p, &q).unwrap(), h.distance(&q, &p).unwrap());
    }

    #[test]
    fn subset_has_zero_directed_distance() {
        // Q subset of P => every q is at distance 0 from P.
        let p = [0.0, 1.0, 2.0, 3.0];
        let q = [1.0, 3.0];
        assert_eq!(Hausdorff::new().distance(&p, &q).unwrap(), 0.0);
    }

    #[test]
    fn column_minima_match_definition() {
        let p = [0.0, 4.0];
        let q = [1.0, 3.5, 10.0];
        let mins = Hausdorff::new().column_minima(&p, &q).unwrap();
        assert_eq!(mins, vec![1.0, 0.5, 6.0]);
        // distance = max of column minima
        assert_eq!(Hausdorff::new().distance(&p, &q).unwrap(), 6.0);
    }

    #[test]
    fn weights_scale_pointwise_costs() {
        let p = [0.0];
        let q = [2.0];
        let w = Weights::per_pair(1, 1, vec![0.5]).unwrap();
        let d = Hausdorff::new().with_weights(w).distance(&p, &q).unwrap();
        assert_eq!(d, 1.0);
    }

    #[test]
    fn supports_unequal_lengths() {
        let p = [0.0, 1.0, 2.0, 3.0, 4.0];
        let q = [2.2];
        let d = Hausdorff::new().distance(&p, &q).unwrap();
        assert!((d - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            Hausdorff::new().distance(&[], &[0.0]).unwrap_err(),
            DistanceError::EmptySequence
        );
    }
}
