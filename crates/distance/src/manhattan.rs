//! Manhattan distance (MD), Eq. 7 of the paper, and the Euclidean distance
//! used in the label of Fig. 5(f).
//!
//! ```text
//! MD(P, Q) = sum_i w[i] * |P[i] - Q[i]|     (n == m)
//! ```

use crate::error::DistanceError;
use crate::weights::Weights;
use crate::{Distance, DistanceKind};

/// Manhattan (L1) distance over equal-length series.
///
/// ```
/// use mda_distance::Manhattan;
/// # fn main() -> Result<(), mda_distance::DistanceError> {
/// assert_eq!(Manhattan::new().distance(&[0.0, 2.0], &[1.0, 0.5])?, 2.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Manhattan {
    weights: Weights,
}

impl Manhattan {
    /// Unweighted Manhattan distance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets per-position weights (weighted MD, Perlibakas). On the
    /// accelerator these are the `M0/Mk` memristor ratios of the row
    /// structure's analog adder (Fig. 1).
    #[must_use]
    pub fn with_weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// Per-position contributions `w[i] * |P[i] - Q[i]|` — the row-structure
    /// PE outputs before the analog adder.
    ///
    /// # Errors
    ///
    /// Returns [`DistanceError::LengthMismatch`] for unequal lengths,
    /// [`DistanceError::EmptySequence`] for empty inputs, or
    /// [`DistanceError::WeightShape`] on weight-shape mismatch.
    pub fn contributions(&self, p: &[f64], q: &[f64]) -> Result<Vec<f64>, DistanceError> {
        if p.len() != q.len() {
            return Err(DistanceError::LengthMismatch {
                left: p.len(),
                right: q.len(),
            });
        }
        if p.is_empty() {
            return Err(DistanceError::EmptySequence);
        }
        self.weights.check_element_shape(p.len())?;
        Ok(p.iter()
            .zip(q)
            .enumerate()
            .map(|(i, (a, b))| self.weights.element(i) * (a - b).abs())
            .collect())
    }

    /// Computes the Manhattan distance.
    ///
    /// # Errors
    ///
    /// Same as [`Manhattan::contributions`].
    pub fn distance(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        Ok(self.contributions(p, q)?.iter().sum())
    }
}

impl Distance for Manhattan {
    fn evaluate(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        self.distance(p, q)
    }

    fn kind(&self) -> DistanceKind {
        DistanceKind::Manhattan
    }
}

/// Euclidean (L2) distance over equal-length series.
///
/// Not one of the six accelerator configurations, but Fig. 5(f) of the paper
/// is captioned "Euclidean distance", and ED is the standard baseline in the
/// UCR-suite literature the paper builds on, so the mining workloads support
/// it.
///
/// ```
/// use mda_distance::Euclidean;
/// # fn main() -> Result<(), mda_distance::DistanceError> {
/// assert_eq!(Euclidean::new().distance(&[0.0, 0.0], &[3.0, 4.0])?, 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Euclidean {
    weights: Weights,
}

impl Euclidean {
    /// Unweighted Euclidean distance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets per-position weights (applied to squared differences).
    #[must_use]
    pub fn with_weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// Computes the Euclidean distance.
    ///
    /// # Errors
    ///
    /// Returns [`DistanceError::LengthMismatch`] for unequal lengths,
    /// [`DistanceError::EmptySequence`] for empty inputs, or
    /// [`DistanceError::WeightShape`] on weight-shape mismatch.
    pub fn distance(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        Ok(self.squared(p, q)?.sqrt())
    }

    /// The squared Euclidean distance — cheaper, order-preserving, and what
    /// early-abandoning search loops accumulate.
    ///
    /// # Errors
    ///
    /// Same as [`Euclidean::distance`].
    pub fn squared(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        if p.len() != q.len() {
            return Err(DistanceError::LengthMismatch {
                left: p.len(),
                right: q.len(),
            });
        }
        if p.is_empty() {
            return Err(DistanceError::EmptySequence);
        }
        self.weights.check_element_shape(p.len())?;
        Ok(p.iter()
            .zip(q)
            .enumerate()
            .map(|(i, (a, b))| self.weights.element(i) * (a - b) * (a - b))
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_known_values() {
        assert_eq!(
            Manhattan::new()
                .distance(&[1.0, 2.0, 3.0], &[2.0, 4.0, 0.0])
                .unwrap(),
            1.0 + 2.0 + 3.0
        );
    }

    #[test]
    fn manhattan_metric_properties() {
        let a = [0.1, 0.5, -1.0];
        let b = [1.0, 0.0, 0.0];
        let c = [0.0, 0.0, 0.0];
        let md = Manhattan::new();
        // identity
        assert_eq!(md.distance(&a, &a).unwrap(), 0.0);
        // symmetry
        assert_eq!(md.distance(&a, &b).unwrap(), md.distance(&b, &a).unwrap());
        // triangle inequality
        let ab = md.distance(&a, &b).unwrap();
        let bc = md.distance(&b, &c).unwrap();
        let ac = md.distance(&a, &c).unwrap();
        assert!(ac <= ab + bc + 1e-12);
    }

    #[test]
    fn weighted_manhattan() {
        let w = Weights::per_element(vec![2.0, 0.0]).unwrap();
        let d = Manhattan::new()
            .with_weights(w)
            .distance(&[0.0, 0.0], &[1.0, 5.0])
            .unwrap();
        assert_eq!(d, 2.0);
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(matches!(
            Manhattan::new().distance(&[0.0], &[0.0, 1.0]),
            Err(DistanceError::LengthMismatch { left: 1, right: 2 })
        ));
        assert!(matches!(
            Euclidean::new().distance(&[0.0], &[0.0, 1.0]),
            Err(DistanceError::LengthMismatch { left: 1, right: 2 })
        ));
    }

    #[test]
    fn euclidean_pythagoras() {
        assert_eq!(
            Euclidean::new().distance(&[0.0, 0.0], &[3.0, 4.0]).unwrap(),
            5.0
        );
        assert_eq!(
            Euclidean::new().squared(&[0.0, 0.0], &[3.0, 4.0]).unwrap(),
            25.0
        );
    }

    #[test]
    fn euclidean_below_manhattan() {
        // L2 <= L1 always.
        let p = [0.3, -0.7, 1.1, 0.0];
        let q = [0.0, 0.5, 1.0, -0.4];
        let l1 = Manhattan::new().distance(&p, &q).unwrap();
        let l2 = Euclidean::new().distance(&p, &q).unwrap();
        assert!(l2 <= l1 + 1e-12);
    }

    #[test]
    fn contributions_sum_to_distance() {
        let p = [0.5, 1.5, -0.5];
        let q = [0.0, 2.0, 0.0];
        let md = Manhattan::new();
        let c = md.contributions(&p, &q).unwrap();
        assert_eq!(c.iter().sum::<f64>(), md.distance(&p, &q).unwrap());
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            Manhattan::new().distance(&[], &[]).unwrap_err(),
            DistanceError::EmptySequence
        );
        assert_eq!(
            Euclidean::new().distance(&[], &[]).unwrap_err(),
            DistanceError::EmptySequence
        );
    }
}
