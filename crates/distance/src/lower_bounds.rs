//! Lower bounds for DTW — the software optimizations of Rakthanmanon et al.
//! (the paper's reference \[24\]) that the accelerator competes against.
//!
//! The two classic cascading bounds are provided:
//!
//! * [`lb_kim`] — O(1) bound from first/last elements;
//! * [`lb_keogh`] — O(n) bound from the Sakoe–Chiba envelope.
//!
//! Both are *admissible*: they never exceed the true banded DTW distance, so
//! a search can safely prune any candidate whose bound already exceeds the
//! best-so-far. Envelopes are computed in O(n) with Lemire's monotonic-deque
//! streaming min/max (independent of the band radius), and
//! [`cascading_dtw_with`] caches the query envelope inside [`DpScratch`] so a
//! search evaluating thousands of windows against one query envelopes it
//! exactly once. The `kernels` and `lower_bounds` benches measure the pruning
//! power that the paper's CPU baseline relies on.

use std::collections::VecDeque;

use crate::dtw::{Band, Dtw};
use crate::error::DistanceError;
use crate::scratch::DpScratch;

/// LB_Kim (simplified, as used by the UCR suite): the distance contributed by
/// the first and last aligned pairs, which every warping path must pay.
///
/// Uses the L1 point cost to match the paper's DTW formulation (Eq. 2 uses
/// `|Pi - Qj|`).
///
/// # Errors
///
/// Returns [`DistanceError::EmptySequence`] if either input is empty.
pub fn lb_kim(p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
    if p.is_empty() || q.is_empty() {
        return Err(DistanceError::EmptySequence);
    }
    let first = (p[0] - q[0]).abs();
    if p.len() == 1 && q.len() == 1 {
        // The first and last aligned pair are the same cell; count it once.
        return Ok(first);
    }
    let last = (p[p.len() - 1] - q[q.len() - 1]).abs();
    Ok(first + last)
}

/// One Lemire streaming min/max pass: `out[i] = max(q[i-r ..= i+r])` when
/// `max` is true, `min` otherwise. O(n) amortized — every index enters and
/// leaves the monotonic deque at most once. `deque` is a reusable index
/// buffer; `out` must already have length `q.len()`.
///
/// The returned extremum is always an element of the window, so ties between
/// `0.0` and `-0.0` may resolve to either sign; envelopes are only ever used
/// in comparisons, where the two compare equal.
fn lemire_pass(q: &[f64], r: usize, out: &mut [f64], deque: &mut Vec<usize>, max: bool) {
    let n = q.len();
    debug_assert_eq!(out.len(), n);
    deque.clear();
    let mut head = 0usize;
    let mut next = 0usize;
    for (i, slot) in out.iter_mut().enumerate() {
        // Admit every index that enters the window ending at i + r,
        // evicting dominated entries from the back.
        let hi = (i + r).min(n - 1);
        while next <= hi {
            let x = q[next];
            while deque.len() > head {
                let back = q[deque[deque.len() - 1]];
                let dominated = if max { back <= x } else { back >= x };
                if !dominated {
                    break;
                }
                deque.pop();
            }
            deque.push(next);
            next += 1;
        }
        // Expire indices that fell out of the window starting at i - r.
        while deque[head] + r < i {
            head += 1;
        }
        *slot = q[deque[head]];
    }
}

/// Fills `upper`/`lower` with the band-`r` Sakoe–Chiba envelope of `q` using
/// two Lemire passes over a shared index deque.
pub(crate) fn envelope_into(
    q: &[f64],
    r: usize,
    upper: &mut Vec<f64>,
    lower: &mut Vec<f64>,
    deque: &mut Vec<usize>,
) {
    let n = q.len();
    upper.clear();
    upper.resize(n, 0.0);
    lower.clear();
    lower.resize(n, 0.0);
    lemire_pass(q, r, upper, deque, true);
    lemire_pass(q, r, lower, deque, false);
}

/// The upper/lower Sakoe–Chiba envelope of a series for band radius `r`:
/// `upper[i] = max(q[i-r ..= i+r])`, `lower[i] = min(q[i-r ..= i+r])`.
///
/// Computed in O(n) with Lemire's monotonic deque regardless of `r` (the
/// previous implementation folded over each window, costing O(n·r)).
///
/// # Errors
///
/// Returns [`DistanceError::EmptySequence`] if the input is empty.
pub fn envelope(q: &[f64], r: usize) -> Result<(Vec<f64>, Vec<f64>), DistanceError> {
    if q.is_empty() {
        return Err(DistanceError::EmptySequence);
    }
    let mut upper = Vec::new();
    let mut lower = Vec::new();
    envelope_into(q, r, &mut upper, &mut lower, &mut Vec::new());
    Ok((upper, lower))
}

/// The LB_Keogh sum for `p` against a precomputed envelope: the L1 cost of
/// the parts of `p` that fall outside `[lower[i], upper[i]]`.
///
/// This is the inner loop shared by [`lb_keogh`] and the cascaded search
/// path, split out so callers with a cached envelope skip the envelope pass.
pub fn lb_keogh_envelope(p: &[f64], upper: &[f64], lower: &[f64]) -> f64 {
    p.iter()
        .zip(upper.iter().zip(lower))
        .map(|(&x, (&u, &l))| {
            if x > u {
                x - u
            } else if x < l {
                l - x
            } else {
                0.0
            }
        })
        .sum()
}

/// LB_Keogh: the L1 cost of the parts of `p` that fall outside the band-`r`
/// envelope of `q`. Admissible for equal-length banded DTW with L1 point
/// costs (in both directions: enveloping `q` and summing over `p`, or the
/// reverse, each lower-bound the same banded DTW).
///
/// # Errors
///
/// Returns [`DistanceError::LengthMismatch`] for unequal lengths or
/// [`DistanceError::EmptySequence`] for empty inputs.
pub fn lb_keogh(p: &[f64], q: &[f64], r: usize) -> Result<f64, DistanceError> {
    if p.len() != q.len() {
        return Err(DistanceError::LengthMismatch {
            left: p.len(),
            right: q.len(),
        });
    }
    let (upper, lower) = envelope(q, r)?;
    Ok(lb_keogh_envelope(p, &upper, &lower))
}

/// Ensures the scratch's cached query envelope describes exactly `q` at band
/// radius `r`, rebuilding it (two O(n) Lemire passes) only on a cache miss.
/// The cache key is the bitwise contents of `q` plus `r`, so reuse across
/// thousands of search windows costs one slice compare per call.
///
/// # Errors
///
/// Returns [`DistanceError::EmptySequence`] if `q` is empty.
pub(crate) fn ensure_query_envelope(
    scratch: &mut DpScratch,
    q: &[f64],
    r: usize,
) -> Result<(), DistanceError> {
    if q.is_empty() {
        return Err(DistanceError::EmptySequence);
    }
    if scratch.query_envelope_matches(q, r) {
        return Ok(());
    }
    scratch.qe_valid = false;
    scratch.qe_upper.clear();
    scratch.qe_upper.resize(q.len(), 0.0);
    scratch.qe_lower.clear();
    scratch.qe_lower.resize(q.len(), 0.0);
    lemire_pass(q, r, &mut scratch.qe_upper, &mut scratch.deque, true);
    lemire_pass(q, r, &mut scratch.qe_lower, &mut scratch.deque, false);
    scratch.qe_key.clear();
    scratch.qe_key.extend_from_slice(q);
    scratch.qe_radius = r;
    scratch.qe_valid = true;
    Ok(())
}

/// The element [`lemire_pass`] selects for a window: the *latest*
/// occurrence of the extremum. Split out publicly so incremental envelope
/// maintainers (the streaming tier) can recompute window-clamped border
/// entries with exactly the deque's tie-breaking — equal values keep the
/// later index, so `0.0`/`-0.0` ties resolve to the same bits.
pub fn slice_extremum(xs: &[f64], max: bool) -> f64 {
    debug_assert!(!xs.is_empty());
    let mut cur = xs[0];
    for &x in &xs[1..] {
        let dominated = if max { cur <= x } else { cur >= x };
        if dominated {
            cur = x;
        }
    }
    cur
}

/// Streaming monotonic deque over an absolute-indexed point stream: after
/// pushing index `i`, [`extremum`](Self::extremum) is the max (or min) of
/// the last `span` points — the Lemire pass of [`envelope`] restated as an
/// O(1)-amortized online structure.
///
/// This is the public incremental-envelope hook for the streaming tier:
/// with `span = 2r + 1`, reading the extremum after pushing index `c + r`
/// yields the Sakoe–Chiba envelope entry centred at `c`, bit-for-bit the
/// value the batch pass computes (same domination rule, so ties select the
/// same element; see [`slice_extremum`]).
#[derive(Debug, Clone)]
pub struct SlidingExtremum {
    deque: VecDeque<(u64, f64)>,
    span: u64,
    max: bool,
}

impl SlidingExtremum {
    /// A sliding **max** over the last `span` pushed points.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero.
    pub fn new_max(span: usize) -> Self {
        assert!(span > 0, "span must be positive");
        SlidingExtremum {
            deque: VecDeque::new(),
            span: span as u64,
            max: true,
        }
    }

    /// A sliding **min** over the last `span` pushed points.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero.
    pub fn new_min(span: usize) -> Self {
        assert!(span > 0, "span must be positive");
        SlidingExtremum {
            deque: VecDeque::new(),
            span: span as u64,
            max: false,
        }
    }

    /// Admits the point at absolute stream `index` (indices must be pushed
    /// in increasing order) and expires entries older than the span.
    pub fn push(&mut self, index: u64, value: f64) {
        debug_assert!(
            self.deque.back().is_none_or(|&(i, _)| i < index),
            "indices must be strictly increasing"
        );
        while let Some(&(_, back)) = self.deque.back() {
            let dominated = if self.max {
                back <= value
            } else {
                back >= value
            };
            if !dominated {
                break;
            }
            self.deque.pop_back();
        }
        self.deque.push_back((index, value));
        let min_index = (index + 1).saturating_sub(self.span);
        while let Some(&(front, _)) = self.deque.front() {
            if front >= min_index {
                break;
            }
            self.deque.pop_front();
        }
    }

    /// The extremum of the last `span` pushed points (`None` before any
    /// push).
    pub fn extremum(&self) -> Option<f64> {
        self.deque.front().map(|&(_, v)| v)
    }
}

/// [`cascading_dtw_with`] for callers that already hold the candidate's
/// envelope — the streaming tier maintains it incrementally with
/// [`SlidingExtremum`] deques as the window slides, replacing the per-call
/// Lemire pass of layer 3. When `cand_upper`/`cand_lower` are bitwise
/// equal to `envelope(q, r)` (which the incremental maintenance
/// guarantees), the returned decision is bitwise identical to
/// [`cascading_dtw_with`].
///
/// # Errors
///
/// [`DistanceError::LengthMismatch`] if the envelope length differs from
/// `q`, plus everything [`cascading_dtw`] can return.
pub fn cascading_dtw_with_candidate_envelope(
    p: &[f64],
    q: &[f64],
    r: usize,
    best_so_far: f64,
    cand_upper: &[f64],
    cand_lower: &[f64],
    scratch: &mut DpScratch,
) -> Result<PruneDecision, DistanceError> {
    if cand_upper.len() != q.len() || cand_lower.len() != q.len() {
        return Err(DistanceError::LengthMismatch {
            left: cand_upper.len().min(cand_lower.len()),
            right: q.len(),
        });
    }
    let kim = lb_kim(p, q)?;
    if kim > best_so_far {
        return Ok(PruneDecision::PrunedByKim(kim));
    }
    if p.len() == q.len() {
        ensure_query_envelope(scratch, p, r)?;
        let keogh_q = lb_keogh_envelope(q, &scratch.qe_upper, &scratch.qe_lower);
        if keogh_q > best_so_far {
            return Ok(PruneDecision::PrunedByKeogh(keogh_q));
        }
        let keogh_c = lb_keogh_envelope(p, cand_upper, cand_lower);
        if keogh_c > best_so_far {
            return Ok(PruneDecision::PrunedByKeogh(keogh_c));
        }
    }
    match Dtw::new()
        .with_band(Band::SakoeChiba(r))
        .distance_early_abandon_with(p, q, best_so_far, scratch)?
    {
        Some(d) => Ok(PruneDecision::Computed(d)),
        None => Ok(PruneDecision::AbandonedEarly),
    }
}

/// Result of a cascading lower-bound test against a pruning threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PruneDecision {
    /// LB_Kim already exceeded the threshold — candidate skipped in O(1).
    PrunedByKim(f64),
    /// LB_Keogh exceeded the threshold — candidate skipped in O(n).
    PrunedByKeogh(f64),
    /// The DTW computation started but was abandoned row-wise once every
    /// cell exceeded the threshold.
    AbandonedEarly,
    /// Bounds were below the threshold; the full DTW was computed.
    Computed(f64),
}

impl PruneDecision {
    /// The distance value or bound this decision carries
    /// (`f64::INFINITY` for an early-abandoned computation).
    pub fn value(self) -> f64 {
        match self {
            PruneDecision::PrunedByKim(v)
            | PruneDecision::PrunedByKeogh(v)
            | PruneDecision::Computed(v) => v,
            PruneDecision::AbandonedEarly => f64::INFINITY,
        }
    }

    /// `true` if the full DTW computation was avoided.
    pub fn pruned(self) -> bool {
        !matches!(self, PruneDecision::Computed(_))
    }
}

/// Cascading DTW evaluation: LB_Kim, then LB_Keogh in both directions, then
/// early-abandoning banded DTW — the UCR-suite pipeline the paper's related
/// work (and its CPU baseline) uses for subsequence search.
///
/// # Errors
///
/// Propagates errors from the bounds or the DTW computation.
pub fn cascading_dtw(
    p: &[f64],
    q: &[f64],
    r: usize,
    best_so_far: f64,
) -> Result<PruneDecision, DistanceError> {
    cascading_dtw_with(p, q, r, best_so_far, &mut DpScratch::new())
}

/// [`cascading_dtw`] with caller-provided DP scratch rows, so a search loop
/// (or a [`crate::batch::BatchEngine`] worker) evaluating many candidates
/// allocates its DP rows once rather than per pair.
///
/// The first argument `p` is treated as the *stable query* of the cascade:
/// its envelope is cached inside `scratch` (keyed bitwise on contents and
/// radius), so repeated calls with the same `p` — the shape of every mining
/// driver — envelope it once. Per equal-length candidate the cascade is
///
/// 1. LB_Kim — O(1);
/// 2. LB_Keogh of the candidate against the cached query envelope — O(n),
///    no envelope pass;
/// 3. LB_Keogh of the query against the candidate's envelope — O(n) with a
///    fresh Lemire pass, only reached when layer 2 fails to prune;
/// 4. early-abandoning banded DTW.
///
/// # Errors
///
/// Same as [`cascading_dtw`].
pub fn cascading_dtw_with(
    p: &[f64],
    q: &[f64],
    r: usize,
    best_so_far: f64,
    scratch: &mut DpScratch,
) -> Result<PruneDecision, DistanceError> {
    let kim = lb_kim(p, q)?;
    if kim > best_so_far {
        return Ok(PruneDecision::PrunedByKim(kim));
    }
    if p.len() == q.len() {
        ensure_query_envelope(scratch, p, r)?;
        let keogh_q = lb_keogh_envelope(q, &scratch.qe_upper, &scratch.qe_lower);
        if keogh_q > best_so_far {
            return Ok(PruneDecision::PrunedByKeogh(keogh_q));
        }
        envelope_into(
            q,
            r,
            &mut scratch.ce_upper,
            &mut scratch.ce_lower,
            &mut scratch.deque,
        );
        let keogh_c = lb_keogh_envelope(p, &scratch.ce_upper, &scratch.ce_lower);
        if keogh_c > best_so_far {
            return Ok(PruneDecision::PrunedByKeogh(keogh_c));
        }
    }
    match Dtw::new()
        .with_band(Band::SakoeChiba(r))
        .distance_early_abandon_with(p, q, best_so_far, scratch)?
    {
        Some(d) => Ok(PruneDecision::Computed(d)),
        None => Ok(PruneDecision::AbandonedEarly),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn banded_dtw(p: &[f64], q: &[f64], r: usize) -> f64 {
        Dtw::new()
            .with_band(Band::SakoeChiba(r))
            .distance(p, q)
            .unwrap()
    }

    /// The pre-Lemire O(n·r) reference envelope: a fold over each window.
    fn envelope_reference(q: &[f64], r: usize) -> (Vec<f64>, Vec<f64>) {
        let n = q.len();
        let mut upper = vec![0.0; n];
        let mut lower = vec![0.0; n];
        for i in 0..n {
            let lo = i.saturating_sub(r);
            let hi = (i + r).min(n - 1);
            let window = &q[lo..=hi];
            upper[i] = window.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            lower[i] = window.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        }
        (upper, lower)
    }

    #[test]
    fn lb_kim_is_admissible() {
        let p: Vec<f64> = (0..16).map(|i| (i as f64 * 0.5).sin()).collect();
        let q: Vec<f64> = (0..16).map(|i| (i as f64 * 0.5 + 0.8).cos()).collect();
        for r in [1, 2, 4, 8] {
            assert!(lb_kim(&p, &q).unwrap() <= banded_dtw(&p, &q, r) + 1e-9);
        }
    }

    #[test]
    fn lb_keogh_is_admissible() {
        let p: Vec<f64> = (0..24).map(|i| (i as f64 * 0.3).sin() * 2.0).collect();
        let q: Vec<f64> = (0..24)
            .map(|i| (i as f64 * 0.31).sin() * 1.5 + 0.2)
            .collect();
        for r in [1, 2, 5, 10] {
            let lb = lb_keogh(&p, &q, r).unwrap();
            let d = banded_dtw(&p, &q, r);
            assert!(lb <= d + 1e-9, "r={r}: LB_Keogh {lb} > DTW {d}");
        }
    }

    #[test]
    fn envelope_sandwiches_series() {
        let q: Vec<f64> = (0..10).map(|i| (i as f64).sin()).collect();
        let (u, l) = envelope(&q, 2).unwrap();
        for i in 0..q.len() {
            assert!(l[i] <= q[i] && q[i] <= u[i]);
        }
    }

    #[test]
    fn envelope_widens_with_radius() {
        let q: Vec<f64> = (0..12).map(|i| ((i * i) as f64 % 7.0) - 3.0).collect();
        let (u1, l1) = envelope(&q, 1).unwrap();
        let (u3, l3) = envelope(&q, 3).unwrap();
        for i in 0..q.len() {
            assert!(u3[i] >= u1[i] && l3[i] <= l1[i]);
        }
    }

    #[test]
    fn lemire_envelope_matches_windowed_fold() {
        // The O(n) deque pass must agree with the O(n·r) reference on every
        // length/radius combination, including r = 0 and r >= n.
        let q: Vec<f64> = (0..37)
            .map(|i| ((i * 7919 % 101) as f64 - 50.0) * 0.3)
            .collect();
        for len in [1usize, 2, 3, 5, 16, 37] {
            let s = &q[..len];
            for r in [0usize, 1, 2, 3, 7, len, len + 5] {
                let (u, l) = envelope(s, r).unwrap();
                let (ru, rl) = envelope_reference(s, r);
                assert_eq!(u, ru, "upper mismatch len={len} r={r}");
                assert_eq!(l, rl, "lower mismatch len={len} r={r}");
            }
        }
    }

    #[test]
    fn lemire_envelope_handles_plateaus_and_duplicates() {
        let q = [2.0, 2.0, 2.0, -1.0, -1.0, 5.0, 5.0, 0.0];
        for r in [0, 1, 2, 4] {
            let (u, l) = envelope(&q, r).unwrap();
            let (ru, rl) = envelope_reference(&q, r);
            assert_eq!(u, ru, "r={r}");
            assert_eq!(l, rl, "r={r}");
        }
    }

    #[test]
    fn identical_series_have_zero_bounds() {
        let p = [0.4, 1.0, -0.2];
        assert_eq!(lb_kim(&p, &p).unwrap(), 0.0);
        assert_eq!(lb_keogh(&p, &p, 1).unwrap(), 0.0);
    }

    #[test]
    fn cascade_prunes_obvious_non_matches() {
        let p = [0.0, 0.0, 0.0, 0.0];
        let far = [100.0, 100.0, 100.0, 100.0];
        let d = cascading_dtw(&p, &far, 1, 1.0).unwrap();
        assert!(d.pruned());
        assert!(matches!(d, PruneDecision::PrunedByKim(_)));
    }

    #[test]
    fn cascade_computes_close_matches() {
        let p = [0.0, 1.0, 0.0, 1.0];
        let q = [0.1, 0.9, 0.1, 0.9];
        let d = cascading_dtw(&p, &q, 1, 100.0).unwrap();
        assert!(!d.pruned());
        assert!((d.value() - banded_dtw(&p, &q, 1)).abs() < 1e-12);
    }

    #[test]
    fn cascade_keogh_layer_triggers() {
        // First/last match (defeats Kim) but the middle is far away.
        let p = [0.0, 50.0, 50.0, 0.0];
        let q = [0.0, 0.0, 0.0, 0.0];
        let d = cascading_dtw(&p, &q, 0, 10.0).unwrap();
        assert!(matches!(d, PruneDecision::PrunedByKeogh(_)));
    }

    #[test]
    fn cascade_reuses_cached_query_envelope() {
        let p: Vec<f64> = (0..32).map(|i| (i as f64 * 0.4).sin()).collect();
        let q: Vec<f64> = (0..32).map(|i| (i as f64 * 0.4).cos()).collect();
        let mut scratch = DpScratch::new();
        let a = cascading_dtw_with(&p, &q, 3, f64::INFINITY, &mut scratch).unwrap();
        assert!(scratch.query_envelope_matches(&p, 3));
        // Second call with the same query hits the cache and must agree
        // with a cold-scratch evaluation.
        let b = cascading_dtw_with(&p, &q, 3, f64::INFINITY, &mut scratch).unwrap();
        let cold = cascading_dtw(&p, &q, 3, f64::INFINITY).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, cold);
        // A different radius invalidates the cache.
        cascading_dtw_with(&p, &q, 5, f64::INFINITY, &mut scratch).unwrap();
        assert!(scratch.query_envelope_matches(&p, 5));
        assert!(!scratch.query_envelope_matches(&p, 3));
    }

    #[test]
    fn sliding_extremum_matches_batch_envelope_interior() {
        // With span = 2r + 1, the deque read after pushing index c + r is
        // exactly the batch envelope entry centred at c, bit for bit —
        // including 0.0 / -0.0 plateaus, where both sides keep the later
        // occurrence.
        let q: Vec<f64> = (0..64)
            .map(|i| match i % 7 {
                0 => 0.0,
                1 => -0.0,
                k => ((i * 131 % 17) as f64 - 8.0) * 0.25 * k as f64,
            })
            .collect();
        for r in [0usize, 1, 2, 5, 9] {
            let (bu, bl) = envelope(&q, r).unwrap();
            let mut smax = SlidingExtremum::new_max(2 * r + 1);
            let mut smin = SlidingExtremum::new_min(2 * r + 1);
            for (s, &x) in q.iter().enumerate() {
                smax.push(s as u64, x);
                smin.push(s as u64, x);
                if s >= 2 * r && s < q.len() {
                    let c = s - r;
                    assert_eq!(smax.extremum().unwrap().to_bits(), bu[c].to_bits());
                    assert_eq!(smin.extremum().unwrap().to_bits(), bl[c].to_bits());
                }
            }
        }
    }

    #[test]
    fn slice_extremum_matches_envelope_borders() {
        let q = [2.0, -0.0, 0.0, 2.0, -3.0, 2.0, 0.5];
        for r in [0usize, 1, 2, 3, 10] {
            let (bu, bl) = envelope(&q, r).unwrap();
            for i in 0..q.len() {
                let lo = i.saturating_sub(r);
                let hi = (i + r).min(q.len() - 1);
                let w = &q[lo..=hi];
                assert_eq!(slice_extremum(w, true).to_bits(), bu[i].to_bits());
                assert_eq!(slice_extremum(w, false).to_bits(), bl[i].to_bits());
            }
        }
    }

    #[test]
    fn candidate_envelope_cascade_matches_plain_cascade() {
        let mut scratch_a = DpScratch::new();
        let mut scratch_b = DpScratch::new();
        for phase in 0..12 {
            let p: Vec<f64> = (0..24)
                .map(|i| (i as f64 * 0.35 + phase as f64).sin() * 2.0)
                .collect();
            let q: Vec<f64> = (0..24)
                .map(|i| (i as f64 * 0.33 + phase as f64 * 0.5).cos() * 1.5)
                .collect();
            for r in [0usize, 1, 3, 6] {
                for best in [0.1, 2.0, 25.0, f64::INFINITY] {
                    let (cu, cl) = envelope(&q, r).unwrap();
                    let with_env = cascading_dtw_with_candidate_envelope(
                        &p,
                        &q,
                        r,
                        best,
                        &cu,
                        &cl,
                        &mut scratch_a,
                    )
                    .unwrap();
                    let plain = cascading_dtw_with(&p, &q, r, best, &mut scratch_b).unwrap();
                    assert_eq!(with_env, plain, "phase={phase} r={r} best={best}");
                }
            }
        }
    }

    #[test]
    fn candidate_envelope_length_mismatch_is_typed() {
        let p = [0.0, 1.0];
        let q = [0.0, 2.0];
        let err = cascading_dtw_with_candidate_envelope(
            &p,
            &q,
            1,
            f64::INFINITY,
            &[0.0],
            &[0.0],
            &mut DpScratch::new(),
        )
        .unwrap_err();
        assert!(matches!(err, DistanceError::LengthMismatch { .. }));
    }

    #[test]
    fn cascade_candidate_envelope_layer_triggers() {
        // Kim passes (endpoints agree) and the candidate stays inside the
        // wide query envelope, but the query escapes the candidate's narrow
        // envelope — only the reversed Keogh layer can prune this shape.
        let p = [0.0, 9.0, -9.0, 0.0]; // query: wide envelope at r=1
        let q = [0.0, 0.5, -0.5, 0.0]; // candidate: narrow envelope
        let r = 1;
        let threshold = 10.0;
        let kim = lb_kim(&p, &q).unwrap();
        assert!(kim <= threshold);
        let keogh_query_dir = lb_keogh(&q, &p, r).unwrap();
        assert!(
            keogh_query_dir <= threshold,
            "query-envelope layer must not prune ({keogh_query_dir})"
        );
        let keogh_cand_dir = lb_keogh(&p, &q, r).unwrap();
        assert!(
            keogh_cand_dir > threshold,
            "candidate-envelope layer must prune ({keogh_cand_dir})"
        );
        let d = cascading_dtw(&p, &q, r, threshold).unwrap();
        assert!(matches!(d, PruneDecision::PrunedByKeogh(v) if v == keogh_cand_dir));
    }
}
