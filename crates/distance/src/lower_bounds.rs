//! Lower bounds for DTW — the software optimizations of Rakthanmanon et al.
//! (the paper's reference \[24\]) that the accelerator competes against.
//!
//! The two classic cascading bounds are provided:
//!
//! * [`lb_kim`] — O(1) bound from first/last elements;
//! * [`lb_keogh`] — O(n) bound from the Sakoe–Chiba envelope.
//!
//! Both are *admissible*: they never exceed the true banded DTW distance, so
//! a search can safely prune any candidate whose bound already exceeds the
//! best-so-far. The `lower_bounds` bench measures the pruning power that the
//! paper's CPU baseline relies on.

use crate::dtw::{Band, Dtw};
use crate::error::DistanceError;
use crate::scratch::DpScratch;

/// LB_Kim (simplified, as used by the UCR suite): the distance contributed by
/// the first and last aligned pairs, which every warping path must pay.
///
/// Uses the L1 point cost to match the paper's DTW formulation (Eq. 2 uses
/// `|Pi - Qj|`).
///
/// # Errors
///
/// Returns [`DistanceError::EmptySequence`] if either input is empty.
pub fn lb_kim(p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
    if p.is_empty() || q.is_empty() {
        return Err(DistanceError::EmptySequence);
    }
    let first = (p[0] - q[0]).abs();
    if p.len() == 1 && q.len() == 1 {
        // The first and last aligned pair are the same cell; count it once.
        return Ok(first);
    }
    let last = (p[p.len() - 1] - q[q.len() - 1]).abs();
    Ok(first + last)
}

/// The upper/lower Sakoe–Chiba envelope of a series for band radius `r`:
/// `upper[i] = max(q[i-r ..= i+r])`, `lower[i] = min(q[i-r ..= i+r])`.
///
/// # Errors
///
/// Returns [`DistanceError::EmptySequence`] if the input is empty.
pub fn envelope(q: &[f64], r: usize) -> Result<(Vec<f64>, Vec<f64>), DistanceError> {
    if q.is_empty() {
        return Err(DistanceError::EmptySequence);
    }
    let n = q.len();
    let mut upper = vec![0.0; n];
    let mut lower = vec![0.0; n];
    for i in 0..n {
        let lo = i.saturating_sub(r);
        let hi = (i + r).min(n - 1);
        let window = &q[lo..=hi];
        upper[i] = window.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        lower[i] = window.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    }
    Ok((upper, lower))
}

/// LB_Keogh: the L1 cost of the parts of `p` that fall outside the band-`r`
/// envelope of `q`. Admissible for equal-length banded DTW with L1 point
/// costs.
///
/// # Errors
///
/// Returns [`DistanceError::LengthMismatch`] for unequal lengths or
/// [`DistanceError::EmptySequence`] for empty inputs.
pub fn lb_keogh(p: &[f64], q: &[f64], r: usize) -> Result<f64, DistanceError> {
    if p.len() != q.len() {
        return Err(DistanceError::LengthMismatch {
            left: p.len(),
            right: q.len(),
        });
    }
    let (upper, lower) = envelope(q, r)?;
    Ok(p.iter()
        .zip(upper.iter().zip(&lower))
        .map(|(&x, (&u, &l))| {
            if x > u {
                x - u
            } else if x < l {
                l - x
            } else {
                0.0
            }
        })
        .sum())
}

/// Result of a cascading lower-bound test against a pruning threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PruneDecision {
    /// LB_Kim already exceeded the threshold — candidate skipped in O(1).
    PrunedByKim(f64),
    /// LB_Keogh exceeded the threshold — candidate skipped in O(n).
    PrunedByKeogh(f64),
    /// The DTW computation started but was abandoned row-wise once every
    /// cell exceeded the threshold.
    AbandonedEarly,
    /// Bounds were below the threshold; the full DTW was computed.
    Computed(f64),
}

impl PruneDecision {
    /// The distance value or bound this decision carries
    /// (`f64::INFINITY` for an early-abandoned computation).
    pub fn value(self) -> f64 {
        match self {
            PruneDecision::PrunedByKim(v)
            | PruneDecision::PrunedByKeogh(v)
            | PruneDecision::Computed(v) => v,
            PruneDecision::AbandonedEarly => f64::INFINITY,
        }
    }

    /// `true` if the full DTW computation was avoided.
    pub fn pruned(self) -> bool {
        !matches!(self, PruneDecision::Computed(_))
    }
}

/// Cascading DTW evaluation: LB_Kim, then LB_Keogh, then full banded DTW —
/// the UCR-suite pipeline the paper's related work (and its CPU baseline)
/// uses for subsequence search.
///
/// # Errors
///
/// Propagates errors from the bounds or the DTW computation.
pub fn cascading_dtw(
    p: &[f64],
    q: &[f64],
    r: usize,
    best_so_far: f64,
) -> Result<PruneDecision, DistanceError> {
    cascading_dtw_with(p, q, r, best_so_far, &mut DpScratch::new())
}

/// [`cascading_dtw`] with caller-provided DP scratch rows, so a search loop
/// (or a [`crate::batch::BatchEngine`] worker) evaluating many candidates
/// allocates its DP rows once rather than per pair.
///
/// # Errors
///
/// Same as [`cascading_dtw`].
pub fn cascading_dtw_with(
    p: &[f64],
    q: &[f64],
    r: usize,
    best_so_far: f64,
    scratch: &mut DpScratch,
) -> Result<PruneDecision, DistanceError> {
    let kim = lb_kim(p, q)?;
    if kim > best_so_far {
        return Ok(PruneDecision::PrunedByKim(kim));
    }
    if p.len() == q.len() {
        let keogh = lb_keogh(p, q, r)?;
        if keogh > best_so_far {
            return Ok(PruneDecision::PrunedByKeogh(keogh));
        }
    }
    match Dtw::new()
        .with_band(Band::SakoeChiba(r))
        .distance_early_abandon_with(p, q, best_so_far, scratch)?
    {
        Some(d) => Ok(PruneDecision::Computed(d)),
        None => Ok(PruneDecision::AbandonedEarly),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn banded_dtw(p: &[f64], q: &[f64], r: usize) -> f64 {
        Dtw::new()
            .with_band(Band::SakoeChiba(r))
            .distance(p, q)
            .unwrap()
    }

    #[test]
    fn lb_kim_is_admissible() {
        let p: Vec<f64> = (0..16).map(|i| (i as f64 * 0.5).sin()).collect();
        let q: Vec<f64> = (0..16).map(|i| (i as f64 * 0.5 + 0.8).cos()).collect();
        for r in [1, 2, 4, 8] {
            assert!(lb_kim(&p, &q).unwrap() <= banded_dtw(&p, &q, r) + 1e-9);
        }
    }

    #[test]
    fn lb_keogh_is_admissible() {
        let p: Vec<f64> = (0..24).map(|i| (i as f64 * 0.3).sin() * 2.0).collect();
        let q: Vec<f64> = (0..24)
            .map(|i| (i as f64 * 0.31).sin() * 1.5 + 0.2)
            .collect();
        for r in [1, 2, 5, 10] {
            let lb = lb_keogh(&p, &q, r).unwrap();
            let d = banded_dtw(&p, &q, r);
            assert!(lb <= d + 1e-9, "r={r}: LB_Keogh {lb} > DTW {d}");
        }
    }

    #[test]
    fn envelope_sandwiches_series() {
        let q: Vec<f64> = (0..10).map(|i| (i as f64).sin()).collect();
        let (u, l) = envelope(&q, 2).unwrap();
        for i in 0..q.len() {
            assert!(l[i] <= q[i] && q[i] <= u[i]);
        }
    }

    #[test]
    fn envelope_widens_with_radius() {
        let q: Vec<f64> = (0..12).map(|i| ((i * i) as f64 % 7.0) - 3.0).collect();
        let (u1, l1) = envelope(&q, 1).unwrap();
        let (u3, l3) = envelope(&q, 3).unwrap();
        for i in 0..q.len() {
            assert!(u3[i] >= u1[i] && l3[i] <= l1[i]);
        }
    }

    #[test]
    fn identical_series_have_zero_bounds() {
        let p = [0.4, 1.0, -0.2];
        assert_eq!(lb_kim(&p, &p).unwrap(), 0.0);
        assert_eq!(lb_keogh(&p, &p, 1).unwrap(), 0.0);
    }

    #[test]
    fn cascade_prunes_obvious_non_matches() {
        let p = [0.0, 0.0, 0.0, 0.0];
        let far = [100.0, 100.0, 100.0, 100.0];
        let d = cascading_dtw(&p, &far, 1, 1.0).unwrap();
        assert!(d.pruned());
        assert!(matches!(d, PruneDecision::PrunedByKim(_)));
    }

    #[test]
    fn cascade_computes_close_matches() {
        let p = [0.0, 1.0, 0.0, 1.0];
        let q = [0.1, 0.9, 0.1, 0.9];
        let d = cascading_dtw(&p, &q, 1, 100.0).unwrap();
        assert!(!d.pruned());
        assert!((d.value() - banded_dtw(&p, &q, 1)).abs() < 1e-12);
    }

    #[test]
    fn cascade_keogh_layer_triggers() {
        // First/last match (defeats Kim) but the middle is far away.
        let p = [0.0, 50.0, 50.0, 0.0];
        let q = [0.0, 0.0, 0.0, 0.0];
        let d = cascading_dtw(&p, &q, 0, 10.0).unwrap();
        assert!(matches!(d, PruneDecision::PrunedByKeogh(_)));
    }
}
