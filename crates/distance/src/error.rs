//! Error types shared by all distance functions.

use std::error::Error;
use std::fmt;

/// Error returned when a distance function rejects its inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DistanceError {
    /// One (or both) of the sequences is empty but the function requires at
    /// least one element.
    EmptySequence,
    /// The function requires both sequences to have equal length
    /// (Hamming and Manhattan distance, per Section 2 of the paper).
    LengthMismatch {
        /// Length of the first sequence `P`.
        left: usize,
        /// Length of the second sequence `Q`.
        right: usize,
    },
    /// A weight vector/matrix was supplied whose shape does not match the
    /// sequences being compared.
    WeightShape {
        /// What shape the function expected, e.g. `"m x n"`.
        expected: String,
        /// What shape was actually supplied.
        actual: String,
    },
    /// A parameter was outside its valid domain (e.g. a negative threshold).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
}

impl fmt::Display for DistanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistanceError::EmptySequence => write!(f, "input sequence is empty"),
            DistanceError::LengthMismatch { left, right } => write!(
                f,
                "sequences must have equal length, got {left} and {right}"
            ),
            DistanceError::WeightShape { expected, actual } => write!(
                f,
                "weight shape mismatch: expected {expected}, got {actual}"
            ),
            DistanceError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl Error for DistanceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let msgs = [
            DistanceError::EmptySequence.to_string(),
            DistanceError::LengthMismatch { left: 3, right: 4 }.to_string(),
            DistanceError::WeightShape {
                expected: "3 x 4".into(),
                actual: "2 x 2".into(),
            }
            .to_string(),
            DistanceError::InvalidParameter {
                name: "threshold",
                reason: "must be non-negative".into(),
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "{m:?} ends with punctuation");
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<DistanceError>();
    }
}
