//! Longest common subsequence (LCS), Eq. 3 of the paper.
//!
//! LCS on real-valued series uses a *threshold* to decide whether two
//! elements match, and a step value `Vstep` contributed by each matched pair:
//!
//! ```text
//! L[i][j] = 0                                   if i == 0 or j == 0
//!         = L[i-1][j-1] + w[i][j] * Vstep       if |P[i] - Q[j]| <= threshold
//!         = max(L[i][j-1], L[i-1][j])           otherwise
//! LCS(P, Q) = L[n][m]
//! ```
//!
//! Unlike the other five functions, LCS is a **similarity**: larger values
//! mean closer series.

use crate::error::DistanceError;
use crate::matrix::DpMatrix;
use crate::weights::Weights;
use crate::{Distance, DistanceKind};

/// Longest common subsequence similarity.
///
/// ```
/// use mda_distance::Lcs;
/// # fn main() -> Result<(), mda_distance::DistanceError> {
/// let lcs = Lcs::new(0.25);
/// // 3 of the 4 aligned elements match within the threshold.
/// let s = lcs.similarity(&[0.0, 1.0, 2.0, 3.0], &[0.1, 1.2, 2.4, 3.1])?;
/// assert_eq!(s, 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lcs {
    threshold: f64,
    v_step: f64,
    weights: Weights,
}

impl Lcs {
    /// LCS with match threshold `threshold`, unit step 1 and uniform weights.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or non-finite (a threshold is a
    /// physical voltage `Vthre` on the accelerator and must be `>= 0`).
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "threshold must be finite and non-negative"
        );
        Lcs {
            threshold,
            v_step: 1.0,
            weights: Weights::Uniform,
        }
    }

    /// Sets the contribution `Vstep` of each matched pair.
    ///
    /// On the accelerator this is a unit voltage (the paper uses 10 mV); the
    /// digital value is divided out after ADC readout, so the default of 1
    /// reports the match count directly.
    #[must_use]
    pub fn with_step(mut self, v_step: f64) -> Self {
        self.v_step = v_step;
        self
    }

    /// Sets per-cell weights (weighted LCS, Banerjee & Ghosh).
    #[must_use]
    pub fn with_weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// The configured match threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The configured step value.
    pub fn v_step(&self) -> f64 {
        self.v_step
    }

    /// Computes the full DP matrix of Eq. 3.
    ///
    /// # Errors
    ///
    /// Returns [`DistanceError::EmptySequence`] for empty inputs or
    /// [`DistanceError::WeightShape`] on weight-shape mismatch.
    pub fn matrix(&self, p: &[f64], q: &[f64]) -> Result<DpMatrix, DistanceError> {
        if p.is_empty() || q.is_empty() {
            return Err(DistanceError::EmptySequence);
        }
        let (m, n) = (p.len(), q.len());
        self.weights.check_pair_shape(m, n)?;

        let mut l = DpMatrix::filled(m + 1, n + 1, 0.0);
        for i in 1..=m {
            for j in 1..=n {
                let v = if (p[i - 1] - q[j - 1]).abs() <= self.threshold {
                    l.at(i - 1, j - 1) + self.weights.pair(i - 1, j - 1) * self.v_step
                } else {
                    l.at(i, j - 1).max(l.at(i - 1, j))
                };
                l.set(i, j, v);
            }
        }
        Ok(l)
    }

    /// Computes the LCS similarity using O(n) memory.
    ///
    /// # Errors
    ///
    /// Same as [`Lcs::matrix`].
    pub fn similarity(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        if p.is_empty() || q.is_empty() {
            return Err(DistanceError::EmptySequence);
        }
        let (m, n) = (p.len(), q.len());
        self.weights.check_pair_shape(m, n)?;

        let mut prev = vec![0.0f64; n + 1];
        let mut curr = vec![0.0f64; n + 1];
        for i in 1..=m {
            curr[0] = 0.0;
            for j in 1..=n {
                curr[j] = if (p[i - 1] - q[j - 1]).abs() <= self.threshold {
                    prev[j - 1] + self.weights.pair(i - 1, j - 1) * self.v_step
                } else {
                    curr[j - 1].max(prev[j])
                };
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        Ok(prev[n])
    }
}

impl Distance for Lcs {
    fn evaluate(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        self.similarity(p, q)
    }

    fn kind(&self) -> DistanceKind {
        DistanceKind::Lcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic discrete LCS via characters mapped onto widely spaced reals.
    fn discrete_lcs(a: &str, b: &str) -> f64 {
        let enc = |s: &str| -> Vec<f64> { s.bytes().map(|c| c as f64 * 10.0).collect() };
        Lcs::new(0.5)
            .similarity(&enc(a), &enc(b))
            .expect("non-empty")
    }

    #[test]
    fn matches_textbook_string_lcs() {
        assert_eq!(discrete_lcs("ABCBDAB", "BDCABA"), 4.0); // BCBA
        assert_eq!(discrete_lcs("AGGTAB", "GXTXAYB"), 4.0); // GTAB
        assert_eq!(discrete_lcs("ABC", "DEF"), 0.0);
    }

    #[test]
    fn self_similarity_is_length_times_step() {
        let p = [0.4, -1.0, 2.2];
        assert_eq!(Lcs::new(0.0).similarity(&p, &p).unwrap(), 3.0);
        assert_eq!(
            Lcs::new(0.0).with_step(0.01).similarity(&p, &p).unwrap(),
            0.03
        );
    }

    #[test]
    fn symmetric_with_uniform_weights() {
        let p = [0.1, 0.5, 0.9, 0.2];
        let q = [0.2, 0.4, 1.0];
        let lcs = Lcs::new(0.15);
        assert_eq!(
            lcs.similarity(&p, &q).unwrap(),
            lcs.similarity(&q, &p).unwrap()
        );
    }

    #[test]
    fn bounded_by_min_length() {
        let p = [0.0; 7];
        let q = [0.0; 4];
        assert!(Lcs::new(1.0).similarity(&p, &q).unwrap() <= 4.0);
    }

    #[test]
    fn monotone_in_threshold() {
        let p = [0.0, 1.0, 2.0, 3.0];
        let q = [0.3, 1.4, 2.5, 3.6];
        let mut last = -1.0;
        for t in [0.0, 0.3, 0.45, 0.55, 0.7] {
            let s = Lcs::new(t).similarity(&p, &q).unwrap();
            assert!(s >= last, "LCS must grow with the threshold");
            last = s;
        }
    }

    #[test]
    fn matrix_final_value_matches_similarity() {
        let p = [0.0, 0.5, 1.0, 0.5];
        let q = [0.1, 1.1, 0.4];
        let lcs = Lcs::new(0.2);
        assert_eq!(
            lcs.matrix(&p, &q).unwrap().final_value(),
            lcs.similarity(&p, &q).unwrap()
        );
    }

    #[test]
    fn weighted_match_contributions() {
        let p = [0.0, 1.0];
        let q = [0.0, 1.0];
        let w = Weights::per_pair(2, 2, vec![3.0, 1.0, 1.0, 5.0]).unwrap();
        // Both diagonal cells match: 3.0 + 5.0.
        assert_eq!(
            Lcs::new(0.01).with_weights(w).similarity(&p, &q).unwrap(),
            8.0
        );
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            Lcs::new(0.1).similarity(&[], &[]).unwrap_err(),
            DistanceError::EmptySequence
        );
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn negative_threshold_panics() {
        let _ = Lcs::new(-0.1);
    }
}
