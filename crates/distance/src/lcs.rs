//! Longest common subsequence (LCS), Eq. 3 of the paper.
//!
//! LCS on real-valued series uses a *threshold* to decide whether two
//! elements match, and a step value `Vstep` contributed by each matched pair:
//!
//! ```text
//! L[i][j] = 0                                   if i == 0 or j == 0
//!         = L[i-1][j-1] + w[i][j] * Vstep       if |P[i] - Q[j]| <= threshold
//!         = max(L[i][j-1], L[i-1][j])           otherwise
//! LCS(P, Q) = L[n][m]
//! ```
//!
//! Unlike the other five functions, LCS is a **similarity**: larger values
//! mean closer series.
//!
//! [`Lcs::similarity`] evaluates the recurrence in anti-diagonal (wavefront)
//! order: cells on one anti-diagonal are independent — the property the
//! paper's memristor array exploits to fire a whole diagonal of PEs at once
//! (Section 3.3) — so the inner loop reads contiguous slices with no
//! loop-carried dependency and autovectorizes. The per-cell operation order
//! (`left.max(up)` on a mismatch) is preserved, so results are
//! bitwise-identical to the row-major reference [`Lcs::matrix`].

use crate::error::DistanceError;
use crate::matrix::DpMatrix;
use crate::scratch::DpScratch;
use crate::weights::Weights;
use crate::{Distance, DistanceKind};

/// Wavefront evaluation of Eq. 3. All boundary cells are `0.0`, which is
/// also the initial fill of every diagonal buffer — and interior writes of
/// diagonal `k` never touch slots `0` or `k`, so boundary reads always see
/// `0.0` without any per-diagonal bookkeeping.
fn wavefront_lcs<F: Fn(usize, usize) -> f64>(
    p: &[f64],
    q: &[f64],
    threshold: f64,
    v_step: f64,
    scratch: &mut DpScratch,
    wpair: &F,
) -> f64 {
    let (m, n) = (p.len(), q.len());
    // Diagonal k stores cell (i, j = k - i) at slot i; slots 0..=m.
    let ([mut d0, mut d1, mut d2], rev) = scratch.wavefront(m + 1, 0.0, q);
    for k in 2..=(m + n) {
        let lo = k.saturating_sub(n).max(1);
        let hi = m.min(k - 1);
        let w = hi - lo + 1; // the structural range is never empty
        let dst = &mut d2[lo..lo + w];
        let lefts = &d1[lo..lo + w]; // L[i][j-1]
        let ups = &d1[lo - 1..lo - 1 + w]; // L[i-1][j]
        let diags = &d0[lo - 1..lo - 1 + w]; // L[i-1][j-1]
        let ps = &p[lo - 1..lo - 1 + w];
        let qs = &rev[lo + n - k..lo + n - k + w]; // q[j-1] reversed
        for t in 0..w {
            let i = lo + t;
            dst[t] = if (ps[t] - qs[t]).abs() <= threshold {
                diags[t] + wpair(i - 1, k - i - 1) * v_step
            } else {
                lefts[t].max(ups[t])
            };
        }
        let td = d0;
        d0 = d1;
        d1 = d2;
        d2 = td;
    }
    d1[m] // diagonal m + n, cell (m, n)
}

/// Longest common subsequence similarity.
///
/// ```
/// use mda_distance::Lcs;
/// # fn main() -> Result<(), mda_distance::DistanceError> {
/// let lcs = Lcs::new(0.25);
/// // 3 of the 4 aligned elements match within the threshold.
/// let s = lcs.similarity(&[0.0, 1.0, 2.0, 3.0], &[0.1, 1.2, 2.4, 3.1])?;
/// assert_eq!(s, 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lcs {
    threshold: f64,
    v_step: f64,
    weights: Weights,
}

impl Lcs {
    /// LCS with match threshold `threshold`, unit step 1 and uniform weights.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or non-finite (a threshold is a
    /// physical voltage `Vthre` on the accelerator and must be `>= 0`).
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "threshold must be finite and non-negative"
        );
        Lcs {
            threshold,
            v_step: 1.0,
            weights: Weights::Uniform,
        }
    }

    /// Sets the contribution `Vstep` of each matched pair.
    ///
    /// On the accelerator this is a unit voltage (the paper uses 10 mV); the
    /// digital value is divided out after ADC readout, so the default of 1
    /// reports the match count directly.
    #[must_use]
    pub fn with_step(mut self, v_step: f64) -> Self {
        self.v_step = v_step;
        self
    }

    /// Sets per-cell weights (weighted LCS, Banerjee & Ghosh).
    #[must_use]
    pub fn with_weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// The configured match threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The configured step value.
    pub fn v_step(&self) -> f64 {
        self.v_step
    }

    /// Computes the full DP matrix of Eq. 3.
    ///
    /// # Errors
    ///
    /// Returns [`DistanceError::EmptySequence`] for empty inputs or
    /// [`DistanceError::WeightShape`] on weight-shape mismatch.
    pub fn matrix(&self, p: &[f64], q: &[f64]) -> Result<DpMatrix, DistanceError> {
        if p.is_empty() || q.is_empty() {
            return Err(DistanceError::EmptySequence);
        }
        let (m, n) = (p.len(), q.len());
        self.weights.check_pair_shape(m, n)?;

        let mut l = DpMatrix::filled(m + 1, n + 1, 0.0);
        for i in 1..=m {
            for j in 1..=n {
                let v = if (p[i - 1] - q[j - 1]).abs() <= self.threshold {
                    l.at(i - 1, j - 1) + self.weights.pair(i - 1, j - 1) * self.v_step
                } else {
                    l.at(i, j - 1).max(l.at(i - 1, j))
                };
                l.set(i, j, v);
            }
        }
        Ok(l)
    }

    /// Computes the LCS similarity using O(n) memory (three anti-diagonal
    /// buffers, wavefront order). Bitwise-identical to [`Lcs::matrix`]'s
    /// final value.
    ///
    /// # Errors
    ///
    /// Same as [`Lcs::matrix`].
    pub fn similarity(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        self.similarity_with(p, q, &mut DpScratch::new())
    }

    /// [`Lcs::similarity`] with caller-provided scratch buffers, so batch
    /// workloads allocate the diagonal buffers once instead of per pair.
    ///
    /// # Errors
    ///
    /// Same as [`Lcs::matrix`].
    pub fn similarity_with(
        &self,
        p: &[f64],
        q: &[f64],
        scratch: &mut DpScratch,
    ) -> Result<f64, DistanceError> {
        if p.is_empty() || q.is_empty() {
            return Err(DistanceError::EmptySequence);
        }
        let (m, n) = (p.len(), q.len());
        self.weights.check_pair_shape(m, n)?;

        let v = match &self.weights {
            Weights::Uniform => {
                wavefront_lcs(p, q, self.threshold, self.v_step, scratch, &|_, _| 1.0)
            }
            w => wavefront_lcs(p, q, self.threshold, self.v_step, scratch, &|i, j| {
                w.pair(i, j)
            }),
        };
        Ok(v)
    }
}

impl Distance for Lcs {
    fn evaluate(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        self.similarity(p, q)
    }

    fn evaluate_with(
        &self,
        p: &[f64],
        q: &[f64],
        scratch: &mut DpScratch,
    ) -> Result<f64, DistanceError> {
        self.similarity_with(p, q, scratch)
    }

    fn kind(&self) -> DistanceKind {
        DistanceKind::Lcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic discrete LCS via characters mapped onto widely spaced reals.
    fn discrete_lcs(a: &str, b: &str) -> f64 {
        let enc = |s: &str| -> Vec<f64> { s.bytes().map(|c| c as f64 * 10.0).collect() };
        Lcs::new(0.5)
            .similarity(&enc(a), &enc(b))
            .expect("non-empty")
    }

    #[test]
    fn matches_textbook_string_lcs() {
        assert_eq!(discrete_lcs("ABCBDAB", "BDCABA"), 4.0); // BCBA
        assert_eq!(discrete_lcs("AGGTAB", "GXTXAYB"), 4.0); // GTAB
        assert_eq!(discrete_lcs("ABC", "DEF"), 0.0);
    }

    #[test]
    fn self_similarity_is_length_times_step() {
        let p = [0.4, -1.0, 2.2];
        assert_eq!(Lcs::new(0.0).similarity(&p, &p).unwrap(), 3.0);
        assert_eq!(
            Lcs::new(0.0).with_step(0.01).similarity(&p, &p).unwrap(),
            0.03
        );
    }

    #[test]
    fn symmetric_with_uniform_weights() {
        let p = [0.1, 0.5, 0.9, 0.2];
        let q = [0.2, 0.4, 1.0];
        let lcs = Lcs::new(0.15);
        assert_eq!(
            lcs.similarity(&p, &q).unwrap(),
            lcs.similarity(&q, &p).unwrap()
        );
    }

    #[test]
    fn bounded_by_min_length() {
        let p = [0.0; 7];
        let q = [0.0; 4];
        assert!(Lcs::new(1.0).similarity(&p, &q).unwrap() <= 4.0);
    }

    #[test]
    fn monotone_in_threshold() {
        let p = [0.0, 1.0, 2.0, 3.0];
        let q = [0.3, 1.4, 2.5, 3.6];
        let mut last = -1.0;
        for t in [0.0, 0.3, 0.45, 0.55, 0.7] {
            let s = Lcs::new(t).similarity(&p, &q).unwrap();
            assert!(s >= last, "LCS must grow with the threshold");
            last = s;
        }
    }

    #[test]
    fn matrix_final_value_matches_similarity() {
        let p = [0.0, 0.5, 1.0, 0.5];
        let q = [0.1, 1.1, 0.4];
        let lcs = Lcs::new(0.2);
        assert_eq!(
            lcs.matrix(&p, &q).unwrap().final_value(),
            lcs.similarity(&p, &q).unwrap()
        );
    }

    #[test]
    fn weighted_match_contributions() {
        let p = [0.0, 1.0];
        let q = [0.0, 1.0];
        let w = Weights::per_pair(2, 2, vec![3.0, 1.0, 1.0, 5.0]).unwrap();
        // Both diagonal cells match: 3.0 + 5.0.
        assert_eq!(
            Lcs::new(0.01).with_weights(w).similarity(&p, &q).unwrap(),
            8.0
        );
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            Lcs::new(0.1).similarity(&[], &[]).unwrap_err(),
            DistanceError::EmptySequence
        );
    }

    #[test]
    fn wavefront_matches_matrix_bitwise() {
        // The anti-diagonal kernel must reproduce the row-major reference
        // exactly across lengths and length skews, with scratch reuse.
        let series: Vec<f64> = (0..40)
            .map(|i| ((i * 29 % 13) as f64 - 6.0) * 0.21)
            .collect();
        let lcs = Lcs::new(0.3).with_step(0.125);
        let mut scratch = DpScratch::new();
        for (m, n) in [
            (1usize, 1usize),
            (1, 9),
            (9, 1),
            (4, 4),
            (7, 13),
            (13, 7),
            (25, 25),
            (40, 11),
        ] {
            let p = &series[..m];
            let q = &series[40 - n..];
            let reference = lcs.matrix(p, q).unwrap().final_value();
            let v = lcs.similarity_with(p, q, &mut scratch).unwrap();
            assert_eq!(v.to_bits(), reference.to_bits(), "m={m} n={n}");
        }
    }

    #[test]
    fn wavefront_matches_matrix_bitwise_weighted() {
        let p = [0.0, 0.5, 1.0, 0.5, 0.2];
        let q = [0.1, 1.1, 0.4];
        let w = Weights::per_pair(5, 3, (0..15).map(|i| 0.25 + (i % 4) as f64).collect()).unwrap();
        let lcs = Lcs::new(0.2).with_weights(w);
        let reference = lcs.matrix(&p, &q).unwrap().final_value();
        assert_eq!(
            lcs.similarity(&p, &q).unwrap().to_bits(),
            reference.to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn negative_threshold_panics() {
        let _ = Lcs::new(-0.1);
    }
}
