//! Edit distance (EdD), Eq. 4 of the paper.
//!
//! The number of single-element operations (replace / insert / delete) that
//! transform one series into the other, with a threshold deciding whether two
//! real-valued elements are "equal":
//!
//! ```text
//! E[i][0] = i, E[0][j] = j
//! E[i][j] = min(E[i-1][j] + w*Vstep,           (delete)
//!               E[i][j-1] + w*Vstep,           (insert)
//!               E[i-1][j-1])                   if |P[i] - Q[j]| <= threshold
//!         = min(E[i-1][j] + w*Vstep,
//!               E[i][j-1] + w*Vstep,
//!               E[i-1][j-1] + w*Vstep)         otherwise (replace)
//! ```
//!
//! Note: the paper's Eq. (4) prints the two branches with their conditions
//! swapped (a match would *cost* `Vstep` and a mismatch would be free), which
//! contradicts both the boundary conditions `E[i][0] = i` and the paper's own
//! statement that "lower EdD value means higher similarity". We implement the
//! standard Levenshtein recurrence, which is what the circuit in Fig. 2(c)
//! computes when the comparator polarity is read consistently.

use crate::error::DistanceError;
use crate::matrix::DpMatrix;
use crate::scratch::DpScratch;
use crate::weights::Weights;
use crate::{Distance, DistanceKind};

/// Wavefront evaluation of Eq. 4: anti-diagonal order, so the inner loop has
/// no loop-carried dependency and autovectorizes (see the [`crate::dtw`]
/// module docs). Diagonal `k` stores cell `(i, j = k - i)` at slot `i`; the
/// boundary cells `E[0][k] = E[k][0] = k * Vstep` are written per diagonal
/// into slots `0` and `k`, which interior writes never touch, so every read
/// lands on a slot written for that diagonal. The per-cell operation order
/// (`del.min(ins).min(diag)`) matches the row-major reference exactly, so
/// results are bitwise-identical.
fn wavefront_edit<F: Fn(usize, usize) -> f64>(
    p: &[f64],
    q: &[f64],
    threshold: f64,
    v_step: f64,
    scratch: &mut DpScratch,
    wpair: &F,
) -> f64 {
    let (m, n) = (p.len(), q.len());
    let ([mut d0, mut d1, mut d2], rev) = scratch.wavefront(m + 1, 0.0, q);
    // Diagonal 0 is all zeros (the initial fill); diagonal 1 is the two
    // boundary cells E[0][1] and E[1][0].
    d1[0] = v_step;
    d1[1] = v_step;
    for k in 2..=(m + n) {
        if k <= n {
            d2[0] = k as f64 * v_step; // E[0][k]
        }
        if k <= m {
            d2[k] = k as f64 * v_step; // E[k][0]
        }
        let lo = k.saturating_sub(n).max(1);
        let hi = m.min(k - 1);
        let w = hi - lo + 1; // the structural range is never empty
        let dst = &mut d2[lo..lo + w];
        let lefts = &d1[lo..lo + w]; // E[i][j-1]
        let ups = &d1[lo - 1..lo - 1 + w]; // E[i-1][j]
        let diags = &d0[lo - 1..lo - 1 + w]; // E[i-1][j-1]
        let ps = &p[lo - 1..lo - 1 + w];
        let qs = &rev[lo + n - k..lo + n - k + w]; // q[j-1] reversed
        for t in 0..w {
            let i = lo + t;
            let w_cell = wpair(i - 1, k - i - 1) * v_step;
            let del = ups[t] + w_cell;
            let ins = lefts[t] + w_cell;
            let diag = if (ps[t] - qs[t]).abs() <= threshold {
                diags[t]
            } else {
                diags[t] + w_cell
            };
            dst[t] = del.min(ins).min(diag);
        }
        let td = d0;
        d0 = d1;
        d1 = d2;
        d2 = td;
    }
    d1[m] // diagonal m + n, cell (m, n)
}

/// Thresholded edit distance.
///
/// ```
/// use mda_distance::EditDistance;
/// # fn main() -> Result<(), mda_distance::DistanceError> {
/// let ed = EditDistance::new(0.05);
/// // One substitution turns [0, 1, 2] into [0, 5, 2].
/// assert_eq!(ed.distance(&[0.0, 1.0, 2.0], &[0.0, 5.0, 2.0])?, 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EditDistance {
    threshold: f64,
    v_step: f64,
    weights: Weights,
}

impl EditDistance {
    /// Edit distance with match threshold `threshold`, unit step 1 and
    /// uniform weights.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or non-finite.
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "threshold must be finite and non-negative"
        );
        EditDistance {
            threshold,
            v_step: 1.0,
            weights: Weights::Uniform,
        }
    }

    /// Sets the per-operation cost `Vstep` (a unit voltage on the
    /// accelerator; "the exact result can be obtained by dividing E(m,n) by
    /// Vstep").
    #[must_use]
    pub fn with_step(mut self, v_step: f64) -> Self {
        self.v_step = v_step;
        self
    }

    /// Sets per-cell weights (weighted EdD, Oliveira-Neto et al.).
    #[must_use]
    pub fn with_weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// The configured match threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The configured per-operation cost.
    pub fn v_step(&self) -> f64 {
        self.v_step
    }

    /// Computes the full DP matrix of Eq. 4 (with the standard branch
    /// orientation, see the module docs).
    ///
    /// # Errors
    ///
    /// Returns [`DistanceError::EmptySequence`] for empty inputs or
    /// [`DistanceError::WeightShape`] on weight-shape mismatch.
    pub fn matrix(&self, p: &[f64], q: &[f64]) -> Result<DpMatrix, DistanceError> {
        if p.is_empty() || q.is_empty() {
            return Err(DistanceError::EmptySequence);
        }
        let (m, n) = (p.len(), q.len());
        self.weights.check_pair_shape(m, n)?;

        let mut e = DpMatrix::filled(m + 1, n + 1, 0.0);
        for i in 0..=m {
            e.set(i, 0, i as f64 * self.v_step);
        }
        for j in 0..=n {
            e.set(0, j, j as f64 * self.v_step);
        }
        for i in 1..=m {
            for j in 1..=n {
                let w = self.weights.pair(i - 1, j - 1) * self.v_step;
                let del = e.at(i - 1, j) + w;
                let ins = e.at(i, j - 1) + w;
                let diag = if (p[i - 1] - q[j - 1]).abs() <= self.threshold {
                    e.at(i - 1, j - 1)
                } else {
                    e.at(i - 1, j - 1) + w
                };
                e.set(i, j, del.min(ins).min(diag));
            }
        }
        Ok(e)
    }

    /// Computes the edit distance using O(n) memory (three anti-diagonal
    /// buffers, wavefront order). Bitwise-identical to
    /// [`EditDistance::matrix`]'s final value.
    ///
    /// # Errors
    ///
    /// Same as [`EditDistance::matrix`].
    pub fn distance(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        self.distance_with(p, q, &mut DpScratch::new())
    }

    /// [`EditDistance::distance`] with caller-provided scratch buffers, so
    /// batch workloads allocate the diagonal buffers once instead of per
    /// pair.
    ///
    /// # Errors
    ///
    /// Same as [`EditDistance::matrix`].
    pub fn distance_with(
        &self,
        p: &[f64],
        q: &[f64],
        scratch: &mut DpScratch,
    ) -> Result<f64, DistanceError> {
        if p.is_empty() || q.is_empty() {
            return Err(DistanceError::EmptySequence);
        }
        let (m, n) = (p.len(), q.len());
        self.weights.check_pair_shape(m, n)?;

        let v = match &self.weights {
            Weights::Uniform => {
                wavefront_edit(p, q, self.threshold, self.v_step, scratch, &|_, _| 1.0)
            }
            w => wavefront_edit(p, q, self.threshold, self.v_step, scratch, &|i, j| {
                w.pair(i, j)
            }),
        };
        Ok(v)
    }
}

impl Distance for EditDistance {
    fn evaluate(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        self.distance(p, q)
    }

    fn evaluate_with(
        &self,
        p: &[f64],
        q: &[f64],
        scratch: &mut DpScratch,
    ) -> Result<f64, DistanceError> {
        self.distance_with(p, q, scratch)
    }

    fn kind(&self) -> DistanceKind {
        DistanceKind::Edit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn discrete_ed(a: &str, b: &str) -> f64 {
        let enc = |s: &str| -> Vec<f64> { s.bytes().map(|c| c as f64 * 10.0).collect() };
        EditDistance::new(0.5)
            .distance(&enc(a), &enc(b))
            .expect("non-empty")
    }

    #[test]
    fn matches_textbook_levenshtein() {
        assert_eq!(discrete_ed("kitten", "sitting"), 3.0);
        assert_eq!(discrete_ed("flaw", "lawn"), 2.0);
        assert_eq!(discrete_ed("abc", "abc"), 0.0);
        assert_eq!(discrete_ed("abc", "axc"), 1.0);
    }

    #[test]
    fn self_distance_is_zero() {
        let p = [1.0, -2.0, 0.5];
        assert_eq!(EditDistance::new(0.0).distance(&p, &p).unwrap(), 0.0);
    }

    #[test]
    fn symmetric_with_uniform_weights() {
        let p = [0.0, 1.0, 2.0, 0.5];
        let q = [0.1, 2.0, 0.4];
        let ed = EditDistance::new(0.15);
        assert_eq!(ed.distance(&p, &q).unwrap(), ed.distance(&q, &p).unwrap());
    }

    #[test]
    fn bounded_by_max_length() {
        let p = [10.0; 5];
        let q = [-10.0; 8];
        let d = EditDistance::new(0.1).distance(&p, &q).unwrap();
        assert_eq!(d, 8.0); // 5 substitutions + 3 insertions
        assert!(d <= 8.0);
    }

    #[test]
    fn length_difference_lower_bound() {
        // EdD >= |m - n| always (unweighted, unit step).
        let p = [0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let q = [0.0, 0.0];
        assert_eq!(EditDistance::new(0.1).distance(&p, &q).unwrap(), 4.0);
    }

    #[test]
    fn v_step_scales_result() {
        let p = [0.0, 1.0];
        let q = [5.0, 6.0];
        let base = EditDistance::new(0.1).distance(&p, &q).unwrap();
        let scaled = EditDistance::new(0.1)
            .with_step(0.01)
            .distance(&p, &q)
            .unwrap();
        assert!((scaled - base * 0.01).abs() < 1e-12);
    }

    #[test]
    fn matrix_boundaries_match_eq4() {
        let e = EditDistance::new(0.1).matrix(&[1.0, 2.0], &[3.0]).unwrap();
        assert_eq!(e.at(0, 0), 0.0);
        assert_eq!(e.at(1, 0), 1.0);
        assert_eq!(e.at(2, 0), 2.0);
        assert_eq!(e.at(0, 1), 1.0);
    }

    #[test]
    fn matrix_final_matches_distance() {
        let p = [0.3, 0.6, 0.9, 0.1];
        let q = [0.4, 0.5, 1.0];
        let ed = EditDistance::new(0.2);
        assert_eq!(
            ed.matrix(&p, &q).unwrap().final_value(),
            ed.distance(&p, &q).unwrap()
        );
    }

    #[test]
    fn triangle_inequality_unweighted() {
        let a = [0.0, 1.0, 2.0];
        let b = [0.0, 5.0, 2.0, 3.0];
        let c = [4.0, 1.0];
        let ed = EditDistance::new(0.01);
        let ab = ed.distance(&a, &b).unwrap();
        let bc = ed.distance(&b, &c).unwrap();
        let ac = ed.distance(&a, &c).unwrap();
        assert!(ac <= ab + bc + 1e-12);
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            EditDistance::new(0.1).distance(&[], &[1.0]).unwrap_err(),
            DistanceError::EmptySequence
        );
    }

    #[test]
    fn wavefront_matches_matrix_bitwise() {
        // The anti-diagonal kernel must reproduce the row-major reference
        // exactly across lengths and length skews, with scratch reuse —
        // including the per-diagonal boundary writes E[0][k] / E[k][0].
        let series: Vec<f64> = (0..40)
            .map(|i| ((i * 31 % 19) as f64 - 9.0) * 0.17)
            .collect();
        let ed = EditDistance::new(0.25).with_step(0.01);
        let mut scratch = DpScratch::new();
        for (m, n) in [
            (1usize, 1usize),
            (1, 9),
            (9, 1),
            (4, 4),
            (7, 13),
            (13, 7),
            (25, 25),
            (40, 11),
        ] {
            let p = &series[..m];
            let q = &series[40 - n..];
            let reference = ed.matrix(p, q).unwrap().final_value();
            let v = ed.distance_with(p, q, &mut scratch).unwrap();
            assert_eq!(v.to_bits(), reference.to_bits(), "m={m} n={n}");
        }
    }

    #[test]
    fn wavefront_matches_matrix_bitwise_weighted() {
        let p = [0.3, 0.6, 0.9, 0.1, 0.7];
        let q = [0.4, 0.5, 1.0];
        let w = Weights::per_pair(5, 3, (0..15).map(|i| 0.5 + (i % 3) as f64).collect()).unwrap();
        let ed = EditDistance::new(0.2).with_weights(w);
        let reference = ed.matrix(&p, &q).unwrap().final_value();
        assert_eq!(ed.distance(&p, &q).unwrap().to_bits(), reference.to_bits());
    }
}
