//! Property tests for the DTW lower-bound cascade: every bound must be
//! admissible (never exceed the exact DTW distance) on random and
//! adversarial inputs, and tight (exactly zero) at the identity pair.
//!
//! Admissibility is the safety property the pruned subsequence search and
//! the conformance harness lean on: an inadmissible bound silently drops
//! true nearest neighbours, which no downstream test would catch.

use proptest::prelude::*;

use mda_distance::dtw::Band;
use mda_distance::lower_bounds::{cascading_dtw, envelope, lb_keogh, lb_kim, PruneDecision};
use mda_distance::Dtw;

fn full_dtw(p: &[f64], q: &[f64]) -> f64 {
    Dtw::new().distance(p, q).unwrap()
}

fn banded_dtw(p: &[f64], q: &[f64], r: usize) -> f64 {
    Dtw::new()
        .with_band(Band::SakoeChiba(r))
        .distance(p, q)
        .unwrap()
}

fn value() -> impl Strategy<Value = f64> {
    -1.0e3..1.0e3
}

fn series(len: impl prop::collection::IntoSizeRange) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(value(), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lb_kim_is_admissible_on_random_mixed_lengths(
        p in series(1..24usize),
        q in series(1..24usize),
    ) {
        let lb = lb_kim(&p, &q).unwrap();
        let d = full_dtw(&p, &q);
        prop_assert!(lb <= d + 1e-9, "LB_Kim {lb} > DTW {d}");
    }

    #[test]
    fn lb_keogh_is_admissible_on_random_equal_lengths(
        pq in (1usize..24).prop_flat_map(|n| (series(n), series(n))),
        r in 0usize..12,
    ) {
        let (p, q) = pq;
        let lb = lb_keogh(&p, &q, r).unwrap();
        let d = banded_dtw(&p, &q, r);
        prop_assert!(lb <= d + 1e-9, "r={r}: LB_Keogh {lb} > DTW {d}");
    }

    #[test]
    fn bounds_are_tight_at_identity(p in series(1..24usize), r in 0usize..8) {
        prop_assert_eq!(lb_kim(&p, &p).unwrap(), 0.0);
        prop_assert_eq!(lb_keogh(&p, &p, r).unwrap(), 0.0);
        prop_assert_eq!(full_dtw(&p, &p), 0.0);
    }

    #[test]
    fn envelope_contains_series_and_keogh_matches_definition(
        q in series(1..20usize),
        r in 0usize..8,
    ) {
        let (u, l) = envelope(&q, r).unwrap();
        for i in 0..q.len() {
            prop_assert!(l[i] <= q[i] && q[i] <= u[i]);
        }
        // Against itself the series never leaves its own envelope.
        prop_assert_eq!(lb_keogh(&q, &q, r).unwrap(), 0.0);
    }

    #[test]
    fn cascade_is_faithful(
        pq in (2usize..16).prop_flat_map(|n| (series(n), series(n))),
        r in 1usize..6,
        best in 0.0f64..200.0,
    ) {
        let (p, q) = pq;
        let d = banded_dtw(&p, &q, r);
        match cascading_dtw(&p, &q, r, best).unwrap() {
            // A computed value must be the exact banded DTW distance.
            PruneDecision::Computed(v) => prop_assert_eq!(v.to_bits(), d.to_bits()),
            // A prune must be justified: the bound (admissible, so <= d)
            // exceeded the best-so-far, hence d does too.
            PruneDecision::PrunedByKim(b) | PruneDecision::PrunedByKeogh(b) => {
                prop_assert!(b > best);
                prop_assert!(b <= d + 1e-9, "pruning bound {b} > DTW {d}");
            }
            PruneDecision::AbandonedEarly => prop_assert!(d > best),
        }
    }
}

/// Adversarial fixed shapes that historically break lower bounds:
/// constants, isolated spikes, mixed lengths and extreme magnitudes.
#[test]
fn adversarial_shapes_stay_admissible() {
    let spike = |n: usize, at: usize, h: f64| {
        let mut v = vec![0.0; n];
        v[at] = h;
        v
    };
    let cases: Vec<(Vec<f64>, Vec<f64>)> = vec![
        // Constant vs constant, same and different levels.
        (vec![3.0; 8], vec![3.0; 8]),
        (vec![-2.0; 8], vec![5.0; 8]),
        // Constant vs spike at every position of a short series.
        (vec![0.0; 5], spike(5, 0, 40.0)),
        (vec![0.0; 5], spike(5, 2, 40.0)),
        (vec![0.0; 5], spike(5, 4, -40.0)),
        // Spike vs shifted spike (warping absorbs the shift).
        (spike(9, 2, 10.0), spike(9, 6, 10.0)),
        // Mixed lengths, including the degenerate 1-element side.
        (vec![1.0], (0..24).map(|i| (i as f64 * 0.4).sin()).collect()),
        (vec![0.5, -0.5], vec![0.5, 0.0, 0.0, 0.0, -0.5]),
        // Extreme magnitudes (well inside f64 but far outside encodable
        // analog range — the digital bounds must still be exact).
        (
            vec![1.0e15, -1.0e15, 1.0e15],
            vec![-1.0e15, 1.0e15, -1.0e15],
        ),
    ];
    for (p, q) in &cases {
        let d = full_dtw(p, q);
        let kim = lb_kim(p, q).unwrap();
        assert!(kim <= d + 1e-9, "LB_Kim {kim} > DTW {d} on {p:?} vs {q:?}");
        if p.len() == q.len() {
            for r in 0..p.len() {
                let keogh = lb_keogh(p, q, r).unwrap();
                let db = banded_dtw(p, q, r);
                assert!(
                    keogh <= db + 1e-9,
                    "LB_Keogh {keogh} > banded DTW {db} (r={r}) on {p:?} vs {q:?}"
                );
            }
        }
    }
}

#[test]
fn bounds_are_exactly_zero_at_identity_for_adversarial_shapes() {
    let shapes: Vec<Vec<f64>> = vec![
        vec![7.5; 12],
        vec![0.0, 0.0, 100.0, 0.0],
        vec![1.0e15, -1.0e15],
        vec![42.0],
    ];
    for p in &shapes {
        assert_eq!(lb_kim(p, p).unwrap(), 0.0, "{p:?}");
        for r in 0..3 {
            assert_eq!(lb_keogh(p, p, r).unwrap(), 0.0, "{p:?} r={r}");
        }
    }
}
