//! Property tests for the pruned subsequence search: over arbitrary finite
//! inputs the cascaded search must return exactly the brute-force answer
//! (same offset, same distance to the last bit of its computation), and the
//! pruning statistics must partition the window count.
//!
//! This is the end-to-end safety net over the whole tentpole stack —
//! wavefront kernels, Lemire envelopes, cached-envelope cascade, forced
//! scout computation — because any admissibility or identity bug in any
//! layer shows up here as a wrong offset or distance.

use proptest::prelude::*;

use mda_distance::mining::SubsequenceSearch;

fn value() -> impl Strategy<Value = f64> {
    -1.0e3..1.0e3
}

fn series(len: impl prop::collection::IntoSizeRange) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(value(), len)
}

fn check_agreement(query: &[f64], haystack: &[f64], window: usize, radius: usize) {
    let s = SubsequenceSearch::new(window, radius);
    let (pruned, stats) = s.run(query, haystack).unwrap();
    let brute = s.run_brute_force(query, haystack).unwrap();
    assert_eq!(
        pruned.offset, brute.offset,
        "offset mismatch (window {window}, radius {radius})"
    );
    assert!(
        (pruned.distance - brute.distance).abs() <= 1e-9,
        "distance mismatch: pruned {} vs brute {}",
        pruned.distance,
        brute.distance
    );
    assert!(pruned.distance.is_finite(), "match must be real");
    assert_eq!(
        stats.windows,
        stats.pruned_by_kim
            + stats.pruned_by_keogh
            + stats.abandoned_early
            + stats.full_computations,
        "stats must partition the windows: {stats:?}"
    );
    assert_eq!(stats.windows, haystack.len() - window + 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn pruned_search_equals_brute_force_on_random_inputs(
        input in (2usize..10).prop_flat_map(|w| {
            (Just(w), series(w), series(w..w + 40), 0usize..4)
        }),
    ) {
        let (window, query, haystack, radius) = input;
        check_agreement(&query, &haystack, window, radius);
    }

    #[test]
    fn pruned_search_equals_brute_force_with_z_normalization(
        input in (3usize..8).prop_flat_map(|w| {
            (Just(w), series(w), series(w..w + 24))
        }),
    ) {
        let (window, query, haystack) = input;
        let s = SubsequenceSearch::new(window, 1).with_z_normalization(true);
        let (pruned, _) = s.run(&query, &haystack).unwrap();
        let brute = s.run_brute_force(&query, &haystack).unwrap();
        prop_assert_eq!(pruned.offset, brute.offset);
        prop_assert!((pruned.distance - brute.distance).abs() <= 1e-9);
    }

    #[test]
    fn planted_exact_match_is_always_found(
        input in (4usize..9).prop_flat_map(|w| {
            (Just(w), series(3 * w), 0usize..3)
        }),
        frac in 0.0f64..1.0,
    ) {
        let (window, haystack, radius) = input;
        // Plant the query verbatim somewhere in the haystack: the search
        // must find a zero-distance window (the planted offset or another
        // exact copy at a lower offset).
        let at = ((haystack.len() - window) as f64 * frac) as usize;
        let query = haystack[at..at + window].to_vec();
        let s = SubsequenceSearch::new(window, radius);
        let (m, _) = s.run(&query, &haystack).unwrap();
        prop_assert_eq!(m.distance, 0.0);
        prop_assert!(m.offset <= at);
    }
}

/// Adversarial fixed shapes: constants (every window ties), a planted exact
/// match inside an otherwise hostile haystack, and an all-far haystack where
/// every window should be prunable against the scout.
#[test]
fn adversarial_shapes_agree_with_brute_force() {
    let ramp: Vec<f64> = (0..48).map(|i| i as f64 * 0.3).collect();
    let mut planted = vec![9.0; 48];
    for (i, v) in planted.iter_mut().enumerate().skip(20).take(6) {
        *v = (i as f64 * 0.5).sin();
    }
    let cases: Vec<(Vec<f64>, Vec<f64>)> = vec![
        // Constant vs constant: all windows tie exactly.
        (vec![1.0; 6], vec![0.0; 30]),
        (vec![0.0; 6], vec![0.0; 30]),
        // Constant query over a ramp: unique best at one end.
        (vec![0.0; 6], ramp.clone()),
        (vec![14.1; 6], ramp),
        // Planted match in an all-far haystack.
        ((20..26).map(|i| (i as f64 * 0.5).sin()).collect(), planted),
        // Spiky query vs flat haystack.
        (vec![0.0, 100.0, 0.0, -100.0, 0.0, 0.0], vec![0.0; 25]),
    ];
    for (query, haystack) in &cases {
        for radius in [0, 1, 3] {
            check_agreement(query, haystack, query.len(), radius);
        }
    }
}
