//! Property tests for the pruned subsequence search: over arbitrary finite
//! inputs the cascaded search must return exactly the brute-force answer
//! (same offset, same distance to the last bit of its computation), and the
//! pruning statistics must partition the window count.
//!
//! This is the end-to-end safety net over the whole tentpole stack —
//! wavefront kernels, Lemire envelopes, cached-envelope cascade, forced
//! scout computation — because any admissibility or identity bug in any
//! layer shows up here as a wrong offset or distance.

use std::sync::Arc;

use proptest::prelude::*;

use mda_acam::{AcamPrefilter, FaultPlan, MarginPolicy};
use mda_distance::mining::prefilter::CandidateFilter;
use mda_distance::mining::SubsequenceSearch;

fn value() -> impl Strategy<Value = f64> {
    -1.0e3..1.0e3
}

fn series(len: impl prop::collection::IntoSizeRange) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(value(), len)
}

/// The aCAM pre-filter axis: a tuned array, a variation-widened array, and
/// a fault-seeded array. All three may only ever reject certified-prunable
/// windows, so every variant must reproduce the unfiltered run bitwise.
fn filter_variants() -> Vec<(&'static str, Arc<dyn CandidateFilter>)> {
    vec![
        ("tuned", Arc::new(AcamPrefilter::tuned())),
        (
            "variation",
            Arc::new(AcamPrefilter::new(MarginPolicy::paper_defaults(17))),
        ),
        (
            "faulty",
            Arc::new(
                AcamPrefilter::tuned().with_fault_plan(FaultPlan::Seeded { seed: 5, rate: 0.2 }),
            ),
        ),
    ]
}

fn check_agreement(query: &[f64], haystack: &[f64], window: usize, radius: usize) {
    let s = SubsequenceSearch::new(window, radius);
    let (pruned, stats) = s.run(query, haystack).unwrap();
    let brute = s.run_brute_force(query, haystack).unwrap();
    assert_eq!(
        pruned.offset, brute.offset,
        "offset mismatch (window {window}, radius {radius})"
    );
    assert!(
        (pruned.distance - brute.distance).abs() <= 1e-9,
        "distance mismatch: pruned {} vs brute {}",
        pruned.distance,
        brute.distance
    );
    assert!(pruned.distance.is_finite(), "match must be real");
    assert_eq!(
        stats.windows,
        stats.pruned_by_prefilter
            + stats.pruned_by_kim
            + stats.pruned_by_keogh
            + stats.abandoned_early
            + stats.full_computations,
        "stats must partition the windows: {stats:?}"
    );
    assert_eq!(stats.pruned_by_prefilter, 0, "no filter installed");
    assert_eq!(stats.windows, haystack.len() - window + 1);

    for (name, filter) in filter_variants() {
        let fs = SubsequenceSearch::new(window, radius).with_prefilter(filter);
        let (fmatch, fstats) = fs.run(query, haystack).unwrap();
        assert_eq!(
            fmatch.offset, pruned.offset,
            "{name}: filtered offset drifted (window {window}, radius {radius})"
        );
        assert_eq!(
            fmatch.distance.to_bits(),
            pruned.distance.to_bits(),
            "{name}: filtered distance not bitwise-identical: {} vs {}",
            fmatch.distance,
            pruned.distance
        );
        // aCAM-rejected + cascade-examined windows must account for every
        // window exactly once.
        assert_eq!(
            fstats.windows,
            fstats.pruned_by_prefilter
                + fstats.pruned_by_kim
                + fstats.pruned_by_keogh
                + fstats.abandoned_early
                + fstats.full_computations,
            "{name}: filtered stats must partition the windows: {fstats:?}"
        );
        assert_eq!(fstats.windows, stats.windows, "{name}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn pruned_search_equals_brute_force_on_random_inputs(
        input in (2usize..10).prop_flat_map(|w| {
            (Just(w), series(w), series(w..w + 40), 0usize..4)
        }),
    ) {
        let (window, query, haystack, radius) = input;
        check_agreement(&query, &haystack, window, radius);
    }

    #[test]
    fn pruned_search_equals_brute_force_with_z_normalization(
        input in (3usize..8).prop_flat_map(|w| {
            (Just(w), series(w), series(w..w + 24))
        }),
    ) {
        let (window, query, haystack) = input;
        let s = SubsequenceSearch::new(window, 1).with_z_normalization(true);
        let (pruned, _) = s.run(&query, &haystack).unwrap();
        let brute = s.run_brute_force(&query, &haystack).unwrap();
        prop_assert_eq!(pruned.offset, brute.offset);
        prop_assert!((pruned.distance - brute.distance).abs() <= 1e-9);
        // The pre-filter programs on the z-normalized query and senses
        // z-normalized windows, so the identity must hold here too.
        let fs = SubsequenceSearch::new(window, 1)
            .with_z_normalization(true)
            .with_prefilter(Arc::new(AcamPrefilter::tuned()));
        let (fmatch, _) = fs.run(&query, &haystack).unwrap();
        prop_assert_eq!(fmatch.offset, pruned.offset);
        prop_assert_eq!(fmatch.distance.to_bits(), pruned.distance.to_bits());
    }

    #[test]
    fn planted_exact_match_is_always_found(
        input in (4usize..9).prop_flat_map(|w| {
            (Just(w), series(3 * w), 0usize..3)
        }),
        frac in 0.0f64..1.0,
    ) {
        let (window, haystack, radius) = input;
        // Plant the query verbatim somewhere in the haystack: the search
        // must find a zero-distance window (the planted offset or another
        // exact copy at a lower offset).
        let at = ((haystack.len() - window) as f64 * frac) as usize;
        let query = haystack[at..at + window].to_vec();
        let s = SubsequenceSearch::new(window, radius);
        let (m, _) = s.run(&query, &haystack).unwrap();
        prop_assert_eq!(m.distance, 0.0);
        prop_assert!(m.offset <= at);
    }
}

/// Adversarial fixed shapes: constants (every window ties), a planted exact
/// match inside an otherwise hostile haystack, and an all-far haystack where
/// every window should be prunable against the scout.
#[test]
fn adversarial_shapes_agree_with_brute_force() {
    let ramp: Vec<f64> = (0..48).map(|i| i as f64 * 0.3).collect();
    let mut planted = vec![9.0; 48];
    for (i, v) in planted.iter_mut().enumerate().skip(20).take(6) {
        *v = (i as f64 * 0.5).sin();
    }
    let cases: Vec<(Vec<f64>, Vec<f64>)> = vec![
        // Constant vs constant: all windows tie exactly.
        (vec![1.0; 6], vec![0.0; 30]),
        (vec![0.0; 6], vec![0.0; 30]),
        // Constant query over a ramp: unique best at one end.
        (vec![0.0; 6], ramp.clone()),
        (vec![14.1; 6], ramp),
        // Planted match in an all-far haystack.
        ((20..26).map(|i| (i as f64 * 0.5).sin()).collect(), planted),
        // Spiky query vs flat haystack.
        (vec![0.0, 100.0, 0.0, -100.0, 0.0, 0.0], vec![0.0; 25]),
    ];
    for (query, haystack) in &cases {
        for radius in [0, 1, 3] {
            check_agreement(query, haystack, query.len(), radius);
        }
    }
}

/// The tuned filter must actually reject windows on hostile data (the
/// identity tests alone would pass for a filter that admits everything).
#[test]
fn tuned_prefilter_rejects_windows_on_hostile_haystack() {
    let mut hay = vec![9.0; 64];
    for (i, v) in hay.iter_mut().enumerate().skip(30).take(8) {
        *v = (i as f64 * 0.5).sin();
    }
    let query: Vec<f64> = (30..38).map(|i| (i as f64 * 0.5).sin()).collect();
    let s = SubsequenceSearch::new(8, 1).with_prefilter(Arc::new(AcamPrefilter::tuned()));
    let (m, stats) = s.run(&query, &hay).unwrap();
    assert_eq!(m.offset, 30);
    assert_eq!(m.distance, 0.0);
    assert!(
        stats.pruned_by_prefilter > 0,
        "the match line should have rejected far windows: {stats:?}"
    );
}

/// kNN with the aCAM filter must classify bitwise-identically to the
/// unfiltered classifier, for both supported kinds (DTW, MD) across k.
#[test]
fn filtered_knn_is_bitwise_identical() {
    use mda_distance::mining::KnnClassifier;
    use mda_distance::{Distance, Dtw, Manhattan};

    let train: Vec<(usize, Vec<f64>)> = (0..24)
        .map(|t| {
            let label = t % 3;
            let series = (0..12)
                .map(|i| (i as f64 * (0.3 + label as f64 * 0.2) + t as f64 * 0.05).sin())
                .collect();
            (label, series)
        })
        .collect();
    let queries: Vec<Vec<f64>> = (0..6)
        .map(|qi| {
            (0..12)
                .map(|i| (i as f64 * 0.4 + qi as f64 * 0.31).sin())
                .collect()
        })
        .collect();
    let distances: Vec<fn() -> Box<dyn Distance + Send + Sync>> =
        vec![|| Box::new(Dtw::new()), || Box::new(Manhattan::new())];
    for make in &distances {
        for k in [1, 3, 5] {
            let mut plain = KnnClassifier::new(make(), k);
            plain.fit_all(train.clone());
            for (name, _) in filter_variants() {
                // Rebuild per variant: filters are programmed per classify.
                let filter: Box<dyn CandidateFilter> = match name {
                    "tuned" => Box::new(AcamPrefilter::tuned()),
                    "variation" => Box::new(AcamPrefilter::new(MarginPolicy::paper_defaults(17))),
                    _ => Box::new(
                        AcamPrefilter::tuned()
                            .with_fault_plan(FaultPlan::Seeded { seed: 5, rate: 0.2 }),
                    ),
                };
                let mut filtered = KnnClassifier::new(make(), k).with_candidate_filter(filter);
                filtered.fit_all(train.clone());
                for q in &queries {
                    let a = plain.classify(q).unwrap();
                    let b = filtered.classify(q).unwrap();
                    assert_eq!(a.label, b.label, "{name} k={k}");
                    assert_eq!(a.nearest_index, b.nearest_index, "{name} k={k}");
                    assert_eq!(a.score.to_bits(), b.score.to_bits(), "{name} k={k}");
                }
            }
        }
    }
}
