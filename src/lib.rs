//! # memristor-distance-accelerator
//!
//! A from-scratch Rust reproduction of **"An Efficient Memristor-based
//! Distance Accelerator for Time Series Data Mining on Data Centers"**
//! (Xu, Zeng, Xu, Shi, Hu — DAC 2017): a single reconfigurable analog
//! fabric computing six time-series distance functions — DTW, LCS, edit
//! distance, Hausdorff, Hamming and Manhattan — with memristor-programmed
//! analog circuits.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`distance`] — digital reference implementations, lower bounds and the
//!   data-mining workloads (classification / clustering / subsequence
//!   search);
//! * [`memristor`] — the (stochastic) Biolek device model, process
//!   variation and resistance tuning;
//! * [`spice`] — the MNA analog circuit simulator used for device-level
//!   validation;
//! * [`core`] — the accelerator itself: PE circuits, array structures,
//!   DAC/ADC models, configuration library, behavioural analog engine,
//!   tiling and early determination;
//! * [`datasets`] — UCR-style synthetic datasets and the UCR format parser;
//! * [`power`] — power budgets and energy-efficiency comparisons;
//! * [`routing`] — the accuracy-SLA, power-budget-aware router unifying
//!   the four answer paths (digital exact, pruned, behavioural analog,
//!   SPICE) behind one backend trait;
//! * [`server`] — the batching distance-query network service (request
//!   coalescing, admission control, accuracy-aware routing, push-mode
//!   stream verbs, live metrics);
//! * [`streaming`] — push-mode mining: the incremental operator DAG
//!   (sliding z-norm, incremental envelopes, online UCR matching,
//!   motif/discord tracking), differential-gated bitwise against the
//!   batch kernels, with deterministic replay.
//!
//! ## Quickstart
//!
//! ```
//! use memristor_distance_accelerator::core::{AcceleratorConfig, DistanceAccelerator};
//! use memristor_distance_accelerator::distance::DistanceKind;
//!
//! # fn main() -> Result<(), memristor_distance_accelerator::core::AcceleratorError> {
//! let mut accelerator = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
//! accelerator.configure(DistanceKind::Manhattan)?;
//! let outcome = accelerator.compute(&[0.0, 2.0, 4.0], &[1.0, 2.0, 3.0])?;
//! assert_eq!(outcome.reference, 2.0);
//! assert!(outcome.relative_error < 0.1);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for complete applications (vehicle classification with
//! DTW, ECG similarity with LCS, iris authentication with HamD,
//! subsequence search) and `crates/bench` for the harness that regenerates
//! every table and figure of the paper.

pub use mda_core as core;
pub use mda_datasets as datasets;
pub use mda_distance as distance;
pub use mda_memristor as memristor;
pub use mda_power as power;
pub use mda_routing as routing;
pub use mda_server as server;
pub use mda_spice as spice;
pub use mda_streaming as streaming;
